//! # sap-repro — Space Adaptation Protocol, reproduced
//!
//! A from-scratch Rust reproduction of *Chen & Liu, "Brief Announcement:
//! Space Adaptation: Privacy-preserving Multiparty Collaborative Mining with
//! Geometric Perturbation", PODC 2007* — the protocol, every substrate it
//! depends on, and every figure of its evaluation.
//!
//! This facade crate re-exports the workspace so applications can depend on
//! one crate:
//!
//! * [`linalg`] — dense matrices, QR/LU/eigen/SVD, random orthogonal groups.
//! * [`datasets`] — synthetic stand-ins for the paper's twelve UCI datasets,
//!   normalization, multiparty partitioning.
//! * [`ica`] — PCA, whitening, FastICA (attack substrate).
//! * [`classify`] — KNN, SVM (SMO/RBF), perceptron.
//! * [`perturb`] — geometric perturbation `G(X) = RX + Ψ + Δ` and space
//!   adaptors.
//! * [`privacy`] — the minimum-privacy-guarantee metric, attack suite,
//!   randomized perturbation optimizer, and the multiparty risk model.
//! * [`net`] — sealed, session-multiplexed transports (hub, TCP) with
//!   fault injection.
//! * [`core`] — the Space Adaptation Protocol itself, on a pooled actor
//!   runtime.
//! * [`server`] — the concurrent SAP service: session registry, admission
//!   control, metrics.
//! * [`fleet`] — the sharded multi-node service: hash-ring placement,
//!   node membership on the liveness plane, cross-node forwarding.
//!
//! ## One-minute tour
//!
//! ```
//! use sap_repro::core::session::{run_session, SapConfig};
//! use sap_repro::datasets::{registry::UciDataset, partition::{partition, PartitionScheme}};
//! use sap_repro::datasets::normalize::min_max_normalize;
//!
//! // Several providers hold horizontal slices of a dataset…
//! let (pooled, _) = min_max_normalize(&UciDataset::Iris.generate(42));
//! let locals = partition(&pooled, 4, PartitionScheme::Uniform, 7);
//!
//! // …and run SAP so the miner sees one unified, perturbed dataset.
//! let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();
//! assert_eq!(outcome.unified.len(), pooled.len());
//! assert!(outcome.identifiability <= 1.0 / 3.0);
//! ```

pub use sap_classify as classify;
pub use sap_core as core;
pub use sap_datasets as datasets;
pub use sap_fleet as fleet;
pub use sap_ica as ica;
pub use sap_linalg as linalg;
pub use sap_net as net;
pub use sap_perturb as perturb;
pub use sap_privacy as privacy;
pub use sap_server as server;
