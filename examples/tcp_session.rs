//! A full SAP session over real localhost TCP sockets.
//!
//! The protocol actors are generic over transport and codec, so the only
//! difference from `quickstart` is the setup: bind one TCP endpoint per
//! party, mesh them, and hand them to `run_session_over`.
//!
//! ```text
//! cargo run --example tcp_session --release [-- json]
//! ```
//!
//! Pass `json` to run the session under the self-describing debug codec
//! instead of the compact binary one.

use sap_repro::core::session::{run_session_over, SapConfig, MINER_ID};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::net::codec::{JsonCodec, WireCodec};
use sap_repro::net::tcp::local_mesh;
use sap_repro::net::{PartyId, Transport};

fn main() {
    let use_json = std::env::args().nth(1).is_some_and(|a| a == "json");
    let k = 4;

    // Horizontal partitions of a normalized synthetic Iris.
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(42));
    let locals = partition(&data, k, PartitionScheme::Uniform, 7);
    println!(
        "dataset: {} records over {k} providers; codec: {}",
        data.len(),
        if use_json {
            "json (debug)"
        } else {
            "wire (binary)"
        }
    );

    // One TCP endpoint per provider plus the miner, meshed on localhost.
    let mut ids: Vec<PartyId> = (0..k as u64).map(PartyId).collect();
    ids.push(MINER_ID);
    let mut mesh = local_mesh(&ids).expect("bind localhost sockets");
    let miner = mesh.pop().expect("miner endpoint");
    for t in &mesh {
        println!("  {} listening on {}", t.local_id(), t.local_addr());
    }

    let config = SapConfig::quick_test();
    let outcome = if use_json {
        run_session_over(locals, &config, mesh, miner, JsonCodec)
    } else {
        run_session_over(locals, &config, mesh, miner, WireCodec)
    }
    .expect("session over TCP");

    println!(
        "unified: {} records in the target space; identifiability 1/(k-1) = {:.3}",
        outcome.unified.len(),
        outcome.identifiability
    );
    for r in &outcome.reports {
        println!(
            "  {}: rho_local={:.3} rho_unified={:.3} satisfaction={:.2}",
            r.provider, r.rho_local, r.rho_unified, r.satisfaction
        );
    }
    println!(
        "audit: {} deliveries recorded; coordinator saw data: {}",
        outcome.audit.len(),
        outcome.audit.party_saw_data(PartyId(k as u64 - 1))
    );
}
