//! Failure injection: what happens to a SAP session when the network is
//! lossy or a provider crashes mid-protocol.
//!
//! SAP is a one-shot protocol with no retransmission layer; its safety
//! property under failure is *clean abort* — a session either completes with
//! a correct unified dataset or returns an error, never a wrong result. This
//! example demonstrates both the failure path (simulated directly on the
//! transport layer) and the role-level timeout behaviour.
//!
//! ```text
//! cargo run --example failure_injection --release
//! ```

use sap_repro::core::liveness::Roster;
use sap_repro::core::miner::run_miner;
use sap_repro::core::session::{run_session, SapConfig, StandaloneCtx};
use sap_repro::core::SapError;
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::net::node::Node;
use sap_repro::net::sim::{FaultConfig, FaultyTransport};
use sap_repro::net::transport::InMemoryHub;
use sap_repro::net::PartyId;
use std::time::Duration;

fn main() {
    happy_path();
    crashed_provider();
    lossy_link_to_miner();
}

/// Control: the same session succeeds on a clean network.
fn happy_path() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(5));
    let locals = partition(&data, 4, PartitionScheme::Uniform, 1);
    let outcome = run_session(locals, &SapConfig::quick_test()).expect("clean run");
    println!(
        "clean network: session completed, {} unified records\n",
        outcome.unified.len()
    );
}

/// A provider "crashes" by never joining: every other role times out and the
/// session aborts with a timeout error instead of producing partial output.
fn crashed_provider() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(6));
    let mut locals = partition(&data, 4, PartitionScheme::Uniform, 2);
    // Simulate the crash by corrupting one provider's input dimension: the
    // session refuses it up front (InconsistentInputs) — the validation
    // failure mode.
    let bad = sap_repro::datasets::Dataset::new(vec![vec![0.0; 7]; 10], vec![0; 10]);
    locals[1] = bad;
    match run_session(locals, &SapConfig::quick_test()) {
        Err(SapError::InconsistentInputs(what)) => {
            println!("inconsistent provider rejected up front: {what}\n");
        }
        other => panic!("expected InconsistentInputs, got {other:?}"),
    }
}

/// A miner behind a 100%-lossy link: its collection phase times out cleanly.
fn lossy_link_to_miner() {
    let hub = InMemoryHub::new();
    let endpoint = hub.endpoint(PartyId(1_000));
    // Wrap the miner's endpoint in a transport that drops everything it
    // would send (acks) — and nobody sends to it, so collection times out.
    let faulty = FaultyTransport::new(
        endpoint,
        FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        },
    );
    let node = Node::new(faulty, 42);
    let config = SapConfig {
        timeout: Duration::from_millis(100),
        ..SapConfig::quick_test()
    };
    // Expect 3 relayed streams (providers 0, 1 with coordinator 2).
    let sc = StandaloneCtx::new(
        Roster::new(vec![PartyId(0), PartyId(1), PartyId(2)], PartyId(1_000)),
        config,
    );
    match run_miner(&node, 3, &sc.ctx()) {
        Err(SapError::Timeout { phase, .. }) => {
            println!("lossy network: miner aborted cleanly during '{phase}'");
            println!(
                "(drops observed by fault injector: {})",
                node.transport().fault_counts().0
            );
        }
        other => panic!("expected timeout, got {other:?}"),
    }
}
