//! Quickstart: perturb a dataset, run one SAP session, inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use sap_repro::classify::{KnnClassifier, Model};
use sap_repro::core::session::{run_session, SapConfig};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::split::stratified_split;
use sap_repro::datasets::Dataset;
use sap_repro::privacy::risk::{min_parties, sap_risk};

fn main() {
    // 1. A pooled dataset (synthetic stand-in for UCI Iris), normalized to
    //    [0,1] as the paper requires, with a held-out test set.
    let (data, _normalizer) = min_max_normalize(&UciDataset::Iris.generate(42));
    let tt = stratified_split(&data, 0.7, 1);
    println!(
        "dataset: {} records, {} features, {} classes",
        data.len(),
        data.dim(),
        data.num_classes()
    );

    // 2. Baseline: a KNN model trained on the raw (unperturbed) data.
    let baseline = KnnClassifier::fit(&tt.train, 5).accuracy(&tt.test);
    println!("clean KNN accuracy: {:.1}%", 100.0 * baseline);

    // 3. Split the training data across 5 providers and run SAP.
    let locals = partition(&tt.train, 5, PartitionScheme::Uniform, 7);
    println!(
        "providers hold {:?} records each",
        locals.iter().map(Dataset::len).collect::<Vec<_>>()
    );
    let outcome = run_session(locals, &SapConfig::default()).expect("session");

    // 4. The miner's unified dataset: same size, perturbed values, source
    //    identifiability 1/(k−1).
    println!(
        "unified dataset: {} records, identifiability {:.2}",
        outcome.unified.len(),
        outcome.identifiability
    );
    for report in &outcome.reports {
        println!(
            "  {}: rho_local={:.3} rho_unified={:.3} satisfaction={:.2}",
            report.provider, report.rho_local, report.rho_unified, report.satisfaction
        );
    }

    // 5. Train on the unified data; classify the test set in the unified
    //    space (how providers would submit classification requests).
    let test_unified = {
        let m = outcome.target.apply_clean(&tt.test.to_column_matrix());
        Dataset::from_column_matrix(&m, tt.test.labels().to_vec(), tt.test.num_classes())
    };
    let perturbed = KnnClassifier::fit(&outcome.unified, 5).accuracy(&test_unified);
    println!(
        "SAP-unified KNN accuracy: {:.1}% (deviation {:+.2} points)",
        100.0 * perturbed,
        100.0 * (perturbed - baseline)
    );

    // 6. The risk model: was joining rational for provider 0?
    let r = &outcome.reports[0];
    let b = r.rho_local.max(r.rho_unified).max(1e-9) * 1.1; // crude bound
    println!(
        "provider 0 SAP risk (eq. 2): {:.3}",
        sap_risk(b, r.rho_local, r.satisfaction, outcome.reports.len())
    );
    if let Some(k_min) = min_parties(0.95, (r.rho_local / b).min(1.0)) {
        println!("parties needed for satisfaction 0.95 at this opt-rate: {k_min}");
    }
}
