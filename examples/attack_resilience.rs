//! Attack resilience: runs the full attack suite against random vs
//! optimized geometric perturbations at several noise levels — the scenario
//! behind the paper's Figure 2 and the SDM'07 threat model.
//!
//! ```text
//! cargo run --example attack_resilience --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::registry::UciDataset;
use sap_repro::perturb::GeometricPerturbation;
use sap_repro::privacy::attack::{AttackSuite, AttackerKnowledge};
use sap_repro::privacy::optimize::{optimize, OptimizerConfig};

fn main() {
    let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(7));
    let x = data.to_column_matrix();
    println!(
        "Diabetes stand-in: {} records × {} attributes",
        x.cols(),
        x.rows()
    );

    // Worst-case adversary: exact marginals + covariance + 6 known records.
    let sample = {
        let cols: Vec<Vec<f64>> = (0..400.min(x.cols())).map(|c| x.column(c)).collect();
        sap_repro::linalg::Matrix::from_columns(&cols)
    };
    let knowledge = AttackerKnowledge::worst_case(&sample, 6);
    let suite = AttackSuite::standard();
    let mut rng = StdRng::seed_from_u64(11);

    println!("\n-- per-attack privacy (rho) for one random perturbation, sigma = 0.05 --");
    let g = GeometricPerturbation::random(x.rows(), 0.05, &mut rng);
    let (y, _) = g.perturb(&sample, &mut rng);
    for outcome in suite.run(&sample, &y, &knowledge) {
        match outcome.privacy {
            Some(rho) => println!("  {:<22} rho = {rho:.3}", outcome.attack),
            None => println!("  {:<22} (not applicable)", outcome.attack),
        }
    }

    println!("\n-- random vs optimized perturbation across noise levels --");
    println!(
        "{:>8} {:>14} {:>16}",
        "sigma", "random rho", "optimized rho"
    );
    for sigma in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let g = GeometricPerturbation::random(x.rows(), sigma, &mut rng);
        let (y, _) = g.perturb(&sample, &mut rng);
        let rho_random = suite.privacy_guarantee(&sample, &y, &knowledge);

        let config = OptimizerConfig {
            candidates: 16,
            noise_sigma: sigma,
            known_points: 6,
            eval_sample: 300,
            use_ica: true,
            ..OptimizerConfig::default()
        };
        let opt = optimize(&sample, &config, &mut rng).expect("valid optimizer config");
        println!(
            "{sigma:>8.2} {rho_random:>14.3} {:>16.3}",
            opt.privacy_guarantee
        );
    }

    println!("\nReading: without noise (sigma=0) the known-point attack fully breaks");
    println!("any rotation (rho ~ 0); noise restores a privacy floor, and optimized");
    println!("rotations dominate random ones at every noise level — Figure 2's claim.");
}
