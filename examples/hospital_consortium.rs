//! A domain scenario: a consortium of clinics collaboratively trains a
//! diabetes-risk SVM through an untrusted mining service, without any clinic
//! revealing its patients' records — the service-oriented setting the
//! paper's introduction motivates.
//!
//! The example also exercises the *risk model*: each clinic checks eq. (2)
//! before joining, and the consortium verifies the information-flow audit
//! after the session.
//!
//! ```text
//! cargo run --example hospital_consortium --release
//! ```

use sap_repro::classify::{Model, SvmClassifier, SvmConfig};
use sap_repro::core::session::{run_session, SapConfig, MINER_ID};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::split::stratified_split;
use sap_repro::datasets::Dataset;
use sap_repro::net::PartyId;
use sap_repro::privacy::risk::{local_risk, risk_of_breach, source_identifiability};

fn main() {
    // Six clinics hold class-skewed slices of a diabetes registry (rural
    // clinics see different case mixes than urban ones).
    let (registry, _) = min_max_normalize(&UciDataset::Diabetes.generate(2024));
    let tt = stratified_split(&registry, 0.75, 3);
    let k = 6;
    let clinics = partition(&tt.train, k, PartitionScheme::ClassSkewed, 9);
    println!("consortium of {k} clinics, case loads:");
    for (i, c) in clinics.iter().enumerate() {
        println!(
            "  clinic {i}: {} patients, class mix {:?}",
            c.len(),
            c.class_counts()
        );
    }

    // Baseline the consortium could only get by pooling raw data (illegal).
    let baseline =
        SvmClassifier::fit(&tt.train, &SvmConfig::rbf_for_dim(tt.train.dim())).accuracy(&tt.test);
    println!(
        "\nraw-pooling SVM accuracy (hypothetical): {:.1}%",
        100.0 * baseline
    );

    // Run SAP.
    let outcome = run_session(clinics, &SapConfig::default()).expect("session");

    // Every clinic audits its own risk before accepting the model (eq. 2).
    println!("\nper-clinic risk audit (eq. 2):");
    for report in &outcome.reports {
        let b = (report.rho_local.max(report.rho_unified) * 1.15).max(1e-9);
        let provider_view = local_risk(report.rho_local, b);
        let miner_view = risk_of_breach(
            source_identifiability(k),
            report.satisfaction,
            report.rho_local,
            b,
        );
        println!(
            "  {}: satisfaction {:.2}, provider-view risk {:.3}, miner-view risk {:.3}",
            report.provider, report.satisfaction, provider_view, miner_view
        );
    }

    // The consortium verifies the protocol's information-flow claims.
    let providers: Vec<PartyId> = (0..k as u64).map(PartyId).collect();
    let coordinator = providers[k - 1];
    outcome
        .audit
        .verify_flow(coordinator, MINER_ID, &providers)
        .expect("information-flow invariants");
    println!("\naudit: coordinator saw no data, miner saw only relayed data ✓");
    println!(
        "audit: {} deliveries recorded, source identifiability {:.3}",
        outcome.audit.len(),
        outcome.identifiability
    );

    // The miner trains the consortium model on the unified perturbed data.
    let model = SvmClassifier::fit(&outcome.unified, &SvmConfig::rbf_for_dim(registry.dim()));
    let test_unified = {
        let m = outcome.target.apply_clean(&tt.test.to_column_matrix());
        Dataset::from_column_matrix(&m, tt.test.labels().to_vec(), tt.test.num_classes())
    };
    let acc = model.accuracy(&test_unified);
    println!(
        "\nSAP consortium SVM accuracy: {:.1}% (deviation {:+.2} points)",
        100.0 * acc,
        100.0 * (acc - baseline)
    );
}
