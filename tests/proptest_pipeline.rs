//! Cross-crate property tests: the perturbation/adaptor algebra and the
//! privacy metric, driven by proptest over random dimensions and seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::linalg::{norms, randn_matrix, Matrix};
use sap_repro::perturb::{GeometricPerturbation, Perturbation, SpaceAdaptor};
use sap_repro::privacy::metric::minimum_privacy_guarantee;
use sap_repro::privacy::risk::{min_parties, sap_risk};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The space-adaptation identity A_it(G_i(X)) = G_t(X) holds for any
    /// dimensions and any pair of random spaces (noise-free).
    #[test]
    fn adaptor_identity(seed in any::<u64>(), d in 2usize..9, n in 2usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn_matrix(d, n, &mut rng);
        let gi = Perturbation::random(d, &mut rng);
        let gt = Perturbation::random(d, &mut rng);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();
        let yt = adaptor.apply(&gi.apply_clean(&x));
        prop_assert!(yt.approx_eq(&gt.apply_clean(&x), 1e-7));
    }

    /// With noise, the adaptor output differs from G_t(X) by exactly the
    /// rotated noise — which has the same Frobenius norm as the original.
    #[test]
    fn adaptor_noise_inheritance(seed in any::<u64>(), d in 2usize..7, n in 4usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn_matrix(d, n, &mut rng);
        let gi = GeometricPerturbation::random(d, 0.3, &mut rng);
        let gt = Perturbation::random(d, &mut rng);
        let (yi, delta) = gi.perturb(&x, &mut rng);
        let adaptor = SpaceAdaptor::between(gi.base(), &gt).unwrap();
        let yt = adaptor.apply(&yi);
        let residual = &yt - &gt.apply_clean(&x);
        prop_assert!(
            (residual.frobenius_norm() - delta.frobenius_norm()).abs() < 1e-7,
            "inherited noise norm must match the original noise norm"
        );
    }

    /// The privacy metric is zero iff the estimate equals the original, and
    /// grows with perturbation magnitude.
    #[test]
    fn privacy_metric_behaviour(seed in any::<u64>(), d in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn_matrix(d, 60, &mut rng);
        prop_assert_eq!(minimum_privacy_guarantee(&x, &x), 0.0);
        let small = &x + &randn_matrix(d, 60, &mut rng).scale(0.01);
        let large = &x + &randn_matrix(d, 60, &mut rng).scale(1.0);
        let rho_small = minimum_privacy_guarantee(&x, &small);
        let rho_large = minimum_privacy_guarantee(&x, &large);
        prop_assert!(rho_small >= 0.0);
        prop_assert!(rho_large > rho_small);
    }

    /// Eq. (2) stays in [0, 1] and is non-increasing in k for any valid
    /// parameter combination.
    #[test]
    fn sap_risk_bounded_and_monotone(
        b in 0.05f64..2.0,
        rho_frac in 0.0f64..1.0,
        s in 0.0f64..1.5,
    ) {
        let rho = rho_frac * b;
        let mut prev = f64::INFINITY;
        for k in 2..30usize {
            let r = sap_risk(b, rho, s, k);
            prop_assert!((0.0..=1.0).contains(&r), "risk {r} out of [0,1]");
            prop_assert!(r <= prev + 1e-12, "risk must not increase with k");
            prev = r;
        }
    }

    /// The Figure 4 bound is monotone in both arguments wherever finite.
    #[test]
    fn min_parties_monotone(s0 in 0.5f64..0.99, o in 0.5f64..0.99) {
        let k = min_parties(s0, o).unwrap();
        prop_assert!(k >= 2);
        if let Some(k2) = min_parties((s0 + 0.005).min(1.0), o) {
            prop_assert!(k2 >= k);
        }
        if let Some(k3) = min_parties(s0, (o + 0.005).min(1.0)) {
            prop_assert!(k3 >= k);
        }
    }

    /// Perturbation inversion recovers the data exactly (no noise) for any
    /// dimension — the algebra behind the coordinator-exclusion rule.
    #[test]
    fn perturbation_invertibility(seed in any::<u64>(), d in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn_matrix(d, 15, &mut rng);
        let g = Perturbation::random(d, &mut rng);
        let back = g.invert_clean(&g.apply_clean(&x));
        prop_assert!(norms::rms_difference(&back, &x) < 1e-9);
    }

    /// Wire-codec roundtrip for matrices of any shape (the payload class the
    /// protocol ships).
    #[test]
    fn matrix_wire_roundtrip(seed in any::<u64>(), r in 1usize..8, c in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = randn_matrix(r, c, &mut rng);
        let bytes = sap_repro::net::wire::to_bytes(&m).unwrap();
        let back: Matrix = sap_repro::net::wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }
}
