//! End-to-end fleet sessions: parties may attach to **any** node — the
//! outcome must be byte-identical whether the gateway owns the session
//! or forwards its registration across the ring. A `kill -9`'d node
//! must fail its sessions fast with the typed fleet error while
//! siblings on surviving nodes complete untouched, and a graceful
//! leaver must hand its unfinished sessions to the new owners.

use sap_repro::core::session::{run_session, SapConfig};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::Dataset;
use sap_repro::fleet::{Fleet, FleetConfig, FleetError};
use sap_repro::net::sim::FaultConfig;
use sap_repro::server::ServerConfig;
use std::time::{Duration, Instant};

/// Per-session protocol config: generous timeout so role scheduling
/// under one shared CPU never turns into a spurious protocol timeout.
fn session_config(seed: u64) -> SapConfig {
    SapConfig {
        timeout: Duration::from_secs(120),
        seed,
        ..SapConfig::quick_test()
    }
}

fn session_locals(seed: u64, k: usize) -> Vec<Dataset> {
    let (pooled, _) = min_max_normalize(&UciDataset::Iris.generate(seed));
    partition(&pooled, k, PartitionScheme::Uniform, seed ^ 0xA5)
}

fn quick_fleet(nodes: usize, k: usize) -> Fleet {
    Fleet::in_memory(FleetConfig {
        server: ServerConfig {
            max_parties: k,
            max_concurrent: 8,
            ..ServerConfig::default()
        },
        ..FleetConfig::quick(nodes)
    })
    .expect("build fleet")
}

const WAIT: Option<Duration> = Some(Duration::from_secs(300));

/// The tentpole equivalence: sessions submitted through every gateway of
/// a 3-node fleet — some owned by their gateway, some forwarded across
/// the ring — all complete byte-identical to their solo-run equivalents.
#[test]
fn sessions_complete_identically_via_any_gateway() {
    let k = 3;
    let fleet = quick_fleet(3, k);

    let mut submissions = Vec::new();
    for gateway in 0..3usize {
        for i in 0..2u64 {
            let seed = 100 + 10 * gateway as u64 + i;
            let id = fleet
                .submit_via(gateway, session_locals(seed, k), &session_config(seed))
                .expect("admit via gateway");
            submissions.push((gateway, seed, id));
        }
    }

    let mut direct = 0u32;
    let mut forwarded = 0u32;
    for &(gateway, seed, id) in &submissions {
        let outcome = fleet.wait(id, WAIT).expect("fleet session completes");
        let solo = run_session(session_locals(seed, k), &session_config(seed))
            .expect("solo session completes");
        assert_eq!(
            outcome.unified, solo.unified,
            "gateway {gateway}, seed {seed}: fleet outcome must be \
             byte-identical to solo, owner or not"
        );
        assert_eq!(outcome.forwarder_of_slot, solo.forwarder_of_slot);
        if fleet.owner_of(id) == Some(gateway) {
            direct += 1;
        } else {
            forwarded += 1;
        }
    }
    // Placement is deterministic (fixed minters, fixed ring), and this
    // schedule exercises both paths.
    assert!(direct >= 1, "no session was owned by its gateway");
    assert!(forwarded >= 1, "no session crossed the ring");

    let m = fleet.metrics();
    assert_eq!(m.nodes_alive, 3);
    assert_eq!(m.sessions_completed, submissions.len() as u64);
    assert_eq!(m.sessions_failed, 0);
    assert_eq!(m.registrations_forwarded, u64::from(forwarded));
    assert_eq!(m.node_deaths_detected, 0);
}

/// `kill -9` semantics: the dead node's sessions fail fast with the
/// typed fleet error (not the 60 s protocol timeout), siblings on
/// surviving nodes complete byte-identical to solo, and the liveness
/// plane repairs the membership view.
#[test]
fn killed_node_fails_fast_and_spares_siblings() {
    let k = 3;
    let fleet = quick_fleet(3, k);

    // A session that can never finish on its own: total packet loss
    // inside its party mesh, with a long protocol timeout. Only the
    // kill can end it — so the error's arrival time measures fail-fast.
    let doomed_config = SapConfig {
        fault_config: Some(FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        }),
        timeout: Duration::from_secs(60),
        ..session_config(500)
    };
    let doomed = fleet
        .submit(session_locals(500, k), &doomed_config)
        .expect("admit doomed session");
    let victim = fleet.owner_of(doomed).expect("doomed session has an owner");

    let siblings: Vec<(u64, _)> = (0..6u64)
        .map(|i| {
            let seed = 700 + i;
            let id = fleet
                .submit(session_locals(seed, k), &session_config(seed))
                .expect("admit sibling");
            (seed, id)
        })
        .collect();

    let killed_at = Instant::now();
    fleet.kill(victim).expect("kill the owner");

    let err = fleet
        .wait(doomed, WAIT)
        .expect_err("doomed session must fail");
    let elapsed = killed_at.elapsed();
    assert!(
        matches!(err, FleetError::NodeDown(n) if n == victim),
        "doomed session must surface the dead node, got: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "kill must fail the session fast, not after the 60 s protocol \
         timeout (took {elapsed:?})"
    );

    let mut survived = 0u32;
    for &(seed, id) in &siblings {
        match fleet.wait(id, WAIT) {
            Ok(outcome) => {
                let solo =
                    run_session(session_locals(seed, k), &session_config(seed)).expect("solo run");
                assert_eq!(
                    outcome.unified, solo.unified,
                    "seed {seed}: sibling on a survivor must be untouched"
                );
                survived += 1;
            }
            Err(FleetError::NodeDown(n)) => {
                assert_eq!(n, victim, "only the killed node may take sessions down");
            }
            Err(e) => panic!("sibling failed with a non-kill error: {e}"),
        }
    }
    assert!(survived >= 1, "some sibling must have lived on a survivor");

    // The liveness plane detects the silence and repairs membership.
    let deadline = Instant::now() + Duration::from_secs(30);
    while fleet.alive().contains(&victim) {
        assert!(
            Instant::now() < deadline,
            "survivors never declared node {victim} dead"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(fleet.alive().len(), 2);
    assert!(fleet.metrics().node_deaths_detected >= 1);
    // The repaired ring re-homes the dead node's arc.
    assert_ne!(fleet.owner_of(doomed), Some(victim));
}

/// Graceful departure: a leaver hands its unfinished sessions to the
/// new owners (same client-facing ids) and every session still
/// completes byte-identical to solo.
#[test]
fn graceful_leave_hands_sessions_over_and_all_complete() {
    let k = 3;
    let fleet = quick_fleet(2, k);

    // Slowed sessions (per-send latency) so some are still mid-flight
    // when the node departs; latency never changes bytes, so solo
    // equivalence still holds.
    let slow = |seed: u64| SapConfig {
        fault_config: Some(FaultConfig {
            send_latency: Duration::from_millis(3),
            ..FaultConfig::default()
        }),
        ..session_config(seed)
    };
    let ids: Vec<(u64, _)> = (0..4u64)
        .map(|i| {
            let seed = 900 + i;
            let id = fleet
                .submit(session_locals(seed, k), &slow(seed))
                .expect("admit slow session");
            (seed, id)
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    let leaver = fleet.alive()[0];
    let handed = fleet.leave(leaver).expect("graceful leave");
    assert_eq!(fleet.alive(), vec![1 - leaver]);

    for &(seed, id) in &ids {
        let outcome = fleet.wait(id, WAIT).expect("session survives the leave");
        let solo = run_session(session_locals(seed, k), &slow(seed)).expect("solo run completes");
        assert_eq!(
            outcome.unified, solo.unified,
            "seed {seed}: outcome must survive the ownership handoff"
        );
    }
    // A graceful leave is not a death.
    assert_eq!(fleet.metrics().node_deaths_detected, 0);
    assert_eq!(fleet.metrics().registrations_replaced, handed as u64);
}
