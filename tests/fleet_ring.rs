//! Property tests for fleet ring membership: randomized
//! join/leave/crash/lookup interleavings against the executable Chord
//! model, checked for Zave's *How to Make Chord Correct* invariants —
//! at most one ring, ordered ring, connected appendages, and exactly
//! one owner per key after stabilization.
//!
//! The vendored proptest shim does no shrinking, so a violating history
//! is minimized by the crate's greedy delta-debugging shrinker
//! ([`shrink_history`]) before being reported.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_repro::core::placement::session_point;
use sap_repro::fleet::chord::{
    run_history, shrink_history, ChordModel, ChordOp, SUCCESSOR_LIST_LEN,
};
use sap_repro::fleet::ring::{node_point, HashRing};
use sap_repro::net::SessionId;

/// A bounded random membership history. Crash bursts between
/// stabilizations stay below the successor-list length — Zave's "< r
/// failures between stabilizations" assumption, under which the
/// invariants are required to hold (the model refuses stranding
/// removals outright, so breaching the budget wastes ops rather than
/// faking violations).
fn random_schedule(seed: u64) -> Vec<ChordOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut members: Vec<u64> = Vec::new();
    let fresh_id = |rng: &mut StdRng, members: &[u64]| loop {
        let id = rng.random_range(1..u64::MAX);
        if !members.contains(&id) {
            return id;
        }
    };

    // Bootstrap a small stabilized core.
    for _ in 0..rng.random_range(2..5usize) {
        let id = fresh_id(&mut rng, &members);
        members.push(id);
        ops.push(ChordOp::Join(id));
    }
    ops.push(ChordOp::Stabilize);

    let mut crashes_since_stabilize = 0usize;
    for _ in 0..rng.random_range(8..40usize) {
        match rng.random_range(0..100u32) {
            0..=29 => {
                let id = fresh_id(&mut rng, &members);
                members.push(id);
                ops.push(ChordOp::Join(id));
            }
            30..=44 if members.len() > 2 => {
                let idx = rng.random_range(0..members.len());
                ops.push(ChordOp::Leave(members.swap_remove(idx)));
            }
            45..=59 if members.len() > 2 => {
                if crashes_since_stabilize + 1 >= SUCCESSOR_LIST_LEN {
                    ops.push(ChordOp::Stabilize);
                    crashes_since_stabilize = 0;
                }
                let idx = rng.random_range(0..members.len());
                ops.push(ChordOp::Crash(members.swap_remove(idx)));
                crashes_since_stabilize += 1;
            }
            60..=79 => {
                ops.push(ChordOp::Lookup(rng.random_range(0..u64::MAX)));
            }
            _ => {
                ops.push(ChordOp::Stabilize);
                crashes_since_stabilize = 0;
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: any bounded history of joins, graceful
    /// leaves, silent crashes, and lookups preserves every invariant at
    /// every step, and full ownership after every stabilization.
    #[test]
    fn random_histories_preserve_zave_invariants(seed in any::<u64>()) {
        let ops = random_schedule(seed);
        if let Err(failure) = run_history(SUCCESSOR_LIST_LEN, &ops) {
            let minimal = shrink_history(&ops, |h| {
                run_history(SUCCESSOR_LIST_LEN, h).is_err()
            });
            let witness = run_history(SUCCESSOR_LIST_LEN, &minimal);
            panic!(
                "seed {seed}: {failure:?}\nminimal violating history \
                 ({} of {} ops): {minimal:?}\nminimal failure: {witness:?}",
                minimal.len(),
                ops.len(),
            );
        }
    }

    /// The model's stabilized ownership coincides with the fleet's
    /// [`HashRing`] placement function: for any membership and any
    /// session id, `successor(hash(id))` names the same node both ways.
    #[test]
    fn stabilized_model_agrees_with_the_hash_ring(
        seed in any::<u64>(),
        n in 1usize..8,
    ) {
        let mut model = ChordModel::new(SUCCESSOR_LIST_LEN);
        for j in 0..n {
            prop_assert!(model.join(node_point(j)), "duplicate node point");
        }
        model.stabilize_all().map_err(|v| format!("stabilization failed: {v:?}"))?;
        let ring = HashRing::from_members(0..n);

        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let id = SessionId(rng.random_range(1..u64::MAX));
            let by_ring = ring.owner_of(id).map(node_point);
            let by_model = model.ideal_owner(session_point(id));
            prop_assert_eq!(by_ring, by_model);
            // And the routed lookup from every start agrees too.
            for j in 0..n {
                let looked = model.lookup(node_point(j), session_point(id));
                prop_assert_eq!(looked, by_model);
            }
        }
    }

    /// Crashing a node only re-homes the keys it owned (consistent
    /// hashing's minimal-disruption contract), and the survivors'
    /// stabilized ownership matches the shrunken hash ring.
    #[test]
    fn crash_only_moves_the_dead_nodes_keys(seed in any::<u64>(), n in 3usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = ChordModel::new(SUCCESSOR_LIST_LEN);
        for j in 0..n {
            model.join(node_point(j));
        }
        model.stabilize_all().map_err(|v| format!("bootstrap failed: {v:?}"))?;

        let victim = rng.random_range(0..n);
        let before = HashRing::from_members(0..n);
        prop_assert!(model.crash(node_point(victim)), "crash refused");
        model.stabilize_all().map_err(|v| format!("repair failed: {v:?}"))?;
        let after = HashRing::from_members((0..n).filter(|&j| j != victim));

        for _ in 0..64 {
            let id = SessionId(rng.random_range(1..u64::MAX));
            let owner_before = before.owner_of(id);
            let owner_after = after.owner_of(id);
            if owner_before != Some(victim) {
                prop_assert_eq!(owner_before, owner_after);
            } else {
                prop_assert!(owner_after.is_some() && owner_after != Some(victim));
            }
            // The healed model agrees with the shrunken ring.
            prop_assert_eq!(
                model.ideal_owner(session_point(id)),
                owner_after.map(node_point)
            );
        }
    }
}

/// The shrinker really minimizes: a history failing only because of one
/// specific op pair shrinks to (at most) that pair.
#[test]
fn shrinker_produces_minimal_witnesses() {
    let a = node_point(1);
    let b = node_point(2);
    let noise: Vec<ChordOp> = (10..30).map(|j| ChordOp::Lookup(node_point(j))).collect();
    let mut ops = vec![ChordOp::Join(a)];
    ops.extend(noise);
    ops.push(ChordOp::Join(b));
    ops.push(ChordOp::Stabilize);

    // Predicate: "history still joins both a and b" — stands in for a
    // failure only those two ops can produce.
    let minimal = shrink_history(&ops, |h| {
        h.contains(&ChordOp::Join(a)) && h.contains(&ChordOp::Join(b))
    });
    assert_eq!(minimal, vec![ChordOp::Join(a), ChordOp::Join(b)]);
}
