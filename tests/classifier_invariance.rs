//! The paper's foundational utility claim: KNN, RBF-SVM and linear
//! classifiers are invariant to the rotation + translation part of
//! geometric perturbation, and degrade only with the noise component.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::classify::perceptron::{Perceptron, PerceptronConfig};
use sap_repro::classify::{KnnClassifier, Model, SvmClassifier, SvmConfig};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::split::stratified_split;
use sap_repro::datasets::Dataset;
use sap_repro::perturb::Perturbation;

/// Applies the same noise-free perturbation to train and test.
fn perturb_pair(train: &Dataset, test: &Dataset, g: &Perturbation) -> (Dataset, Dataset) {
    let pt = |d: &Dataset| {
        let m = g.apply_clean(&d.to_column_matrix());
        Dataset::from_column_matrix(&m, d.labels().to_vec(), d.num_classes())
    };
    (pt(train), pt(test))
}

#[test]
fn knn_is_exactly_rotation_invariant() {
    let (data, _) = min_max_normalize(&UciDataset::Wine.generate(1));
    let tt = stratified_split(&data, 0.7, 2);
    let clean = KnnClassifier::fit(&tt.train, 5);
    let clean_preds = clean.predict_dataset(&tt.test);

    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3 {
        let g = Perturbation::random(data.dim(), &mut rng);
        let (ptrain, ptest) = perturb_pair(&tt.train, &tt.test, &g);
        let knn = KnnClassifier::fit(&ptrain, 5);
        let preds = knn.predict_dataset(&ptest);
        assert_eq!(
            preds, clean_preds,
            "KNN predictions must be identical under isometry"
        );
    }
}

#[test]
fn rbf_svm_accuracy_is_rotation_invariant() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(2));
    let tt = stratified_split(&data, 0.7, 3);
    let cfg = SvmConfig::rbf_for_dim(data.dim());
    let clean_acc = SvmClassifier::fit(&tt.train, &cfg).accuracy(&tt.test);

    let mut rng = StdRng::seed_from_u64(4);
    let g = Perturbation::random(data.dim(), &mut rng);
    let (ptrain, ptest) = perturb_pair(&tt.train, &tt.test, &g);
    let pert_acc = SvmClassifier::fit(&ptrain, &cfg).accuracy(&ptest);
    // RBF kernels depend only on distances: accuracy is preserved (SMO's
    // random partner choices can flip a boundary point or two).
    assert!(
        (clean_acc - pert_acc).abs() < 0.06,
        "RBF-SVM accuracy moved: clean {clean_acc:.3} vs perturbed {pert_acc:.3}"
    );
}

#[test]
fn perceptron_accuracy_survives_rotation() {
    let (data, _) = min_max_normalize(&UciDataset::BreastW.generate(3));
    let tt = stratified_split(&data, 0.7, 4);
    let cfg = PerceptronConfig::default();
    let clean_acc = Perceptron::fit(&tt.train, &cfg).accuracy(&tt.test);

    let mut rng = StdRng::seed_from_u64(5);
    let g = Perturbation::random(data.dim(), &mut rng);
    let (ptrain, ptest) = perturb_pair(&tt.train, &tt.test, &g);
    let pert_acc = Perceptron::fit(&ptrain, &cfg).accuracy(&ptest);
    // Linear separability is affine-invariant; training is stochastic so
    // allow a modest band.
    assert!(
        (clean_acc - pert_acc).abs() < 0.08,
        "perceptron accuracy moved: clean {clean_acc:.3} vs perturbed {pert_acc:.3}"
    );
}

/// The *negative control*: naive Bayes models attributes independently, so
/// a rotation (which mixes attributes) breaks it — geometric perturbation's
/// invariance claim is specific to distance/inner-product classifiers,
/// and this test pins the boundary.
#[test]
fn naive_bayes_is_not_rotation_invariant() {
    use sap_repro::classify::GaussianNaiveBayes;

    // Axis-aligned, anisotropic classes: NB's favorite geometry. After a
    // rotation that mixes the axes, its independence assumption breaks.
    let mut rng = StdRng::seed_from_u64(77);
    let mut records = Vec::new();
    let mut labels = Vec::new();
    for i in 0..400 {
        let class = i % 2;
        let x = sap_repro::linalg::randn(&mut rng) * 4.0; // high-variance axis
        let y = sap_repro::linalg::randn(&mut rng) * 0.08 + if class == 0 { -0.4 } else { 0.4 };
        records.push(vec![x, y]);
        labels.push(class);
    }
    let data = Dataset::new(records, labels);
    let tt = stratified_split(&data, 0.7, 78);
    let clean_acc = GaussianNaiveBayes::fit(&tt.train).accuracy(&tt.test);
    assert!(clean_acc > 0.95, "clean NB accuracy {clean_acc}");

    // A 45° mix of the axes destroys the axis-aligned separability.
    let theta = std::f64::consts::FRAC_PI_4;
    let r = sap_repro::linalg::Matrix::from_rows(&[
        vec![theta.cos(), -theta.sin()],
        vec![theta.sin(), theta.cos()],
    ]);
    let g = Perturbation::new(r, vec![0.0, 0.0]).unwrap();
    let (ptrain, ptest) = perturb_pair(&tt.train, &tt.test, &g);
    let rot_acc = GaussianNaiveBayes::fit(&ptrain).accuracy(&ptest);
    assert!(
        rot_acc < clean_acc - 0.1,
        "NB should degrade under rotation: clean {clean_acc:.3} vs rotated {rot_acc:.3}"
    );
}

#[test]
fn noise_degrades_accuracy_monotonically_in_expectation() {
    // The noise component is the only lossy part of geometric perturbation.
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(4));
    let tt = stratified_split(&data, 0.7, 5);
    let mut rng = StdRng::seed_from_u64(6);

    let acc_at = |sigma: f64, rng: &mut StdRng| -> f64 {
        let mut accs = Vec::new();
        for _ in 0..3 {
            let g = sap_repro::perturb::GeometricPerturbation::random(data.dim(), sigma, rng);
            let (ytr, _) = g.perturb(&tt.train.to_column_matrix(), rng);
            let (yte, _) = g.perturb(&tt.test.to_column_matrix(), rng);
            let ptrain =
                Dataset::from_column_matrix(&ytr, tt.train.labels().to_vec(), data.num_classes());
            let ptest =
                Dataset::from_column_matrix(&yte, tt.test.labels().to_vec(), data.num_classes());
            accs.push(KnnClassifier::fit(&ptrain, 5).accuracy(&ptest));
        }
        sap_repro::linalg::vecops::mean(&accs)
    };

    let low = acc_at(0.01, &mut rng);
    let high = acc_at(0.6, &mut rng);
    assert!(
        low > high + 0.02,
        "heavy noise should cost accuracy: sigma=0.01 -> {low:.3}, sigma=0.6 -> {high:.3}"
    );
}
