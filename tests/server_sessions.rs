//! Multi-session server runtime, end to end: concurrent sessions over one
//! shared mesh must behave exactly like solo runs — byte-identical
//! outcomes, and fault isolation between sessions.

use sap_repro::core::session::{run_session, SapConfig};
use sap_repro::core::SapError;
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::Dataset;
use sap_repro::net::sim::FaultConfig;
use sap_repro::server::{SapServer, ServerConfig, ServerError};
use std::time::Duration;

/// Per-session protocol config: generous timeout so role scheduling under
/// one shared CPU never turns into a spurious protocol timeout.
fn session_config(seed: u64) -> SapConfig {
    SapConfig {
        timeout: Duration::from_secs(120),
        seed,
        ..SapConfig::quick_test()
    }
}

fn session_locals(seed: u64, k: usize) -> Vec<Dataset> {
    let (pooled, _) = min_max_normalize(&UciDataset::Iris.generate(seed));
    partition(&pooled, k, PartitionScheme::Uniform, seed ^ 0xA5)
}

const WAIT: Option<Duration> = Some(Duration::from_secs(300));

/// The acceptance scenario: 8 concurrent sessions through one TCP-backed
/// `SapServer`, every outcome byte-identical to its solo-run equivalent.
#[test]
fn eight_concurrent_tcp_sessions_match_solo_runs() {
    let k = 4;
    let server = SapServer::local_tcp(ServerConfig {
        max_parties: k,
        max_concurrent: 8,
        ..ServerConfig::default()
    })
    .expect("bind TCP lanes");

    let ids: Vec<_> = (0..8u64)
        .map(|i| {
            server
                .submit(session_locals(100 + i, k), &session_config(1000 + i))
                .expect("admit session")
        })
        .collect();

    let outcomes: Vec<_> = ids
        .iter()
        .map(|&id| server.wait(id, WAIT).expect("concurrent session completes"))
        .collect();

    for (i, outcome) in outcomes.iter().enumerate() {
        let solo = run_session(
            session_locals(100 + i as u64, k),
            &session_config(1000 + i as u64),
        )
        .expect("solo session completes");
        assert_eq!(
            outcome.unified, solo.unified,
            "session {i}: concurrent outcome must be byte-identical to solo"
        );
        assert_eq!(outcome.forwarder_of_slot, solo.forwarder_of_slot);
        assert_eq!(outcome.reports.len(), solo.reports.len());
    }

    let metrics = server.metrics();
    assert_eq!(metrics.sessions_started, 8);
    assert_eq!(metrics.sessions_completed, 8);
    assert_eq!(metrics.sessions_failed, 0);
    assert!(metrics.blocks_relayed >= 8 * k as u64);
    assert!(metrics.bytes_sealed > 0);
    assert!(metrics.frames_routed > 0);
}

/// Fault isolation: of 4 concurrent sessions, one runs under total packet
/// loss. It must abort; the other three must complete byte-identical to
/// their solo equivalents.
#[test]
fn faulty_session_is_isolated_from_siblings() {
    let k = 3;
    let server = SapServer::in_memory(ServerConfig {
        max_parties: k,
        max_concurrent: 4,
        ..ServerConfig::default()
    })
    .expect("build hub server");

    let lossy = SapConfig {
        fault_config: Some(FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        }),
        timeout: Duration::from_secs(2),
        ..session_config(500)
    };

    let healthy_ids: Vec<_> = (0..3u64)
        .map(|i| {
            server
                .submit(session_locals(200 + i, k), &session_config(2000 + i))
                .expect("admit healthy session")
        })
        .collect();
    let lossy_id = server
        .submit(session_locals(500, k), &lossy)
        .expect("admit lossy session");

    // The lossy session aborts with a timeout…
    let err = server
        .wait(lossy_id, WAIT)
        .expect_err("lossy session must abort");
    assert!(
        matches!(err, ServerError::Session(SapError::Timeout { .. })),
        "lossy session must time out, got: {err}"
    );

    // …while its siblings complete, byte-identical to solo runs.
    for (i, id) in healthy_ids.iter().enumerate() {
        let outcome = server.wait(*id, WAIT).expect("healthy session completes");
        let solo = run_session(
            session_locals(200 + i as u64, k),
            &session_config(2000 + i as u64),
        )
        .expect("solo run");
        assert_eq!(
            outcome.unified, solo.unified,
            "session {i} must be untouched by its lossy sibling"
        );
        assert_eq!(outcome.forwarder_of_slot, solo.forwarder_of_slot);
    }

    let metrics = server.metrics();
    assert_eq!(metrics.sessions_completed, 3);
    assert_eq!(metrics.sessions_failed, 1);
}

/// Sessions queue when the pool is smaller than the offered load, and
/// still all complete correctly (gang scheduling, FIFO admission).
#[test]
fn sessions_queue_for_a_small_pool_and_still_complete() {
    let k = 3;
    let server = SapServer::in_memory(ServerConfig {
        max_parties: k,
        max_concurrent: 8,
        // One gang's worth of workers: sessions run strictly one at a time.
        worker_threads: k + 1,
        ..ServerConfig::default()
    })
    .expect("build hub server");
    assert_eq!(server.pool_capacity(), k + 1);

    let ids: Vec<_> = (0..4u64)
        .map(|i| {
            server
                .submit(session_locals(300 + i, k), &session_config(3000 + i))
                .expect("admit")
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let outcome = server.wait(*id, WAIT).expect("queued session completes");
        let solo = run_session(
            session_locals(300 + i as u64, k),
            &session_config(3000 + i as u64),
        )
        .expect("solo run");
        assert_eq!(outcome.unified, solo.unified);
    }
}
