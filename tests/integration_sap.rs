//! End-to-end integration tests of the full SAP pipeline: datasets →
//! perturbation → protocol → mining, spanning every crate in the workspace.

use sap_repro::classify::{KnnClassifier, Model};
use sap_repro::core::session::{run_session, SapConfig, MINER_ID};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::split::stratified_split;
use sap_repro::datasets::Dataset;
use sap_repro::linalg::vecops;
use sap_repro::net::PartyId;

fn quick() -> SapConfig {
    SapConfig::quick_test()
}

#[test]
fn session_preserves_record_count_and_labels() {
    let (data, _) = min_max_normalize(&UciDataset::Wine.generate(1));
    let locals = partition(&data, 4, PartitionScheme::Uniform, 2);
    let outcome = run_session(locals, &quick()).unwrap();
    assert_eq!(outcome.unified.len(), data.len());
    assert_eq!(outcome.unified.dim(), data.dim());
    // Label multiset preserved (order is permuted by the exchange).
    assert_eq!(outcome.unified.class_counts(), data.class_counts());
}

#[test]
fn unified_records_are_target_space_images_up_to_noise() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(2));
    let locals = partition(&data, 4, PartitionScheme::Uniform, 3);
    let config = quick();
    let sigma = config.optimizer.noise_sigma;
    let outcome = run_session(locals, &config).unwrap();

    // Inverting the target space should land every unified record within the
    // noise floor of SOME original record.
    let inverted = outcome
        .target
        .invert_clean(&outcome.unified.to_column_matrix());
    let d = data.dim() as f64;
    let noise_budget = 6.0 * sigma * d.sqrt() + 1e-6;
    for c in (0..inverted.cols()).step_by(17) {
        let rec = inverted.column(c);
        let nearest = data
            .records()
            .iter()
            .map(|r| vecops::dist2(&rec, r))
            .fold(f64::INFINITY, f64::min);
        assert!(
            nearest < noise_budget,
            "unified record {c} is {nearest:.4} from any original (budget {noise_budget:.4})"
        );
    }
}

#[test]
fn knn_accuracy_survives_the_protocol() {
    // The paper's headline utility claim (Figure 5) on one dataset.
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(3));
    let tt = stratified_split(&data, 0.7, 4);
    let baseline = KnnClassifier::fit(&tt.train, 5).accuracy(&tt.test);

    let locals = partition(&tt.train, 4, PartitionScheme::Uniform, 5);
    let outcome = run_session(locals, &quick()).unwrap();
    let test_unified = {
        let m = outcome.target.apply_clean(&tt.test.to_column_matrix());
        Dataset::from_column_matrix(&m, tt.test.labels().to_vec(), tt.test.num_classes())
    };
    let perturbed = KnnClassifier::fit(&outcome.unified, 5).accuracy(&test_unified);
    assert!(
        (perturbed - baseline).abs() < 0.12,
        "deviation too large: baseline {baseline:.3}, perturbed {perturbed:.3}"
    );
}

#[test]
fn audit_invariants_hold_across_seeds_and_schemes() {
    for seed in [1u64, 2, 3] {
        for scheme in [PartitionScheme::Uniform, PartitionScheme::ClassSkewed] {
            let (data, _) = min_max_normalize(&UciDataset::Iris.generate(seed));
            let locals = partition(&data, 5, scheme, seed);
            let mut config = quick();
            config.seed = seed;
            let outcome = run_session(locals, &config).unwrap();
            let providers: Vec<PartyId> = (0..5).map(PartyId).collect();
            outcome
                .audit
                .verify_flow(PartyId(4), MINER_ID, &providers)
                .unwrap_or_else(|e| panic!("flow violation at seed {seed}: {e}"));
            // Coordinator saw adaptors but no data.
            assert!(outcome.audit.party_saw_parameters(PartyId(4)));
            assert!(!outcome.audit.party_saw_data(PartyId(4)));
        }
    }
}

#[test]
fn coordinator_never_relays_and_forwarders_vary() {
    // Across sessions, the forwarder set must exclude the coordinator and
    // should not be constant (the exchange is random).
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(9));
    let mut seen_forwarder_sets = std::collections::HashSet::new();
    for seed in 0..6u64 {
        let locals = partition(&data, 5, PartitionScheme::Uniform, 11);
        let mut config = quick();
        config.seed = seed;
        let outcome = run_session(locals, &config).unwrap();
        let mut forwarders: Vec<u64> = outcome.forwarder_of_slot.iter().map(|(_, p)| p.0).collect();
        assert!(forwarders.iter().all(|&f| f != 4), "coordinator relayed");
        forwarders.sort_unstable();
        seen_forwarder_sets.insert(format!("{forwarders:?}"));
    }
    assert!(
        seen_forwarder_sets.len() > 1,
        "exchange assignment should vary across sessions"
    );
}

#[test]
fn satisfaction_levels_are_mostly_high() {
    // The protocol's economics: unified-space privacy should be a large
    // fraction of locally-optimized privacy for most providers.
    let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(4));
    let locals = partition(&data, 4, PartitionScheme::Uniform, 6);
    let outcome = run_session(locals, &quick()).unwrap();
    let sats: Vec<f64> = outcome.reports.iter().map(|r| r.satisfaction).collect();
    let mean = vecops::mean(&sats);
    assert!(
        mean > 0.5,
        "mean satisfaction {mean:.3} implausibly low: {sats:?}"
    );
}

#[test]
fn works_at_the_minimum_party_count() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(5));
    let locals = partition(&data, 3, PartitionScheme::Uniform, 7);
    let outcome = run_session(locals, &quick()).unwrap();
    assert_eq!(outcome.reports.len(), 3);
    assert!((outcome.identifiability - 0.5).abs() < 1e-12);
}

#[test]
fn scales_to_ten_parties() {
    let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(6));
    let locals = partition(&data, 10, PartitionScheme::Uniform, 8);
    let outcome = run_session(locals, &quick()).unwrap();
    assert_eq!(outcome.reports.len(), 10);
    assert!((outcome.identifiability - 1.0 / 9.0).abs() < 1e-12);
    assert_eq!(outcome.unified.len(), data.len());
}
