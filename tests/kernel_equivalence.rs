//! Property tests pinning every packed/fused compute kernel to its
//! reference implementation — **bit-for-bit**, not approximately.
//!
//! Three kernels, three invariants:
//!
//! * packed register-blocked matmul ≡ [`kernel::matmul_rows`], for any
//!   shape (including 1×1 and ragged edges), any zero density, and any
//!   worker count — tiling and packing may only change *which* elements
//!   are in flight, never an element's ascending-`k` accumulation order;
//! * bounded-heap top-`k` selection ≡ stable full sort + truncate, with
//!   duplicate distances (the index tie rule), `k ≥ n`, and `k == 0`
//!   rejected;
//! * fused rotate+shift+noise perturbation ≡ the staged two-pass path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::classify::topk::{select_k_smallest, select_k_smallest_reference};
use sap_repro::linalg::{kernel, Matrix};
use sap_repro::perturb::GeometricPerturbation;

/// Deterministic pseudo-random matrix with exact `0.0` entries every
/// `zero_every`-th element (`0` disables zeros). The zero density matters
/// because the kernels' `A[i][k] == 0.0` skip is part of the pinned
/// accumulation order.
fn lcg_matrix(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |r, c| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if zero_every > 0 && (r * cols + c).is_multiple_of(zero_every) {
            0.0
        } else {
            (state % 2000) as f64 / 997.0 - 1.0
        }
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The packed microkernel itself, for shapes the `packing_pays`
    /// heuristic would never route there: edge handling (ragged rows and
    /// panels, 1×1) must still be exact.
    #[test]
    fn packed_kernel_matches_reference_on_any_shape(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..(1 << 16),
        zero_every in 0usize..5,
    ) {
        let a = lcg_matrix(m, k, seed, zero_every);
        let b = lcg_matrix(k, n, seed ^ 0xabcd, zero_every);

        let mut reference = vec![0.0; m * n];
        kernel::matmul_rows(&a, &b, 0, &mut reference);

        let packed = kernel::pack_b(&b);
        let mut fast = vec![0.0; m * n];
        kernel::matmul_packed_rows(&a, &packed, 0, &mut fast);

        prop_assert_eq!(bits(&reference), bits(&fast));
    }

    /// The public entry point: whatever path `matmul_with_workers` picks
    /// (reference, packed, split across 1/2/4 workers), the bits match
    /// the pinned reference. Shapes up to 40³ cross both the
    /// `packing_pays` and the `worth_splitting` thresholds.
    #[test]
    fn matmul_is_bit_identical_across_paths_and_workers(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..(1 << 16),
        zero_every in 0usize..4,
    ) {
        let a = lcg_matrix(m, k, seed, zero_every);
        let b = lcg_matrix(k, n, seed ^ 0x5a5a, zero_every);

        let mut reference = vec![0.0; m * n];
        kernel::matmul_rows(&a, &b, 0, &mut reference);

        for workers in [1usize, 2, 4] {
            let got = a.matmul_with_workers(&b, workers).expect("conforming shapes");
            // workers ∈ {1, 2, 4} — worker count may change only the split, not the bits
            let _ = workers;
            prop_assert_eq!(bits(&reference), bits(got.as_slice()));
        }
    }

    /// Shapes inside the packed-routing region (`m ≥ 128`, narrow `n`,
    /// small `k` — `packing_pays` true): the dispatcher takes the packed
    /// kernel and the bits still match the reference.
    #[test]
    fn packed_dispatch_region_is_bit_identical(
        m in 128usize..200,
        k in 8usize..33,
        n in 8usize..17,
        seed in 0u64..(1 << 16),
        zero_every in 0usize..4,
    ) {
        // Every shape in these ranges routes packed: m ≥ 128, n ∈ 8..=16,
        // k ≤ 32, and m·k·n ≥ 128·8·8 clears the flop floor.
        prop_assert!(kernel::packing_pays(m, k, n));
        let a = lcg_matrix(m, k, seed, zero_every);
        let b = lcg_matrix(k, n, seed ^ 0x1111, zero_every);

        let mut reference = vec![0.0; m * n];
        kernel::matmul_rows(&a, &b, 0, &mut reference);

        for workers in [1usize, 2, 4] {
            let got = a.matmul_with_workers(&b, workers).expect("conforming shapes");
            prop_assert_eq!(bits(&reference), bits(got.as_slice()));
        }
    }

    /// Gram-style products: `A·Bᵀ` through the 4×4 transpose kernel
    /// equals the reference product against an explicitly transposed
    /// right factor.
    #[test]
    fn mul_transpose_matches_explicit_transpose(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..(1 << 16),
        zero_every in 0usize..4,
    ) {
        let a = lcg_matrix(m, k, seed, zero_every);
        let b = lcg_matrix(n, k, seed ^ 0x77, zero_every);

        let bt = b.transpose();
        let mut reference = vec![0.0; m * n];
        kernel::matmul_rows(&a, &bt, 0, &mut reference);

        let got = a.mul_transpose(&b).expect("conforming shapes");
        prop_assert_eq!(bits(&reference), bits(got.as_slice()));
    }

    /// Bounded-heap top-k ≡ stable sort + truncate, including duplicate
    /// distances (`dup_mod` collapses values onto a small grid so ties
    /// are common) and `k ≥ n` (the `k` range exceeds the `n` range).
    #[test]
    fn top_k_matches_stable_sort_reference(
        n in 1usize..200,
        k in 1usize..220,
        seed in 0u64..(1 << 16),
        dup_mod in 1u64..8,
    ) {
        let mut state = seed | 1;
        let values: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % dup_mod) as f64 / dup_mod as f64
            })
            .collect();

        let fast = select_k_smallest(values.iter().copied(), k);
        let reference = select_k_smallest_reference(values.iter().copied(), k);

        prop_assert_eq!(fast.len(), reference.len());
        for (f, r) in fast.iter().zip(&reference) {
            prop_assert_eq!(f.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(f.1, r.1);
        }
    }

    /// Fused rotate+shift+noise ≡ staged two-pass, for every block
    /// partition of the column range.
    #[test]
    fn fused_perturbation_matches_staged(
        d in 1usize..10,
        n in 1usize..48,
        block in 1usize..48,
        seed in 0u64..(1 << 16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = GeometricPerturbation::random(d, 0.1, &mut rng);
        let x = lcg_matrix(d, n, seed ^ 3, 3);
        let delta = lcg_matrix(d, n, seed ^ 9, 0);

        let mut fused = Vec::new();
        let mut staged = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + block).min(n);
            g.perturb_records_into(&x, &delta, start..end, &mut fused);
            g.perturb_records_staged_into(&x, &delta, start..end, &mut staged);
            prop_assert_eq!(bits(&fused), bits(&staged));
            start = end;
        }
    }
}

/// The degenerate 1×1×1 product goes through every dispatch layer
/// without touching the packed or split paths.
#[test]
fn one_by_one_matmul_is_exact() {
    let a = Matrix::from_fn(1, 1, |_, _| 3.25);
    let b = Matrix::from_fn(1, 1, |_, _| -2.5);
    for workers in [1usize, 2, 4] {
        let got = a.matmul_with_workers(&b, workers).expect("1x1 product");
        assert_eq!(got.as_slice(), &[3.25 * -2.5]);
    }
}

/// `k == 0` is a contract violation, not a silent empty result.
#[test]
#[should_panic(expected = "top-k selection needs k >= 1")]
fn top_k_rejects_k_zero() {
    let _ = select_k_smallest([1.0, 2.0], 0);
}

/// NaN distances order last (total order), they no longer panic.
#[test]
fn top_k_orders_nan_last_instead_of_panicking() {
    let got = select_k_smallest([f64::NAN, 1.0, 0.5], 3);
    assert_eq!(got[0], (0.5, 2));
    assert_eq!(got[1], (1.0, 1));
    assert!(got[2].0.is_nan());
    assert_eq!(got[2].1, 0);
}
