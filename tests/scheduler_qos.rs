//! QoS gang-scheduler properties, pinned at two levels:
//!
//! * **Pool level** (proptest): under random gang sizes, classes, and
//!   arrival orders, the scheduler never runs more tasks than it has
//!   workers (`committed <= workers` — the invariant that keeps a fixed
//!   pool of blocking actors deadlock-free), never starves an aged batch
//!   gang behind a continuous interactive stream, and sheds exactly the
//!   gangs whose deadline budget provably cannot be met.
//! * **Server level**: an interactive session submitted behind a queued
//!   batch backlog overtakes it, and a queued session with a hopeless
//!   budget is shed with a typed [`SapError::AdmissionShed`] instead of
//!   burning pool time on a guaranteed `DeadlineExceeded`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::core::session::SapConfig;
use sap_repro::core::{
    ActorPool, Deadline, Gang, QosClass, SapError, SchedPolicy, SchedulerConfig, SessionStatus,
};
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::Dataset;
use sap_repro::linalg::randn_matrix;
use sap_repro::server::{SapServer, ServerConfig, ServerError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spins until `counter` reaches `target` (10s ceiling, far above any
/// schedule this file produces). Returns whether the target was reached.
fn wait_for(counter: &AtomicUsize, target: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter.load(Ordering::SeqCst) < target {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Tiny deterministic generator for gang shapes — keeps the property
/// cases reproducible from a single proptest-drawn seed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The load-bearing invariant: however gangs arrive (random sizes,
    /// random classes, all three supported pool widths), the number of
    /// tasks running at any instant never exceeds the worker count, and
    /// every admitted gang still completes.
    #[test]
    fn committed_never_exceeds_workers(seed in any::<u64>(), gangs in 4usize..10) {
        for &workers in &[1usize, 2, 4] {
            let pool = ActorPool::with_config(workers, SchedulerConfig::default());
            let running = Arc::new(AtomicUsize::new(0));
            let high_water = Arc::new(AtomicUsize::new(0));
            let done = Arc::new(AtomicUsize::new(0));
            let mut state = seed ^ (workers as u64);
            let mut total_tasks = 0usize;

            for _ in 0..gangs {
                let size = (xorshift(&mut state) as usize % workers) + 1;
                let class = if xorshift(&mut state) & 1 == 0 {
                    QosClass::Interactive
                } else {
                    QosClass::Batch
                };
                let mut gang = Gang::new(class);
                for _ in 0..size {
                    total_tasks += 1;
                    let running = Arc::clone(&running);
                    let high_water = Arc::clone(&high_water);
                    let done = Arc::clone(&done);
                    gang.push(move || {
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        high_water.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                        running.fetch_sub(1, Ordering::SeqCst);
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                pool.submit(gang).expect("gang fits the pool");
            }

            prop_assert!(wait_for(&done, total_tasks), "all gangs must finish");
            let peak = high_water.load(Ordering::SeqCst);
            prop_assert!(
                peak <= workers,
                "saw {} concurrent tasks on a {}-worker pool", peak, workers
            );
            let stats = pool.stats();
            prop_assert_eq!(stats.gangs_admitted, gangs as u64);
            prop_assert_eq!(stats.gangs_shed, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Strict priority must not become starvation: a batch gang queued
    /// behind a continuous interactive stream is promoted once it ages
    /// past the threshold and completes while interactive work is still
    /// arriving.
    #[test]
    fn aged_batch_gang_is_never_starved(task_ms in 1u64..4, feedstream in 40usize..80) {
        let pool = Arc::new(ActorPool::with_config(
            1,
            SchedulerConfig {
                policy: SchedPolicy::Qos,
                batch_aging: Duration::from_millis(25),
            },
        ));
        let batch_done = Arc::new(AtomicUsize::new(0));
        let interactive_done = Arc::new(AtomicUsize::new(0));

        // A blocker pins the lone worker past the aging threshold so the
        // batch gang genuinely queues; behind it, an interactive stream
        // long enough (feedstream × task_ms >> 25ms aging) that strict
        // priority alone would hold the batch gang back until the stream
        // ends.
        {
            let mut blocker = Gang::new(QosClass::Interactive);
            blocker.push(|| std::thread::sleep(Duration::from_millis(30)));
            pool.submit(blocker).expect("submit blocker gang");
        }
        {
            let done = Arc::clone(&batch_done);
            let mut gang = Gang::new(QosClass::Batch);
            gang.push(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
            pool.submit(gang).expect("submit batch gang");
        }
        let feeder = {
            let pool = Arc::clone(&pool);
            let interactive_done = Arc::clone(&interactive_done);
            let batch_done = Arc::clone(&batch_done);
            std::thread::spawn(move || {
                let mut fed = 0usize;
                while fed < feedstream && batch_done.load(Ordering::SeqCst) == 0 {
                    let done = Arc::clone(&interactive_done);
                    let mut gang = Gang::new(QosClass::Interactive);
                    gang.push(move || {
                        std::thread::sleep(Duration::from_millis(task_ms));
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                    pool.submit(gang).expect("submit interactive gang");
                    fed += 1;
                    // Arrivals at half the service time: the interactive
                    // queue stays non-empty the whole run.
                    std::thread::sleep(Duration::from_micros(task_ms * 500));
                }
                fed
            })
        };

        prop_assert!(
            wait_for(&batch_done, 1),
            "batch gang starved behind the interactive stream"
        );
        let fed = feeder.join().expect("feeder thread");
        prop_assert!(
            interactive_done.load(Ordering::SeqCst) < fed || fed < feedstream,
            "batch completed only after the stream dried up"
        );
        prop_assert!(pool.stats().gangs_promoted >= 1, "aging must promote");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Admission sheds exactly the provably-unmeetable gangs: an already
    /// spent budget is shed without ever running a task, while generous
    /// and unbounded deadlines always survive to completion — whatever
    /// order the two kinds arrive in.
    #[test]
    fn sheds_only_provably_unmeetable_budgets(seed in any::<u64>(), gangs in 6usize..12) {
        let pool = ActorPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let doomed_ran = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let mut state = seed;
        let mut doomed = 0usize;
        let mut viable_tasks = 0usize;

        for _ in 0..gangs {
            let roll = xorshift(&mut state);
            let class = if roll & 1 == 0 { QosClass::Interactive } else { QosClass::Batch };
            let mut gang = Gang::new(class);
            if roll & 2 == 0 {
                // Hopeless: the budget is already exhausted at submit.
                doomed += 1;
                let doomed_ran = Arc::clone(&doomed_ran);
                gang.push(move || {
                    doomed_ran.fetch_add(1, Ordering::SeqCst);
                });
                gang.set_deadline(Deadline::after(Duration::ZERO));
                let shed = Arc::clone(&shed);
                gang.set_on_shed(move |info| {
                    assert_eq!(info.remaining, Duration::ZERO, "nothing left of the budget");
                    shed.fetch_add(1, Ordering::SeqCst);
                });
            } else {
                // Viable: generous or unbounded budget; must never shed.
                let size = (roll as usize >> 2) % 2 + 1;
                for _ in 0..size {
                    viable_tasks += 1;
                    let ran = Arc::clone(&ran);
                    gang.push(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
                gang.set_deadline(if roll & 4 == 0 {
                    Deadline::unbounded()
                } else {
                    Deadline::after(Duration::from_secs(600))
                });
                gang.set_on_shed(|_| panic!("viable gang shed"));
            }
            pool.submit(gang).expect("gang fits the pool");
        }

        prop_assert!(wait_for(&ran, viable_tasks), "every viable gang must run");
        prop_assert!(wait_for(&shed, doomed), "every doomed gang must shed");
        prop_assert_eq!(doomed_ran.load(Ordering::SeqCst), 0);
        let stats = pool.stats();
        prop_assert_eq!(stats.gangs_shed, doomed as u64);
        prop_assert_eq!(stats.gangs_admitted, (gangs - doomed) as u64);
    }
}

// ---------------------------------------------------------------------------
// Server level: QosClass threaded through SapConfig into real sessions.
// ---------------------------------------------------------------------------

const PROVIDERS: usize = 3;

fn locals(records: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = randn_matrix(6, records, &mut rng);
    let labels = (0..records).map(|i| i % 2).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 2);
    partition(&pooled, PROVIDERS, PartitionScheme::Uniform, seed ^ 0x77)
}

fn config(class: QosClass, seed: u64, budget: Duration) -> SapConfig {
    let mut cfg = SapConfig {
        seed,
        qos: class,
        session_budget: budget,
        timeout: Duration::from_secs(60),
        ..SapConfig::quick_test()
    };
    if class == QosClass::Batch {
        // Make batch sessions a genuine head-of-line block (~tens of ms
        // of optimizer work) so overtaking is observable.
        cfg.optimizer.candidates = 16;
        cfg.optimizer.eval_sample = 600;
    }
    cfg
}

/// One gang at a time (`worker_threads == PROVIDERS + 1`), so sessions
/// strictly serialize through the pool and queueing order is observable.
fn qos_server() -> SapServer<sap_repro::net::transport::Endpoint> {
    SapServer::in_memory(ServerConfig {
        max_parties: PROVIDERS,
        max_concurrent: 16,
        max_queued: 16,
        worker_threads: PROVIDERS + 1,
        heartbeat_interval: Duration::ZERO,
        scheduler: SchedulerConfig {
            policy: SchedPolicy::Qos,
            // Aging out of scope here: keep it far above the test horizon.
            batch_aging: Duration::from_secs(600),
        },
        ..ServerConfig::default()
    })
    .expect("bind in-memory server")
}

const WAIT: Option<Duration> = Some(Duration::from_secs(120));

/// An interactive session submitted *last*, behind a batch backlog, must
/// finish before the backlog drains — the server-level face of strict
/// priority.
#[test]
fn interactive_session_overtakes_queued_batch_backlog() {
    let srv = qos_server();
    let batch_ids: Vec<_> = (0..3u64)
        .map(|i| {
            srv.submit(
                locals(2_400, 40 + i),
                &config(QosClass::Batch, 90 + i, Duration::from_secs(120)),
            )
            .expect("admit batch session")
        })
        .collect();
    let interactive = srv
        .submit(
            locals(72, 7),
            &config(QosClass::Interactive, 99, Duration::from_secs(120)),
        )
        .expect("admit interactive session");

    srv.wait(interactive, WAIT).expect("interactive session");
    let batch_done = batch_ids
        .iter()
        .filter(|&&id| matches!(srv.poll(id), Ok(SessionStatus::Complete)))
        .count();
    // FIFO would drain all three batch sessions first. Under QoS the
    // interactive session is admitted as soon as the *currently running*
    // batch gang finishes, so at least two batch sessions are still
    // outstanding the moment it completes.
    assert!(
        batch_done <= 1,
        "interactive session failed to overtake: {batch_done}/3 batch sessions already done"
    );

    for id in batch_ids {
        srv.wait(id, WAIT).expect("batch session");
    }
    let metrics = srv.metrics();
    assert_eq!(metrics.sessions_completed, 4);
    assert_eq!(metrics.sessions_shed, 0);
    assert_eq!(metrics.latency_histogram.interactive.queue_wait.count(), 1);
    assert_eq!(metrics.latency_histogram.batch.service.count(), 3);
}

/// A queued session whose budget is provably unmeetable is shed with the
/// typed error and counted, without consuming pool capacity.
#[test]
fn hopeless_budget_session_is_shed_with_typed_error() {
    let srv = qos_server();
    // Occupy the pool so the doomed session actually queues.
    let blocker = srv
        .submit(
            locals(2_400, 50),
            &config(QosClass::Batch, 80, Duration::from_secs(120)),
        )
        .expect("admit blocker");
    let doomed = srv
        .submit(
            locals(72, 8),
            &config(QosClass::Interactive, 81, Duration::ZERO),
        )
        .expect("admission accepts; the scheduler sheds");

    match srv.wait(doomed, WAIT) {
        Err(ServerError::Session(SapError::AdmissionShed { remaining, .. })) => {
            assert_eq!(remaining, Duration::ZERO);
        }
        other => panic!("expected AdmissionShed, got {other:?}"),
    }
    srv.wait(blocker, WAIT).expect("blocker session");

    let metrics = srv.metrics();
    assert_eq!(metrics.sessions_shed, 1);
    assert_eq!(metrics.sessions_completed, 1);
}
