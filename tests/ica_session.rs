//! End-to-end coverage for the ICA attack path: a full SAP session over
//! real localhost TCP, through the multi-session server runtime, with
//! `use_ica: true` — the configuration the staged engine made the
//! default. Before the engine, ICA had no integration coverage at all
//! (it was off by default because it blew the per-candidate budget).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_repro::core::session::SapConfig;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::Dataset;
use sap_repro::linalg::Matrix;
use sap_repro::privacy::{OptimizerConfig, StagedBudget};
use sap_repro::server::{SapServer, ServerConfig};
use std::time::Duration;

/// Independent non-Gaussian attributes — the case FastICA separates
/// reliably, so the ICA reconstruction demonstrably *applies* (on small
/// correlated samples FastICA may legitimately diverge and decline).
fn pooled_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x1CA);
    let n = 240;
    let m = Matrix::from_fn(3, n, |r, _| {
        let u: f64 = rng.random_range(0.0..1.0);
        u + 0.1 * r as f64
    });
    let labels = (0..n).map(|i| i % 2).collect();
    Dataset::from_column_matrix(&m, labels, 2)
}

#[test]
fn ica_enabled_session_over_tcp_through_server() {
    let server = SapServer::local_tcp(ServerConfig {
        max_parties: 3,
        ..ServerConfig::default()
    })
    .expect("bind TCP mesh");

    let pooled = pooled_dataset();
    let locals = partition(&pooled, 3, PartitionScheme::Uniform, 12);

    // Quick scale, but with the full staged schedule and the ICA stage on.
    let config = SapConfig {
        optimizer: OptimizerConfig {
            candidates: 6,
            eval_sample: 64,
            known_points: 4,
            use_ica: true,
            staged: StagedBudget {
                min_survivors: 2,
                ..StagedBudget::default()
            },
            ..OptimizerConfig::default()
        },
        timeout: Duration::from_secs(60),
        ..SapConfig::quick_test()
    };

    let id = server.submit(locals, &config).expect("submit");
    let outcome = server
        .wait(id, Some(Duration::from_secs(120)))
        .expect("ICA-enabled session over TCP");

    assert_eq!(outcome.unified.len(), pooled.len());
    assert_eq!(outcome.reports.len(), 3);
    for report in &outcome.reports {
        let stats = &report.optimizer;
        assert!(stats.ica, "ICA stage must be part of the schedule");
        assert_eq!(stats.candidates, 6);
        assert!(stats.staged, "staged pruning must be active");
        assert!(stats.survivors < stats.candidates, "{stats:?}");
        assert!(
            stats.ica_applied > 0,
            "ICA reconstruction never applied on {:?}",
            stats
        );
        assert!(report.rho_local.is_finite() && report.rho_local >= 0.0);
    }

    // The session's engine telemetry flows into the server metrics.
    let summary = outcome.optimizer_summary();
    assert_eq!(summary.candidates_evaluated, 18);
    assert!(summary.candidates_pruned > 0);
    assert!(summary.wall_s > 0.0);

    let metrics = server.metrics();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.optimizer_candidates_evaluated, 18);
    assert_eq!(
        metrics.optimizer_candidates_pruned,
        summary.candidates_pruned
    );
    assert!(metrics.optimizer_wall_s > 0.0);
}
