//! Heterogeneous-codec sessions: a JSON-emitting client beside binary
//! wire clients on the same mesh (ROADMAP scenario item b).
//!
//! The `Codec` trait always allowed per-node codecs; these tests exercise
//! it end to end through `run_session_over_with_codecs` +
//! `AutoCodec` (encode in one flavor, decode either by sniffing). The
//! bar is strict: because the JSON float format is exact
//! shortest-roundtrip (`{v:?}`), a mixed-codec session must produce
//! **byte-identical** outcomes to the all-wire run — not merely close
//! ones.

use sap_repro::core::session::{
    run_session_over, run_session_over_with_codecs, SapConfig, SessionCodecs, MINER_ID,
};
use sap_repro::core::SapError;
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::datasets::Dataset;
use sap_repro::net::codec::{AutoCodec, WireCodec};
use sap_repro::net::transport::InMemoryHub;
use sap_repro::net::PartyId;

fn quick() -> SapConfig {
    SapConfig {
        timeout: std::time::Duration::from_secs(20),
        ..SapConfig::quick_test()
    }
}

fn hub_parties(
    k: usize,
) -> (
    Vec<sap_repro::net::transport::Endpoint>,
    sap_repro::net::transport::Endpoint,
) {
    let hub = InMemoryHub::new();
    let providers = (0..k as u64).map(|p| hub.endpoint(PartyId(p))).collect();
    (providers, hub.endpoint(MINER_ID))
}

fn locals(seed: u64, k: usize) -> (Dataset, Vec<Dataset>) {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(seed));
    let parts = partition(&data, k, PartitionScheme::Uniform, seed + 1);
    (data, parts)
}

/// One JSON client among wire clients must change nothing about the
/// outcome — byte-for-byte.
#[test]
fn json_client_beside_wire_clients_is_byte_identical_to_all_wire() {
    let (data, parts) = locals(31, 4);
    let config = quick();

    let (providers, miner) = hub_parties(4);
    let all_wire = run_session_over(parts.clone(), &config, providers, miner, WireCodec)
        .expect("all-wire session");

    // Provider 0 speaks JSON; everyone else (coordinator and miner
    // included) emits wire but sniffs, so they can read its frames.
    let mut codecs = SessionCodecs::uniform(AutoCodec::wire(), 4);
    codecs.providers[0] = AutoCodec::json();
    let (providers, miner) = hub_parties(4);
    let mixed = run_session_over_with_codecs(parts, &config, providers, miner, codecs)
        .expect("mixed-codec session");

    assert_eq!(mixed.unified, all_wire.unified, "unified datasets differ");
    assert_eq!(mixed.unified.len(), data.len());
    assert_eq!(mixed.forwarder_of_slot, all_wire.forwarder_of_slot);
    assert_eq!(
        mixed.identifiability.to_bits(),
        all_wire.identifiability.to_bits()
    );
    assert_eq!(mixed.reports.len(), all_wire.reports.len());
    for (m, w) in mixed.reports.iter().zip(&all_wire.reports) {
        assert_eq!(m.rho_local.to_bits(), w.rho_local.to_bits());
        assert_eq!(m.rho_unified.to_bits(), w.rho_unified.to_bits());
        assert_eq!(m.satisfaction.to_bits(), w.satisfaction.to_bits());
    }
}

/// The coordinator itself can be the JSON speaker: its setup frames,
/// adaptor tables, and relay traffic cross codec flavors in both
/// directions and the outcomes must still match the all-wire run.
#[test]
fn json_coordinator_and_json_miner_agree_with_all_wire() {
    let (_, parts) = locals(33, 3);
    let config = quick();

    let (providers, miner) = hub_parties(3);
    let all_wire = run_session_over(parts.clone(), &config, providers, miner, WireCodec)
        .expect("all-wire session");

    let mut codecs = SessionCodecs::uniform(AutoCodec::wire(), 3);
    codecs.providers[2] = AutoCodec::json(); // last provider = coordinator
    codecs.miner = AutoCodec::json();
    let (providers, miner) = hub_parties(3);
    let mixed = run_session_over_with_codecs(parts, &config, providers, miner, codecs)
        .expect("mixed-codec session");

    assert_eq!(mixed.unified, all_wire.unified);
    assert_eq!(mixed.forwarder_of_slot, all_wire.forwarder_of_slot);
}

/// A codec-count mismatch is a typed configuration error, not a panic.
#[test]
fn codec_count_mismatch_rejected() {
    let (_, parts) = locals(35, 3);
    let (providers, miner) = hub_parties(3);
    let codecs = SessionCodecs {
        providers: vec![AutoCodec::wire(); 2],
        miner: AutoCodec::wire(),
    };
    assert!(matches!(
        run_session_over_with_codecs(parts, &quick(), providers, miner, codecs),
        Err(SapError::InconsistentInputs(_))
    ));
}
