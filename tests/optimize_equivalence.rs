//! The optimizer engine's contract: with pruning disabled, the parallel
//! staged engine selects the **bit-identical** perturbation and guarantee
//! as the plain serial loop — for any dataset, any worker count
//! (`SAP_LINALG_THREADS` flows through the same parameter the explicit
//! override sets), and any candidate count including 1. With pruning
//! enabled, the selection never beats the unstaged optimum and never
//! falls below the cheap-stage winner's full-suite score.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_repro::linalg::Matrix;
use sap_repro::privacy::engine::{run, serial_reference, EngineOutcome};
use sap_repro::privacy::optimize::{OptimizerConfig, StagedBudget};

/// Non-Gaussian data with mixed skew/kurtosis so every attack in the
/// suite (naive, distance, known-sample, PCA, ICA) has something to bite.
fn random_dataset(seed: u64, dim: usize, records: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(dim, records, |r, _| {
        let u: f64 = rng.random_range(0.0001..1.0);
        match r % 3 {
            0 => (-u.ln()) * 0.3,
            1 => u * u + 0.1 * r as f64,
            _ => u + 0.05 * r as f64,
        }
    })
}

fn base_config(candidates: usize, use_ica: bool) -> OptimizerConfig {
    OptimizerConfig {
        candidates,
        noise_sigma: 0.05,
        known_points: 4,
        eval_sample: 80,
        use_ica,
        staged: StagedBudget {
            enabled: false,
            ..StagedBudget::default()
        },
        threads: None,
    }
}

/// Bitwise comparison of two engine outcomes (timings excluded — they
/// measure the schedule, not the result).
fn assert_bit_identical(parallel: &EngineOutcome, serial: &EngineOutcome, label: &str) {
    assert_eq!(
        parallel.result.privacy_guarantee.to_bits(),
        serial.result.privacy_guarantee.to_bits(),
        "guarantee diverged: {label}"
    );
    assert_eq!(
        parallel.result.perturbation, serial.result.perturbation,
        "winning perturbation diverged: {label}"
    );
    assert_eq!(parallel.result.history.len(), serial.result.history.len());
    for (i, (p, s)) in parallel
        .result
        .history
        .iter()
        .zip(&serial.result.history)
        .enumerate()
    {
        assert_eq!(p.to_bits(), s.to_bits(), "history[{i}] diverged: {label}");
    }
    for (i, (p, s)) in parallel
        .cheap_history
        .iter()
        .zip(&serial.cheap_history)
        .enumerate()
    {
        assert_eq!(
            p.to_bits(),
            s.to_bits(),
            "cheap_history[{i}] diverged: {label}"
        );
    }
    assert_eq!(parallel.stats.ica_applied, serial.stats.ica_applied);
}

fn check_equivalence(seed: u64, dim: usize, records: usize, candidates: usize, use_ica: bool) {
    let x = random_dataset(seed, dim, records);
    let cfg = base_config(candidates, use_ica);
    let serial = serial_reference(&x, &cfg, &mut StdRng::seed_from_u64(seed ^ 0x5EED))
        .expect("serial reference");
    for threads in [1usize, 2, 4] {
        let cfg = OptimizerConfig {
            threads: Some(threads),
            ..cfg.clone()
        };
        let parallel =
            run(&x, &cfg, &mut StdRng::seed_from_u64(seed ^ 0x5EED)).expect("parallel engine");
        assert_eq!(parallel.stats.threads, threads);
        assert_eq!(parallel.stats.pruned, 0, "pruning is disabled");
        assert_bit_identical(
            &parallel,
            &serial,
            &format!("seed={seed:#x} threads={threads} candidates={candidates} ica={use_ica}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random datasets × worker counts {1, 2, 4} × candidate counts
    /// including 1: parallel engine ≡ serial loop, bit for bit.
    #[test]
    fn engine_matches_serial_loop(
        seed in any::<u64>(),
        dim in 2usize..5,
        records in 20usize..160,
        candidate_pick in 0usize..4,
    ) {
        // Candidate counts including the degenerate single-candidate run.
        let candidates = [1usize, 2, 7, 16][candidate_pick];
        check_equivalence(seed, dim, records, candidates, false);
    }
}

/// The ICA-enabled expensive stage obeys the same contract (fewer cases —
/// FastICA per candidate is the expensive path the engine exists to tame).
#[test]
fn engine_matches_serial_loop_with_ica() {
    check_equivalence(0x1CA_5E55, 3, 120, 6, true);
    check_equivalence(0x1CA_0001, 2, 90, 1, true);
}

/// Staged selection bounds: never above the unstaged optimum (it ranges
/// over a subset), never below the cheap-stage winner's full-suite score
/// (the cheap winner always survives).
#[test]
fn staged_selection_is_bracketed() {
    for seed in [1u64, 2, 3, 4] {
        let x = random_dataset(seed, 3, 140);
        let unstaged_cfg = base_config(12, false);
        let staged_cfg = OptimizerConfig {
            staged: StagedBudget {
                enabled: true,
                survivor_fraction: 0.25,
                min_survivors: 2,
            },
            ..unstaged_cfg.clone()
        };
        let cheap_winner_cfg = OptimizerConfig {
            staged: StagedBudget {
                enabled: true,
                survivor_fraction: 0.0,
                min_survivors: 1,
            },
            ..unstaged_cfg.clone()
        };
        let rng = || StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let unstaged = run(&x, &unstaged_cfg, &mut rng()).unwrap();
        let staged = run(&x, &staged_cfg, &mut rng()).unwrap();
        let floor = run(&x, &cheap_winner_cfg, &mut rng()).unwrap();
        assert!(staged.stats.pruned > 0);
        assert_eq!(floor.stats.survivors, 1);
        assert!(
            staged.result.privacy_guarantee <= unstaged.result.privacy_guarantee + 1e-15,
            "seed {seed}: staged beat the unstaged optimum"
        );
        assert!(
            staged.result.privacy_guarantee >= floor.result.privacy_guarantee - 1e-15,
            "seed {seed}: staged fell below the cheap-stage winner"
        );
    }
}
