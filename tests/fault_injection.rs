//! Failure-injection tests: SAP roles over faulty transports must abort
//! cleanly (error out), never produce wrong results. With the chunked
//! frame pipeline, faults now act at *frame* granularity: a dropped frame
//! starves reassembly (timeout), a duplicated or reordered frame breaks
//! the sequence check (protocol abort) — never a wrong dataset.

use sap_repro::core::audit::AuditLog;
use sap_repro::core::link;
use sap_repro::core::messages::{SapMessage, SlotTag};
use sap_repro::core::miner::run_miner;
use sap_repro::core::session::SapConfig;
use sap_repro::core::SapError;
use sap_repro::core::StreamMonitor;
use sap_repro::datasets::Dataset;
use sap_repro::net::node::Node;
use sap_repro::net::sim::{FaultConfig, FaultyTransport};
use sap_repro::net::transport::InMemoryHub;
use sap_repro::net::PartyId;
use std::time::Duration;

fn quick(timeout_ms: u64) -> SapConfig {
    SapConfig {
        timeout: Duration::from_millis(timeout_ms),
        ..SapConfig::quick_test()
    }
}

fn tiny_dataset() -> Dataset {
    Dataset::new(
        (0..12)
            .map(|i| vec![i as f64 / 12.0, (i % 3) as f64 / 3.0])
            .collect(),
        (0..12).map(|i| i % 2).collect(),
    )
}

/// A sender whose frames are all dropped: the miner times out cleanly.
#[test]
fn dropped_frames_time_out_cleanly() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    // The relay's outgoing link drops everything.
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    link::send_dataset(&relay, PartyId(100), true, SlotTag(1), &tiny_dataset(), 8).unwrap();
    assert!(
        relay.transport().fault_counts().0 >= 2,
        "header and block frames were dropped"
    );

    let audit = AuditLog::new();
    let err = run_miner(
        &miner_node,
        1,
        PartyId(2),
        &quick(100),
        &audit,
        &StreamMonitor::new(),
    )
    .unwrap_err();
    assert!(matches!(err, SapError::Timeout { .. }), "{err}");
    // Nothing was recorded as delivered.
    assert!(audit.is_empty());
}

/// A whole stream delivered twice becomes a duplicate slot — a protocol
/// error, not silent double-counting of records.
#[test]
fn duplicated_stream_detected_as_duplicate_slot() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(hub.endpoint(PartyId(1)), 42);
    for _ in 0..2 {
        link::send_dataset(&relay, PartyId(100), true, SlotTag(9), &tiny_dataset(), 64).unwrap();
    }

    let audit = AuditLog::new();
    let err = run_miner(
        &miner_node,
        2,
        PartyId(2),
        &quick(300),
        &audit,
        &StreamMonitor::new(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("duplicate slot"), "{err}");
}

/// Frame-level duplication inside one stream breaks the sequence check:
/// the miner aborts with a protocol error instead of guessing.
#[test]
fn duplicated_frames_detected_as_framing_violation() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                duplicate_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    link::send_dataset(&relay, PartyId(100), true, SlotTag(9), &tiny_dataset(), 8).unwrap();

    let audit = AuditLog::new();
    let err = run_miner(
        &miner_node,
        1,
        PartyId(2),
        &quick(300),
        &audit,
        &StreamMonitor::new(),
    )
    .unwrap_err();
    assert!(
        matches!(err, SapError::Protocol(_)),
        "duplicated frames must abort as a protocol violation, got {err}"
    );
}

/// Corrupted ciphertext (tampering / bit-rot) surfaces as a sealed-frame
/// failure, not as garbage data.
#[test]
fn corrupted_frame_fails_crypto_not_parsing() {
    use sap_repro::net::frame::FrameError;
    use sap_repro::net::node::NodeError;

    let hub = InMemoryHub::new();
    let a = Node::new(hub.endpoint(PartyId(1)), 42);
    let b_endpoint = hub.endpoint(PartyId(2));
    a.send_msg(PartyId(2), &7u64).unwrap();

    use sap_repro::net::Transport;
    let (from, sealed) = b_endpoint.recv().unwrap();
    assert_eq!(from, PartyId(1));
    let mut corrupted = sealed.to_vec();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xFF;
    // Open through a fresh node holding the same secret.
    let hub2 = InMemoryHub::new();
    let c = Node::new(hub2.endpoint(PartyId(2)), 42);
    let d = hub2.endpoint(PartyId(1));
    d.send(PartyId(2), corrupted.into()).unwrap();
    let err = c.recv_msg::<u64>().unwrap_err();
    assert!(
        matches!(err, NodeError::Frame(FrameError::Crypto(_))),
        "{err}"
    );
}

/// Pairwise delay shifts frames but preserves order once flushed: streams
/// reassemble and the miner keys everything by slot, so nothing breaks.
#[test]
fn delayed_relays_still_unify() {
    use sap_repro::perturb::{Perturbation, SpaceAdaptor};

    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                delay_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    let coord = Node::new(hub.endpoint(PartyId(2)), 42);

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let target = Perturbation::random(2, &mut rng);
    let g1 = Perturbation::random(2, &mut rng);
    let g2 = Perturbation::random(2, &mut rng);
    let d1 = tiny_dataset();
    let y1 = g1.apply_clean(&d1.to_column_matrix());
    let y2 = g2.apply_clean(&d1.to_column_matrix());

    for (slot, y) in [(SlotTag(1), &y1), (SlotTag(2), &y2)] {
        link::send_dataset(
            &relay,
            PartyId(100),
            true,
            slot,
            &Dataset::from_column_matrix(y, d1.labels().to_vec(), 2),
            8,
        )
        .unwrap();
    }
    relay.transport().flush().unwrap();
    coord
        .send_msg(
            PartyId(100),
            &SapMessage::AdaptorTable {
                entries: vec![
                    (SlotTag(1), SpaceAdaptor::between(&g1, &target).unwrap()),
                    (SlotTag(2), SpaceAdaptor::between(&g2, &target).unwrap()),
                ],
            },
        )
        .unwrap();

    let audit = AuditLog::new();
    let out = run_miner(
        &miner_node,
        2,
        PartyId(2),
        &quick(500),
        &audit,
        &StreamMonitor::new(),
    )
    .unwrap();
    assert_eq!(out.unified.len(), 24);
    assert!(relay.transport().fault_counts().2 >= 1, "delay happened");
}
