//! Failure-injection tests: SAP roles over faulty transports must abort
//! cleanly (error out), never produce wrong results. With the chunked
//! frame pipeline, faults act at *frame* granularity: a dropped frame
//! starves reassembly (timeout), a duplicated or reordered frame breaks
//! the sequence check (protocol abort) — never a wrong dataset. With the
//! liveness layer, a peer that *dies* (rather than merely losing frames)
//! fails its sessions with a typed `PeerFailure` within the detection
//! budget instead of starving until a timeout or the server's age GC.
//!
//! The whole suite honors `SAP_DATA_PLANE={streaming|buffered}` so CI can
//! run the fault matrix on both data planes (see `.github/workflows/ci.yml`).

use sap_repro::core::link;
use sap_repro::core::liveness::Roster;
use sap_repro::core::messages::{SapMessage, SlotTag};
use sap_repro::core::miner::run_miner;
use sap_repro::core::session::{DataPlane, SapConfig, StandaloneCtx};
use sap_repro::core::SapError;
use sap_repro::datasets::Dataset;
use sap_repro::net::node::Node;
use sap_repro::net::sim::{FaultConfig, FaultyTransport};
use sap_repro::net::transport::InMemoryHub;
use sap_repro::net::PartyId;
use std::time::{Duration, Instant};

/// CI matrix hook: the fault suite runs identically on both data planes.
fn plane() -> DataPlane {
    match std::env::var("SAP_DATA_PLANE").as_deref() {
        Ok("buffered") => DataPlane::Buffered,
        Ok("streaming") | Err(_) => DataPlane::Streaming,
        Ok(other) => panic!("unknown SAP_DATA_PLANE {other:?}"),
    }
}

fn quick(timeout_ms: u64) -> SapConfig {
    SapConfig {
        timeout: Duration::from_millis(timeout_ms),
        data_plane: plane(),
        ..SapConfig::quick_test()
    }
}

/// A miner harness: relay parties 1 and 5, coordinator 2 (roster-last),
/// miner 100.
fn miner_harness(config: SapConfig) -> StandaloneCtx {
    StandaloneCtx::new(
        Roster::new(vec![PartyId(1), PartyId(5), PartyId(2)], PartyId(100)),
        config,
    )
}

fn tiny_dataset() -> Dataset {
    Dataset::new(
        (0..12)
            .map(|i| vec![i as f64 / 12.0, (i % 3) as f64 / 3.0])
            .collect(),
        (0..12).map(|i| i % 2).collect(),
    )
}

/// A sender whose frames are all dropped: the miner times out cleanly.
#[test]
fn dropped_frames_time_out_cleanly() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    // The relay's outgoing link drops everything.
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    link::send_dataset(&relay, PartyId(100), true, SlotTag(1), &tiny_dataset(), 8).unwrap();
    assert!(
        relay.transport().fault_counts().0 >= 2,
        "header and block frames were dropped"
    );

    let sc = miner_harness(quick(100));
    let err = run_miner(&miner_node, 1, &sc.ctx()).unwrap_err();
    assert!(matches!(err, SapError::Timeout { .. }), "{err}");
    // Nothing was recorded as delivered.
    assert!(sc.audit.is_empty());
}

/// A whole stream delivered twice becomes a duplicate slot — a protocol
/// error, not silent double-counting of records.
#[test]
fn duplicated_stream_detected_as_duplicate_slot() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(hub.endpoint(PartyId(1)), 42);
    for _ in 0..2 {
        link::send_dataset(&relay, PartyId(100), true, SlotTag(9), &tiny_dataset(), 64).unwrap();
    }

    let sc = miner_harness(quick(300));
    let err = run_miner(&miner_node, 2, &sc.ctx()).unwrap_err();
    assert!(err.to_string().contains("duplicate slot"), "{err}");
}

/// Frame-level duplication inside one stream breaks the sequence check:
/// the miner aborts with a protocol error instead of guessing.
#[test]
fn duplicated_frames_detected_as_framing_violation() {
    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                duplicate_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    link::send_dataset(&relay, PartyId(100), true, SlotTag(9), &tiny_dataset(), 8).unwrap();

    let sc = miner_harness(quick(300));
    let err = run_miner(&miner_node, 1, &sc.ctx()).unwrap_err();
    assert!(
        matches!(err, SapError::Protocol(_)),
        "duplicated frames must abort as a protocol violation, got {err}"
    );
}

/// Corrupted ciphertext (tampering / bit-rot) surfaces as a sealed-frame
/// failure, not as garbage data.
#[test]
fn corrupted_frame_fails_crypto_not_parsing() {
    use sap_repro::net::frame::FrameError;
    use sap_repro::net::node::NodeError;

    let hub = InMemoryHub::new();
    let a = Node::new(hub.endpoint(PartyId(1)), 42);
    let b_endpoint = hub.endpoint(PartyId(2));
    a.send_msg(PartyId(2), &7u64).unwrap();

    use sap_repro::net::Transport;
    let (from, sealed) = b_endpoint.recv().unwrap();
    assert_eq!(from, PartyId(1));
    let mut corrupted = sealed.to_vec();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xFF;
    // Open through a fresh node holding the same secret.
    let hub2 = InMemoryHub::new();
    let c = Node::new(hub2.endpoint(PartyId(2)), 42);
    let d = hub2.endpoint(PartyId(1));
    d.send(PartyId(2), corrupted.into()).unwrap();
    let err = c.recv_msg::<u64>().unwrap_err();
    assert!(
        matches!(err, NodeError::Frame(FrameError::Crypto(_))),
        "{err}"
    );
}

/// Pairwise delay shifts frames but preserves order once flushed: streams
/// reassemble and the miner keys everything by slot, so nothing breaks.
#[test]
fn delayed_relays_still_unify() {
    use sap_repro::perturb::{Perturbation, SpaceAdaptor};

    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(
        FaultyTransport::new(
            hub.endpoint(PartyId(1)),
            FaultConfig {
                delay_prob: 1.0,
                ..FaultConfig::default()
            },
        ),
        42,
    );
    let coord = Node::new(hub.endpoint(PartyId(2)), 42);

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let target = Perturbation::random(2, &mut rng);
    let g1 = Perturbation::random(2, &mut rng);
    let g2 = Perturbation::random(2, &mut rng);
    let d1 = tiny_dataset();
    let y1 = g1.apply_clean(&d1.to_column_matrix());
    let y2 = g2.apply_clean(&d1.to_column_matrix());

    for (slot, y) in [(SlotTag(1), &y1), (SlotTag(2), &y2)] {
        link::send_dataset(
            &relay,
            PartyId(100),
            true,
            slot,
            &Dataset::from_column_matrix(y, d1.labels().to_vec(), 2),
            8,
        )
        .unwrap();
    }
    relay.transport().flush().unwrap();
    coord
        .send_msg(
            PartyId(100),
            &SapMessage::AdaptorTable {
                entries: vec![
                    (SlotTag(1), SpaceAdaptor::between(&g1, &target).unwrap()),
                    (SlotTag(2), SpaceAdaptor::between(&g2, &target).unwrap()),
                ],
            },
        )
        .unwrap();

    let sc = miner_harness(quick(500));
    let out = run_miner(&miner_node, 2, &sc.ctx()).unwrap();
    assert_eq!(out.unified.len(), 24);
    assert!(relay.transport().fault_counts().2 >= 1, "delay happened");
}

/// A relay killed **while its row-block stream is in flight**: the miner
/// holds a partial stream and would previously starve until its receive
/// timeout. With the liveness layer it fails with the typed
/// [`SapError::PeerFailure`] the moment the death is reported — the 60 s
/// timeout never comes into play.
#[test]
fn peer_death_mid_stream_fails_typed_and_fast() {
    use sap_repro::core::link::DataHeader;
    use sap_repro::net::SessionId;

    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(hub.endpoint(PartyId(1)), 42);

    // Open a relayed stream and send two of its blocks — never the last.
    let data = tiny_dataset();
    let header = DataHeader {
        session: SessionId::SOLO,
        relay: true,
        slot: SlotTag(3),
        rows: data.len() as u64,
        dim: 2,
        num_classes: 2,
    };
    let mut stream = relay.begin_stream(PartyId(100), &header, false).unwrap();
    for start in [0usize, 4] {
        relay
            .stream_block(
                &mut stream,
                link::encode_block(&data, start, start + 4),
                false,
            )
            .unwrap();
    }

    // The relay's process dies mid-stream.
    let hub_clone = hub.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        hub_clone.kill(PartyId(1));
    });

    let sc = miner_harness(quick(60_000));
    let start = Instant::now();
    let err = run_miner(&miner_node, 1, &sc.ctx()).unwrap_err();
    killer.join().unwrap();
    assert!(
        matches!(
            err,
            SapError::PeerFailure {
                party: PartyId(1),
                ..
            }
        ),
        "mid-stream peer death must surface as PeerFailure, got {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "detection took {:?}, the 60 s receive timeout must never gate it",
        start.elapsed()
    );
}

/// The death of a party that is **not** on the session's roster (another
/// session's peer, broadcast over the shared transport) must not disturb
/// the session: the miner keeps collecting and finishes.
#[test]
fn stranger_death_is_ignored_by_healthy_session() {
    use sap_repro::perturb::{Perturbation, SpaceAdaptor};

    let hub = InMemoryHub::new();
    let miner_node = Node::new(hub.endpoint(PartyId(100)), 42);
    let relay = Node::new(hub.endpoint(PartyId(1)), 42);
    let coord = Node::new(hub.endpoint(PartyId(2)), 42);
    let _stranger = hub.endpoint(PartyId(77));

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let target = Perturbation::random(2, &mut rng);
    let g1 = Perturbation::random(2, &mut rng);
    let d1 = tiny_dataset();
    let y1 = g1.apply_clean(&d1.to_column_matrix());

    // The stranger dies first; its PeerDown marker reaches the miner's
    // inbox ahead of the session traffic.
    hub.kill(PartyId(77));
    link::send_dataset(
        &relay,
        PartyId(100),
        true,
        SlotTag(1),
        &Dataset::from_column_matrix(&y1, d1.labels().to_vec(), 2),
        8,
    )
    .unwrap();
    coord
        .send_msg(
            PartyId(100),
            &SapMessage::AdaptorTable {
                entries: vec![(SlotTag(1), SpaceAdaptor::between(&g1, &target).unwrap())],
            },
        )
        .unwrap();

    let sc = miner_harness(quick(2_000));
    let out = run_miner(&miner_node, 1, &sc.ctx()).unwrap();
    assert_eq!(out.unified.len(), 12);
}

/// Server-level recovery: a party process dying mid-session fails every
/// session it belonged to with a typed `PeerFailure` within the
/// detection budget (not the 300 s age GC), while sibling sessions that
/// never involved the dead party keep completing on the same server.
#[test]
fn server_peer_death_fails_fast_and_spares_siblings() {
    use sap_repro::datasets::partition::{partition, PartitionScheme};
    use sap_repro::datasets::registry::UciDataset;
    use sap_repro::server::{SapServer, ServerConfig, ServerError};

    let server_config = ServerConfig {
        max_parties: 4,
        ..ServerConfig::default()
    };
    let hub = InMemoryHub::new();
    let lanes: Vec<_> = (0..4u64).map(|i| hub.endpoint(PartyId(i))).collect();
    let miner = hub.endpoint(sap_repro::core::session::MINER_ID);
    let server = SapServer::over_lanes(server_config.clone(), lanes, miner);

    // Session A uses all four lanes and is stuck mid-exchange (every
    // frame dropped) on a timeout far longer than the detection budget.
    let stuck_cfg = SapConfig {
        fault_config: Some(FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        }),
        timeout: Duration::from_secs(120),
        data_plane: plane(),
        ..SapConfig::quick_test()
    };
    let pooled = UciDataset::Iris.generate(3);
    let a = server
        .submit(
            partition(&pooled, 4, PartitionScheme::Uniform, 5),
            &stuck_cfg,
        )
        .unwrap();

    // Lane 3's party process dies.
    std::thread::sleep(Duration::from_millis(100));
    hub.kill(PartyId(3));

    let budget = server_config.heartbeat_interval * server_config.liveness_misses;
    let start = Instant::now();
    let err = server.wait(a, Some(Duration::from_secs(30))).unwrap_err();
    let detection = start.elapsed();
    let ServerError::Session(SapError::PeerFailure { party, .. }) = err else {
        panic!("expected PeerFailure, got {err}");
    };
    assert_eq!(party, PartyId(3));
    assert!(
        detection < 2 * budget,
        "detection took {detection:?}, budget is {budget:?}"
    );

    // A sibling session on lanes 0..2 (party 3 not on its roster) still
    // completes after the death — the PeerDown broadcast is filtered by
    // roster, not blasted into every session.
    let healthy_cfg = SapConfig {
        data_plane: plane(),
        ..SapConfig::quick_test()
    };
    let b = server
        .submit(
            partition(&pooled, 3, PartitionScheme::Uniform, 6),
            &healthy_cfg,
        )
        .unwrap();
    let outcome = server.wait(b, Some(Duration::from_secs(60))).unwrap();
    assert_eq!(outcome.unified.len(), pooled.len());

    let m = server.metrics();
    assert!(m.peer_failures_detected >= 1, "{m:?}");
    assert!(m.peer_detection_latency_avg_s < budget.as_secs_f64() * 2.0);
}

/// Peer-failure retry policy: the failed session is transparently
/// re-run; when the dead party makes every retry hopeless, the retries
/// are consumed and the failure surfaces (typed) instead of hanging.
#[test]
fn retry_policy_consumes_retries_on_peer_failure() {
    use sap_repro::datasets::partition::{partition, PartitionScheme};
    use sap_repro::datasets::registry::UciDataset;
    use sap_repro::server::{RetryPolicy, SapServer, ServerConfig, ServerError};

    let server_config = ServerConfig {
        max_parties: 3,
        retry_policy: RetryPolicy { max_retries: 1 },
        ..ServerConfig::default()
    };
    let hub = InMemoryHub::new();
    let lanes: Vec<_> = (0..3u64).map(|i| hub.endpoint(PartyId(i))).collect();
    let miner = hub.endpoint(sap_repro::core::session::MINER_ID);
    let server = SapServer::over_lanes(server_config, lanes, miner);

    // A long enough receive timeout that only the typed peer failure can
    // end the *first* run quickly; the retried run (frames still all
    // dropped, its PeerDown already consumed) dies by this timeout.
    let stuck_cfg = SapConfig {
        fault_config: Some(FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::default()
        }),
        timeout: Duration::from_secs(5),
        data_plane: plane(),
        ..SapConfig::quick_test()
    };
    let pooled = UciDataset::Iris.generate(4);
    let id = server
        .submit(
            partition(&pooled, 3, PartitionScheme::Uniform, 7),
            &stuck_cfg,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    hub.kill(PartyId(1));

    // The first run dies of PeerFailure; the retry is spawned against a
    // permanently dead lane and fails too (with whatever the broken mesh
    // reports) — but it was attempted, and the wait returns an error
    // rather than hanging.
    let err = server.wait(id, Some(Duration::from_secs(60))).unwrap_err();
    assert!(matches!(err, ServerError::Session(_)), "{err}");
    let m = server.metrics();
    assert_eq!(m.sessions_retried, 1, "{m:?}");
    assert!(m.peer_failures_detected >= 1, "{m:?}");
}
