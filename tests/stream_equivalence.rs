//! The streaming data plane's contract: for any dataset, any block size,
//! and any session shape, the streaming and buffered planes produce
//! **byte-identical** [`SapOutcome`]s — same unified records (bitwise),
//! same reports, same forwarders, same relayed block counts. Only the
//! timing-dependent `stream` statistics may differ.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::core::session::{run_session, DataPlane, SapConfig, SapOutcome};
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::Dataset;
use std::time::Duration;

fn random_locals(seed: u64, rows: usize, dim: usize, k: usize) -> Vec<Dataset> {
    let m = sap_repro::linalg::randn_matrix(dim, rows, &mut StdRng::seed_from_u64(seed));
    let labels = (0..rows).map(|i| i % 3).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 3);
    partition(&pooled, k, PartitionScheme::Uniform, seed ^ 0xA5)
}

fn config(seed: u64, block_rows: usize, plane: DataPlane) -> SapConfig {
    SapConfig {
        seed,
        block_rows,
        data_plane: plane,
        timeout: Duration::from_secs(30),
        ..SapConfig::quick_test()
    }
}

/// Field-by-field bitwise comparison (the `stream` stats are explicitly
/// out of the contract — they measure timing, not results).
fn assert_outcomes_identical(streamed: &SapOutcome, buffered: &SapOutcome) {
    assert_eq!(
        streamed.unified, buffered.unified,
        "unified datasets differ"
    );
    assert_eq!(
        streamed.forwarder_of_slot, buffered.forwarder_of_slot,
        "forwarder assignments differ"
    );
    assert_eq!(
        streamed.relayed_blocks, buffered.relayed_blocks,
        "relayed block counts differ"
    );
    assert_eq!(streamed.identifiability, buffered.identifiability);
    assert_eq!(streamed.target, buffered.target, "target spaces differ");
    assert_eq!(streamed.reports.len(), buffered.reports.len());
    for (s, b) in streamed.reports.iter().zip(&buffered.reports) {
        assert_eq!(s.provider, b.provider);
        assert_eq!(s.rho_local.to_bits(), b.rho_local.to_bits(), "rho_local");
        assert_eq!(
            s.rho_unified.to_bits(),
            b.rho_unified.to_bits(),
            "rho_unified"
        );
        assert_eq!(
            s.satisfaction.to_bits(),
            b.satisfaction.to_bits(),
            "satisfaction"
        );
        assert_eq!(s.optimizer_history.len(), b.optimizer_history.len());
        for (x, y) in s.optimizer_history.iter().zip(&b.optimizer_history) {
            assert_eq!(x.to_bits(), y.to_bits(), "optimizer history");
        }
    }
}

fn run_both(seed: u64, rows: usize, dim: usize, k: usize, block_rows: usize) {
    let streamed = run_session(
        random_locals(seed, rows, dim, k),
        &config(seed, block_rows, DataPlane::Streaming),
    )
    .expect("streaming session");
    let buffered = run_session(
        random_locals(seed, rows, dim, k),
        &config(seed, block_rows, DataPlane::Buffered),
    )
    .expect("buffered session");
    assert_outcomes_identical(&streamed, &buffered);
    // The streaming run really did pipeline: the relay hop forwarded
    // blocks before their streams finished (unless blocks were so large
    // each stream was a single frame).
    assert!(streamed.stream.blocks_streamed > 0);
    assert_eq!(buffered.stream.blocks_streamed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random datasets, session shapes, and block sizes: the two planes
    /// must agree bit-for-bit.
    #[test]
    fn planes_agree_on_random_sessions(
        seed in any::<u64>(),
        rows in 24usize..100,
        dim in 2usize..5,
        k in 3usize..5,
        block_rows in 1usize..40,
    ) {
        run_both(seed, rows, dim, k, block_rows);
    }
}

/// The degenerate chunking grains: one row per block (maximum frame
/// count) and blocks larger than any provider's partition (the whole
/// dataset in a single block).
#[test]
fn edge_block_sizes_agree() {
    run_both(0xB10C, 40, 3, 3, 1);
    run_both(0xB10C, 40, 3, 3, 10_000);
}

/// The streaming plane must pipeline the relay hop when streams span
/// several blocks: blocks are forwarded while their stream is still
/// arriving.
#[test]
fn streaming_plane_actually_pipelines() {
    let outcome = run_session(
        random_locals(7, 96, 4, 4),
        &config(7, 4, DataPlane::Streaming),
    )
    .expect("streaming session");
    assert!(
        outcome.stream.pipelined_blocks > 0,
        "relay pump never forwarded a block in flight: {:?}",
        outcome.stream
    );
    assert!(outcome.stream.max_streams_in_flight >= 1);
}
