//! Full SAP sessions over real localhost TCP — the proof that the
//! transport/codec abstraction holds: the identical protocol code that
//! runs over the in-memory hub runs over sockets, under both codecs.

use sap_repro::core::session::{run_session_over, SapConfig, MINER_ID};
use sap_repro::datasets::normalize::min_max_normalize;
use sap_repro::datasets::partition::{partition, PartitionScheme};
use sap_repro::datasets::registry::UciDataset;
use sap_repro::net::codec::{JsonCodec, WireCodec};
use sap_repro::net::tcp::{local_mesh, local_mesh_with};
use sap_repro::net::{Backend, PartyId};

fn quick() -> SapConfig {
    SapConfig {
        timeout: std::time::Duration::from_secs(20),
        ..SapConfig::quick_test()
    }
}

/// Builds TCP endpoints for `k` providers plus the miner, fully meshed on
/// localhost, and splits them into (providers, miner).
fn tcp_parties(k: usize) -> (Vec<sap_repro::net::TcpLane>, sap_repro::net::TcpLane) {
    let mut ids: Vec<PartyId> = (0..k as u64).map(PartyId).collect();
    ids.push(MINER_ID);
    let mut mesh = local_mesh(&ids).expect("bind localhost sockets");
    let miner = mesh.pop().expect("miner endpoint");
    (mesh, miner)
}

/// Like [`tcp_parties`] but with the backend pinned explicitly, so a test
/// can compare backends regardless of `SAP_NET_BACKEND` in the
/// environment.
fn tcp_parties_on(
    k: usize,
    backend: Backend,
) -> (Vec<sap_repro::net::TcpLane>, sap_repro::net::TcpLane) {
    let mut ids: Vec<PartyId> = (0..k as u64).map(PartyId).collect();
    ids.push(MINER_ID);
    let mut mesh = local_mesh_with(&ids, backend).expect("bind localhost sockets");
    let miner = mesh.pop().expect("miner endpoint");
    (mesh, miner)
}

#[test]
fn full_sap_session_over_tcp() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(21));
    let locals = partition(&data, 4, PartitionScheme::Uniform, 22);
    let (providers, miner) = tcp_parties(4);

    let outcome = run_session_over(locals, &quick(), providers, miner, WireCodec)
        .expect("session over TCP must complete");

    assert_eq!(outcome.unified.len(), data.len());
    assert_eq!(outcome.unified.dim(), data.dim());
    assert_eq!(outcome.reports.len(), 4);
    assert_eq!(outcome.forwarder_of_slot.len(), 4);
    assert!((outcome.identifiability - 1.0 / 3.0).abs() < 1e-12);

    // Full information-flow audit, as over the in-memory hub.
    let provider_ids: Vec<PartyId> = (0..4).map(PartyId).collect();
    outcome
        .audit
        .verify_flow(PartyId(3), MINER_ID, &provider_ids)
        .expect("flow invariants over TCP");
    assert!(!outcome.audit.party_saw_data(PartyId(3)));
    assert!(outcome.audit.party_saw_data(MINER_ID));
}

#[test]
fn tcp_session_with_json_codec_and_five_parties() {
    let (data, _) = min_max_normalize(&UciDataset::Iris.generate(23));
    let locals = partition(&data, 5, PartitionScheme::ClassSkewed, 24);
    let (providers, miner) = tcp_parties(5);

    let outcome = run_session_over(locals, &quick(), providers, miner, JsonCodec)
        .expect("session over TCP with JSON codec must complete");

    assert_eq!(outcome.unified.len(), data.len());
    assert_eq!(outcome.reports.len(), 5);
}

#[test]
fn tcp_and_hub_sessions_agree() {
    // Same inputs, same config ⇒ byte-identical unified datasets: the
    // transport layer must be invisible to the protocol's results.
    use sap_repro::core::session::run_session;

    let (data, _) = min_max_normalize(&UciDataset::Wine.generate(25));
    let locals = partition(&data, 3, PartitionScheme::Uniform, 26);
    let config = quick();

    let hub_outcome = run_session(locals.clone(), &config).expect("hub session");
    let (providers, miner) = tcp_parties(3);
    let tcp_outcome =
        run_session_over(locals, &config, providers, miner, WireCodec).expect("tcp session");

    assert_eq!(hub_outcome.unified, tcp_outcome.unified);
    assert_eq!(hub_outcome.forwarder_of_slot, tcp_outcome.forwarder_of_slot);
}

#[test]
fn reactor_and_threaded_backends_agree_byte_for_byte() {
    // The reactor rewrite must be invisible above the Transport trait:
    // the same inputs through the readiness-driven backend, the blocking
    // thread-per-connection backend, and the in-memory hub must yield
    // byte-identical session outcomes.
    use sap_repro::core::session::run_session;

    let (data, _) = min_max_normalize(&UciDataset::Wine.generate(27));
    let locals = partition(&data, 3, PartitionScheme::ClassSkewed, 28);
    let config = quick();

    let hub_outcome = run_session(locals.clone(), &config).expect("hub session");

    let (providers, miner) = tcp_parties_on(3, Backend::Reactor);
    let reactor_outcome = run_session_over(locals.clone(), &config, providers, miner, WireCodec)
        .expect("reactor session");

    let (providers, miner) = tcp_parties_on(3, Backend::Threaded);
    let threaded_outcome =
        run_session_over(locals, &config, providers, miner, WireCodec).expect("threaded session");

    assert_eq!(reactor_outcome.unified, threaded_outcome.unified);
    assert_eq!(reactor_outcome.unified, hub_outcome.unified);
    assert_eq!(
        reactor_outcome.forwarder_of_slot,
        threaded_outcome.forwarder_of_slot
    );
    assert_eq!(
        reactor_outcome.forwarder_of_slot,
        hub_outcome.forwarder_of_slot
    );
    assert_eq!(
        reactor_outcome.reports.len(),
        threaded_outcome.reports.len()
    );
    assert!((reactor_outcome.identifiability - threaded_outcome.identifiability).abs() < 1e-15);
}
