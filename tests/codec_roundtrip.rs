//! Codec-layer property tests: every [`SapMessage`] variant round-trips
//! under both codecs, and adversarial inputs (truncation, trailing bytes,
//! bad tags) fail cleanly instead of yielding garbage.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_repro::core::messages::{SapMessage, SlotTag};
use sap_repro::datasets::Dataset;
use sap_repro::net::codec::{Codec, JsonCodec, WireCodec};
use sap_repro::net::PartyId;
use sap_repro::perturb::{Perturbation, SpaceAdaptor};

fn random_dataset(rng: &mut StdRng, rows: usize, dim: usize) -> Dataset {
    use rand::RngExt;
    let records: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..dim).map(|_| rng.random_range(-10.0..10.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..rows).map(|_| rng.random_range(0..3)).collect();
    Dataset::with_num_classes(records, labels, 3)
}

/// Builds one instance of every message variant from a seed.
fn all_variants(seed: u64, dim: usize, rows: usize) -> Vec<SapMessage> {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = Perturbation::random(dim, &mut rng);
    let other = Perturbation::random(dim, &mut rng);
    let adaptor = SpaceAdaptor::between(&other, &target).expect("same dim");
    let data = random_dataset(&mut rng, rows, dim);
    vec![
        SapMessage::Setup {
            target,
            slot: SlotTag(seed),
            send_data_to: PartyId(seed % 11),
            expect_incoming: (seed % 3) as u32,
        },
        SapMessage::PerturbedData {
            slot: SlotTag(seed ^ 1),
            data: data.clone(),
        },
        SapMessage::RelayedData {
            slot: SlotTag(seed ^ 2),
            data,
        },
        SapMessage::Adaptor {
            adaptor: adaptor.clone(),
        },
        SapMessage::AdaptorTable {
            entries: vec![(SlotTag(seed ^ 3), adaptor)],
        },
        SapMessage::MiningComplete {
            unified_records: seed,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every variant survives the wire codec byte-exactly.
    #[test]
    fn wire_roundtrips_every_variant(seed in any::<u64>(), dim in 1usize..6, rows in 1usize..12) {
        for msg in all_variants(seed, dim, rows) {
            let bytes = WireCodec.encode(&msg).unwrap();
            let back: SapMessage = WireCodec.decode(&bytes).unwrap();
            prop_assert_eq!(&back, &msg);
            // Decode must be stable under re-encode.
            prop_assert_eq!(WireCodec.encode(&back).unwrap(), bytes);
        }
    }

    /// Every variant survives the JSON debug codec.
    #[test]
    fn json_roundtrips_every_variant(seed in any::<u64>(), dim in 1usize..5, rows in 1usize..8) {
        for msg in all_variants(seed, dim, rows) {
            let bytes = JsonCodec.encode(&msg).unwrap();
            let back: SapMessage = JsonCodec.decode(&bytes).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    /// Truncating an encoded message anywhere must error, never panic or
    /// return a value.
    #[test]
    fn truncated_wire_input_errors(seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        for msg in all_variants(seed, 3, 4) {
            let bytes = WireCodec.encode(&msg).unwrap();
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(
                WireCodec.decode::<SapMessage>(&bytes[..cut]).is_err(),
                "truncation to {cut}/{} bytes must fail", bytes.len()
            );
        }
    }

    /// Trailing bytes after a complete message are rejected by both codecs.
    #[test]
    fn trailing_bytes_rejected(seed in any::<u64>(), junk in 1u8..255) {
        for msg in all_variants(seed, 2, 3) {
            let mut wire_bytes = WireCodec.encode(&msg).unwrap();
            wire_bytes.push(junk);
            prop_assert!(WireCodec.decode::<SapMessage>(&wire_bytes).is_err());

            let mut json_bytes = JsonCodec.encode(&msg).unwrap();
            json_bytes.extend_from_slice(format!(" {junk}").as_bytes());
            prop_assert!(JsonCodec.decode::<SapMessage>(&json_bytes).is_err());
        }
    }

    /// An out-of-range enum tag at the head of a wire message errors.
    /// Since wire v4 the tag is a varint, so the rogue tag is stamped as
    /// a varint too, replacing the legitimate one.
    #[test]
    fn bad_wire_variant_tag_errors(tag in 6u64..u64::MAX) {
        use sap_repro::net::wire::{put_uvarint, read_uvarint};
        let encoded = WireCodec
            .encode(&SapMessage::MiningComplete { unified_records: 1 })
            .unwrap();
        let mut rest = encoded.as_slice();
        read_uvarint(&mut rest).expect("variant tag varint at the head");
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, tag);
        bytes.extend_from_slice(rest);
        prop_assert!(WireCodec.decode::<SapMessage>(&bytes).is_err());
    }

    /// The v4 varint primitive round-trips at every width boundary and at
    /// arbitrary values, via both the `Vec` and the `io::Write` paths.
    #[test]
    fn uvarint_roundtrips_everywhere(v in any::<u64>()) {
        use sap_repro::net::wire::{
            put_uvarint, read_uvarint, uvarint_len, write_uvarint,
        };
        let boundaries = [
            0u64,
            (1 << 7) - 1,
            1 << 7,
            (1 << 7) + 1,
            (1 << 14) - 1,
            1 << 14,
            (1 << 14) + 1,
            u64::MAX,
        ];
        for v in boundaries.into_iter().chain(std::iter::once(v)) {
            let mut put = Vec::new();
            put_uvarint(&mut put, v);
            let mut wrote = Vec::new();
            write_uvarint(&mut wrote, v).unwrap();
            prop_assert_eq!(&put, &wrote);
            prop_assert_eq!(put.len(), uvarint_len(v));
            let mut input = put.as_slice();
            prop_assert_eq!(read_uvarint(&mut input).unwrap(), v);
            prop_assert!(input.is_empty(), "decode consumes exactly the varint");
        }
    }

    /// Signed values survive the zigzag + varint pipeline, and small
    /// magnitudes of either sign stay single-byte on the wire.
    #[test]
    fn zigzag_varint_roundtrips(v in any::<i64>()) {
        use sap_repro::net::wire::{put_uvarint, read_uvarint, unzigzag, zigzag};
        for v in [v, 0, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, zigzag(v));
            let mut input = buf.as_slice();
            prop_assert_eq!(unzigzag(read_uvarint(&mut input).unwrap()), v);
            if (-64..64).contains(&v) {
                prop_assert_eq!(buf.len(), 1);
            }
        }
    }

    /// Arbitrary byte soup never decodes into a message silently.
    #[test]
    fn random_bytes_do_not_decode(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let soup: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        // The wire format is dense enough that random soup of interesting
        // length essentially never forms a full valid message AND consumes
        // every byte; if it does decode, it must at least re-encode
        // consistently (no mangled state).
        if let Ok(msg) = WireCodec.decode::<SapMessage>(&soup) {
            prop_assert_eq!(WireCodec.encode(&msg).unwrap(), soup);
        }
        prop_assert!(JsonCodec.decode::<SapMessage>(&soup).is_err() || !soup.is_empty());
    }
}

/// The two codecs are genuinely different formats: wire bytes are not
/// valid JSON and vice versa.
#[test]
fn codecs_are_not_interchangeable() {
    let msg = SapMessage::MiningComplete { unified_records: 7 };
    let wire_bytes = WireCodec.encode(&msg).unwrap();
    let json_bytes = JsonCodec.encode(&msg).unwrap();
    assert_ne!(wire_bytes, json_bytes);
    assert!(JsonCodec.decode::<SapMessage>(&wire_bytes).is_err());
    assert!(WireCodec.decode::<SapMessage>(&json_bytes).is_err());
}

/// JSON output is human-readable: variant and field names are visible.
#[test]
fn json_encoding_is_self_describing() {
    let msg = SapMessage::MiningComplete { unified_records: 7 };
    let text = String::from_utf8(JsonCodec.encode(&msg).unwrap()).unwrap();
    assert!(text.contains("MiningComplete"), "{text}");
    assert!(text.contains("unified_records"), "{text}");
}
