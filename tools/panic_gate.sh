#!/usr/bin/env bash
# Panic-site ratchet for the wire-facing crates.
#
# Counts non-test `unwrap()` / `expect("…")` / `panic!(` sites in
# crates/net + crates/core + crates/fleet + crates/classify source
# (everything before each file's first `#[cfg(test)]`, excluding comment
# lines) and fails when the count exceeds the pinned ceiling. The ceiling
# may only go DOWN: when you remove panic sites, lower LIMIT in this
# file; never raise it. The fleet crate joined the gate at zero sites and
# must stay there; classify joined at zero too (the kernel PR swept its
# `partial_cmp(..).expect(..)` comparators to `f64::total_cmp` and its
# argmax expects to safe defaults) — the streaming `ClassifierSink`
# makes its predict path wire-reachable, so it must stay at zero.
#
# Rationale (liveness overhaul PR): anything reachable from the wire must
# surface as a typed TransportError/FrameError/SapError so one bad frame
# or one dead peer fails a session, never a worker thread or the process.
# The remaining pinned sites are infallible by construction (length-checked
# slice conversions, lock acquisitions on the no-poison shim, invariants
# validated at spawn).
set -euo pipefail

LIMIT="${1:-35}"

cd "$(dirname "$0")/.."
total=0
worst=""
for f in crates/net/src/*.rs crates/core/src/*.rs crates/fleet/src/*.rs crates/classify/src/*.rs; do
  n=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//{print}' "$f" \
      | grep -cE '\.unwrap\(\)|\.expect\("|panic!\(' || true)
  total=$((total + n))
  if [ "$n" -gt 0 ]; then
    worst="$worst
  $n  $f"
  fi
done

echo "non-test panic sites in crates/net + crates/core + crates/fleet + crates/classify: $total (limit $LIMIT)"
echo "per file:$worst"
if [ "$total" -gt "$LIMIT" ]; then
  echo "FAIL: panic-site count grew past the pinned ceiling." >&2
  echo "Convert new unwrap/expect/panic! sites to typed errors, or prove" >&2
  echo "them infallible and discuss lowering the pattern's reach." >&2
  exit 1
fi
