#!/usr/bin/env bash
# Print every BENCH_*.json headline metric in one table.
#
# Each bench binary writes one JSON artifact (see README "Benchmarks and
# their artifacts"); this script is the one place that knows where each
# file's headline number lives, so CI logs and humans get a single
# at-a-glance summary instead of seven schemas.
#
#   tools/bench_summary.sh [dir]     # default: repo root (script's parent)
set -euo pipefail

dir="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

have_any=0
printf '%-22s %-14s %s\n' "artifact" "scale" "headline"
printf '%-22s %-14s %s\n' "--------" "-----" "--------"

headline() { # file scale-expr headline-expr
    local f="$dir/$1"
    [ -f "$f" ] || return 0
    have_any=1
    printf '%-22s %-14s %s\n' "$1" "$(jq -r "$2" "$f")" "$(jq -r "$3" "$f")"
}

headline BENCH_net.json '.scale // "-"' \
    '"chunked hub \(.hub_chunked_mibps) MiB/s (\(.speedup_vs_v1_baseline // .hub_chunked_mibps / .v1_chunked_baseline_mibps * 100 | floor / 100)x v1), reactor \(.reactor_tcp_mibps) vs threaded \(.threaded_tcp_mibps) MiB/s"'
headline BENCH_server.json '.scale // "-"' \
    '"\(.sessions) concurrent sessions \(.aggregate_speedup)x serial aggregate throughput"'
headline BENCH_stream.json '.scale // "-"' \
    '"streaming \(.end_to_end_session_speedup)x lower session latency than buffered (overlap \(.streaming.mean_overlap_ratio))"'
headline BENCH_optimize.json '.scale // "-"' \
    '"staged ICA optimizer \(.optimizer_speedup_ica_staged_vs_serial)x serial; no-ICA parallel \(.parallel_no_ica.speedup_vs_serial)x (bit-identical selection)"'
headline BENCH_load.json '.scale // "-"' \
    '"interactive p99: qos \(.arms.qos_poisson.interactive.e2e_p99_s)s vs fifo \(.arms.fifo_poisson.interactive.e2e_p99_s)s (poisson)"'
headline BENCH_fleet.json '.scale // "-"' \
    '"aggregate sessions/s speedup: 2 nodes \(.speedup_2_nodes)x, 4 nodes \(.speedup_4_nodes)x"'
headline BENCH_kernels.json '.scale // "-"' \
    '"packed matmul \(.matmul.headline_speedup)x ref, top-k \(.topk.speedup)x full sort, fused perturb \(.perturb.speedup)x staged"'

if [ "$have_any" = 0 ]; then
    echo "no BENCH_*.json artifacts found in $dir" >&2
    exit 1
fi
