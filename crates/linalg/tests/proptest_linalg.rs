//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_linalg::orthogonal::{random_orthogonal, random_rotation};
use sap_linalg::qr::QrDecomposition;
use sap_linalg::svd::Svd;
use sap_linalg::{lu, randn_matrix, vecops, Matrix};

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// R · Rᵀ = I for Haar-sampled orthogonal matrices of any dimension.
    #[test]
    fn random_orthogonal_satisfies_identity(d in small_dim(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_orthogonal(d, &mut rng);
        prop_assert!(q.is_orthogonal(1e-8));
    }

    /// Rotations preserve pairwise distances (the property that makes
    /// KNN/SVM invariant under geometric perturbation).
    #[test]
    fn rotation_preserves_pairwise_distance(d in 2usize..7, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = random_rotation(d, &mut rng);
        let x = sap_linalg::randn_vec(d, &mut rng);
        let y = sap_linalg::randn_vec(d, &mut rng);
        let rx = r.matvec(&x).unwrap();
        let ry = r.matvec(&y).unwrap();
        let before = vecops::dist2(&x, &y);
        let after = vecops::dist2(&rx, &ry);
        prop_assert!((before - after).abs() < 1e-8 * (1.0 + before));
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn_matrix(m, k, &mut rng);
        let b = randn_matrix(k, n, &mut rng);
        let lhs = (&a * &b).transpose();
        let rhs = &b.transpose() * &a.transpose();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    /// Matrix multiplication is associative.
    #[test]
    fn matmul_associative(seed in any::<u64>(), n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn_matrix(n, n, &mut rng);
        let b = randn_matrix(n, n, &mut rng);
        let c = randn_matrix(n, n, &mut rng);
        let lhs = &(&a * &b) * &c;
        let rhs = &a * &(&b * &c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    /// LU inverse is a two-sided inverse for well-conditioned matrices.
    #[test]
    fn lu_inverse_roundtrip(seed in any::<u64>(), n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Orthogonal + scaled identity is always well-conditioned.
        let q = random_orthogonal(n, &mut rng);
        let a = &q + &Matrix::identity(n).scale(2.0);
        if let Ok(inv) = lu::inverse(&a) {
            prop_assert!((&a * &inv).approx_eq(&Matrix::identity(n), 1e-7));
        }
    }

    /// QR reconstructs its input.
    #[test]
    fn qr_reconstructs(seed in any::<u64>(), m in 1usize..7, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn_matrix(m, n, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        prop_assert!((qr.q() * qr.r()).approx_eq(&a, 1e-8));
        prop_assert!(qr.q().is_orthogonal(1e-8));
    }

    /// SVD reconstructs its input and sorts singular values.
    #[test]
    fn svd_reconstructs(seed in any::<u64>(), m in 1usize..7, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn_matrix(m, n, &mut rng);
        let svd = Svd::new(&a).unwrap();
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-7));
        for w in svd.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    /// det(A·B) = det(A)·det(B).
    #[test]
    fn det_multiplicative(seed in any::<u64>(), n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn_matrix(n, n, &mut rng);
        let b = randn_matrix(n, n, &mut rng);
        let da = lu::det(&a).unwrap();
        let db = lu::det(&b).unwrap();
        let dab = lu::det(&(&a * &b)).unwrap();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() < 1e-6 * scale * scale);
    }
}
