//! Free functions on `&[f64]` vectors.
//!
//! Small enough not to warrant a newtype: the classifiers and privacy metrics
//! mostly need dot products, norms and summary statistics over record slices.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2_sq(a, b).sqrt()
}

/// `a - b`, element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b`, element-wise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `s * a`, element-wise.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance (`n-1` denominator). Returns 0 when `n < 2`.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Minimum value. Returns `f64::INFINITY` for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Returns `f64::NEG_INFINITY` for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Normalizes `a` to unit L2 norm in place. Leaves a zero vector unchanged.
pub fn normalize_in_place(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for x in a {
            *x /= n;
        }
    }
}

/// Index of the maximum element; `None` when empty. Ties resolve to the
/// first maximum.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(dist2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 2.0], &[1.0, 1.0]), vec![4.0, 3.0]);
        assert_eq!(scale(&[3.0, 2.0], 2.0), vec![6.0, 4.0]);
    }

    #[test]
    fn stats() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_argmax() {
        let a = [3.0, -1.0, 7.0, 7.0];
        assert_eq!(min(&a), -1.0);
        assert_eq!(max(&a), 7.0);
        assert_eq!(argmax(&a), Some(2));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn normalize() {
        let mut v = vec![3.0, 4.0];
        normalize_in_place(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_in_place(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
