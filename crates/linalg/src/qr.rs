//! Householder QR decomposition.
//!
//! Used to orthonormalize Gaussian matrices when sampling Haar-distributed
//! random rotations (see [`crate::orthogonal`]) and as a least-squares
//! building block.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// The result of a Householder QR decomposition `A = Q · R` with `Q`
/// orthogonal (`m × m`) and `R` upper trapezoidal (`m × n`).
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Computes the QR decomposition of `a` using Householder reflections.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimension`] for an empty matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidDimension {
                reason: "QR requires a non-empty matrix",
            });
        }
        let mut r = a.clone();
        let mut q = Matrix::identity(m);

        for k in 0..n.min(m.saturating_sub(1)) {
            // Householder vector for column k below the diagonal.
            let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
            let alpha = {
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm == 0.0 {
                    continue;
                }
                // Sign chosen to avoid cancellation.
                if v[0] >= 0.0 {
                    -norm
                } else {
                    norm
                }
            };
            v[0] -= alpha;
            let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
            if vnorm_sq == 0.0 {
                continue;
            }

            // Apply H = I - 2 v vᵀ / (vᵀv) to R (rows k..m).
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
                let coef = 2.0 * dot / vnorm_sq;
                for i in k..m {
                    r[(i, j)] -= coef * v[i - k];
                }
            }
            // Accumulate Q = Q · H (apply H to Q's columns k..m from the right).
            for i in 0..m {
                let dot: f64 = (k..m).map(|j| q[(i, j)] * v[j - k]).sum();
                let coef = 2.0 * dot / vnorm_sq;
                for j in k..m {
                    q[(i, j)] -= coef * v[j - k];
                }
            }
        }

        // Zero out the numerically-tiny subdiagonal residue so that R is
        // exactly upper triangular for downstream consumers.
        for i in 1..m {
            for j in 0..i.min(n) {
                r[(i, j)] = 0.0;
            }
        }

        Ok(QrDecomposition { q, r })
    }

    /// The orthogonal factor `Q` (`m × m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-trapezoidal factor `R` (`m × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Consumes the decomposition and returns `(Q, R)`.
    pub fn into_parts(self) -> (Matrix, Matrix) {
        (self.q, self.r)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` for full-column-rank
    /// `A` via back substitution on `R·x = Qᵀ·b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != m`, and
    /// [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.r.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "solve_least_squares",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if n > m {
            return Err(LinalgError::InvalidDimension {
                reason: "least squares requires rows >= cols",
            });
        }
        let qtb = self.q.transpose().matvec(b)?;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.r[(i, j)] * xj;
            }
            let d = self.r[(i, i)];
            if d.abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n) in &[(4, 4), (6, 3), (5, 5), (8, 2)] {
            let a = randn_matrix(m, n, &mut rng);
            let qr = QrDecomposition::new(&a).unwrap();
            let back = qr.q() * qr.r();
            assert!(
                back.approx_eq(&a, 1e-9),
                "QR reconstruction failed for {m}x{n}"
            );
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = randn_matrix(6, 6, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.q().is_orthogonal(1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = randn_matrix(5, 4, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        for i in 0..5 {
            for j in 0..i.min(4) {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(QrDecomposition::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn least_squares_exact_square_system() {
        // x + y = 3; x - y = 1 -> x = 2, y = 1
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_line_fit() {
        // Fit y = a + b t through (0,1), (1,3), (2,5): exact a=1, b=2.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&[1.0, 3.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_rejects_bad_rhs() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0]),
            Err(LinalgError::Singular)
        ));
    }
}
