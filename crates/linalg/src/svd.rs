//! Singular value decomposition via one-sided Jacobi.
//!
//! The ICA attack whitens with the SVD of the (centered) data matrix, and the
//! distance-inference attack aligns point clouds with an orthogonal
//! Procrustes step — both live on top of this decomposition.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Thin SVD `A = U · diag(σ) · Vᵀ` of an `m × n` matrix with `m ≥ n`:
/// `U` is `m × n` with orthonormal columns, `σ` has length `n` sorted in
/// descending order, `V` is `n × n` orthogonal.
///
/// For `m < n`, decompose the transpose and swap the factors.
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    singular_values: Vec<f64>,
    v: Matrix,
}

/// Maximum one-sided Jacobi sweeps.
const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Computes the thin SVD.
    ///
    /// Handles both orientations: an `m < n` input is decomposed through its
    /// transpose.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimension`] for an empty matrix.
    /// * [`LinalgError::NoConvergence`] if Jacobi sweeps fail to orthogonalize
    ///   the columns (practically unreachable for finite data).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidDimension {
                reason: "SVD requires a non-empty matrix",
            });
        }
        if m < n {
            let t = Self::new(&a.transpose())?;
            return Ok(Svd {
                u: t.v,
                singular_values: t.singular_values,
                v: t.u,
            });
        }

        // One-sided Jacobi: rotate column pairs of a working copy of A until
        // all columns are mutually orthogonal; their norms are the singular
        // values and the accumulated rotations form V.
        let mut u = a.clone();
        let mut v = Matrix::identity(n);
        let scale = a.max_abs().max(1.0);
        let tol = 1e-14 * scale * scale;

        for sweep in 0..=MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in p + 1..n {
                    let mut alpha = 0.0;
                    let mut beta = 0.0;
                    let mut gamma = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        alpha += up * up;
                        beta += uq * uq;
                        gamma += up * uq;
                    }
                    if gamma.abs() <= tol * (alpha * beta).sqrt().max(1e-300) {
                        continue;
                    }
                    rotated = true;
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if !rotated {
                break;
            }
            if sweep == MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "one-sided jacobi svd",
                    iterations: MAX_SWEEPS,
                });
            }
        }

        // Column norms are singular values; normalize U's columns.
        let mut sv: Vec<(f64, usize)> = (0..n)
            .map(|c| {
                let norm = (0..m).map(|i| u[(i, c)] * u[(i, c)]).sum::<f64>().sqrt();
                (norm, c)
            })
            .collect();
        sv.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut u_sorted = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut singular_values = Vec::with_capacity(n);
        for (new_c, &(norm, old_c)) in sv.iter().enumerate() {
            singular_values.push(norm);
            let ucol = u.column(old_c);
            if norm > 1e-300 {
                let normalized: Vec<f64> = ucol.iter().map(|x| x / norm).collect();
                u_sorted.set_column(new_c, &normalized);
            } else {
                // Null direction: leave U column zero (thin SVD consumers only
                // use directions with non-zero σ).
                u_sorted.set_column(new_c, &vec![0.0; m]);
            }
            v_sorted.set_column(new_c, &v.column(old_c));
        }

        Ok(Svd {
            u: u_sorted,
            singular_values,
            v: v_sorted,
        })
    }

    /// Left singular vectors (`m × n`, orthonormal columns for non-zero σ).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Right singular vectors (`n × n` orthogonal).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Reconstructs `U · diag(σ) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::from_diag(&self.singular_values);
        &(&self.u * &d) * &self.v.transpose()
    }

    /// Numerical rank: number of singular values above `tol · σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * smax)
            .count()
    }
}

/// Solves the orthogonal Procrustes problem: the orthogonal `R` minimizing
/// `‖R·A − B‖_F`, namely `R = U·Vᵀ` where `B·Aᵀ = U·Σ·Vᵀ`.
///
/// This is the estimator the distance-inference attack uses to align known
/// original points with their perturbed images.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `A` and `B` differ in shape,
/// and propagates SVD errors.
pub fn procrustes_rotation(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "procrustes",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = b.mul_transpose(a)?;
    let svd = Svd::new(&m)?;
    svd.u().mul_transpose(svd.v())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orthogonal::random_orthogonal;
    use crate::rng::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_random_matrices() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, n) in &[(5, 5), (8, 3), (3, 8), (10, 10)] {
            let a = randn_matrix(m, n, &mut rng);
            let svd = Svd::new(&a).unwrap();
            assert!(
                svd.reconstruct().approx_eq(&a, 1e-8),
                "SVD reconstruction failed {m}x{n}"
            );
        }
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = randn_matrix(7, 4, &mut rng);
        let svd = Svd::new(&a).unwrap();
        for w in svd.singular_values().windows(2) {
            assert!(w[0] >= w[1]);
        }
        for &s in svd.singular_values() {
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn v_is_orthogonal_and_u_orthonormal() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = randn_matrix(6, 4, &mut rng);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.v().is_orthogonal(1e-9));
        let utu = &svd.u().transpose() * svd.u();
        assert!(utu.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn diagonal_singular_values_known() {
        let a = Matrix::from_diag(&[3.0, -2.0, 1.0]);
        let svd = Svd::new(&a).unwrap();
        let sv = svd.singular_values();
        assert!((sv[0] - 3.0).abs() < 1e-10);
        assert!((sv[1] - 2.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rank_of_rank_deficient() {
        // Second column is 2x the first -> rank 1.
        let a = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
    }

    #[test]
    fn frobenius_norm_matches_singular_values() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = randn_matrix(5, 5, &mut rng);
        let svd = Svd::new(&a).unwrap();
        let sv_norm: f64 = svd
            .singular_values()
            .iter()
            .map(|s| s * s)
            .sum::<f64>()
            .sqrt();
        assert!((sv_norm - a.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn procrustes_recovers_rotation() {
        let mut rng = StdRng::seed_from_u64(10);
        let r = random_orthogonal(4, &mut rng);
        let a = randn_matrix(4, 30, &mut rng);
        let b = &r * &a;
        let est = procrustes_rotation(&a, &b).unwrap();
        assert!(est.approx_eq(&r, 1e-8), "Procrustes failed to recover R");
    }

    #[test]
    fn procrustes_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        assert!(procrustes_rotation(&a, &b).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Svd::new(&Matrix::zeros(0, 3)).is_err());
    }
}
