//! LU decomposition with partial pivoting.
//!
//! The space adaptor `R_it = R_t · Rᵢ⁻¹` needs matrix inverses; for
//! orthogonal `Rᵢ` the transpose would do, but the protocol code treats
//! inversion generically (the noise-carrying perturbations are not exactly
//! orthogonal maps), so a robust general inverse lives here.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU decomposition `P·A = L·U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strict lower, implicit unit diagonal) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or −1.0), for the determinant.
    perm_sign: f64,
}

/// Pivot magnitudes below this are treated as zero (singular).
const PIVOT_EPS: f64 = 1e-12;

impl LuDecomposition {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot underflows `1e-12`
    /// relative to the matrix scale.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidDimension {
                reason: "LU requires a non-empty matrix",
            });
        }
        let scale = a.max_abs().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < PIVOT_EPS * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let sub = factor * lu[(k, j)];
                    lu[(i, j)] -= sub;
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * yj;
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` by solving against each unit vector.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e).expect("length matches by construction");
            inv.set_column(c, &col);
            e[c] = 0.0;
        }
        inv
    }
}

/// Convenience: inverse of a square matrix via LU.
///
/// # Errors
///
/// Propagates [`LinalgError::NotSquare`] / [`LinalgError::Singular`] from the
/// factorization.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Ok(LuDecomposition::new(a)?.inverse())
}

/// Convenience: determinant of a square matrix via LU. Singular matrices
/// report determinant `0.0` rather than an error.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input.
pub fn det(a: &Matrix) -> Result<f64> {
    match LuDecomposition::new(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// Convenience: solves `A·x = b` via LU.
///
/// # Errors
///
/// Propagates factorization and shape errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [1, 2, 5, 10] {
            let a = randn_matrix(n, n, &mut rng);
            let inv = inverse(&a).unwrap();
            assert!(
                (&a * &inv).approx_eq(&Matrix::identity(n), 1e-8),
                "A * A^-1 != I for n={n}"
            );
            assert!((&inv * &a).approx_eq(&Matrix::identity(n), 1e-8));
        }
    }

    #[test]
    fn det_of_triangular_is_diagonal_product() {
        let a = Matrix::from_rows(&[
            vec![2.0, 5.0, 1.0],
            vec![0.0, 3.0, 7.0],
            vec![0.0, 0.0, -4.0],
        ]);
        assert!((det(&a).unwrap() - (-24.0)).abs() < 1e-10);
    }

    #[test]
    fn det_sign_tracks_row_swap() {
        // Permutation matrix swapping two rows has det -1.
        let p = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((det(&p).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_reports_error_and_zero_det() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn orthogonal_inverse_is_transpose() {
        let theta = 1.1_f64;
        let r = Matrix::from_rows(&[
            vec![theta.cos(), -theta.sin()],
            vec![theta.sin(), theta.cos()],
        ]);
        let inv = inverse(&r).unwrap();
        assert!(inv.approx_eq(&r.transpose(), 1e-12));
    }

    #[test]
    fn det_of_random_product_multiplies() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = randn_matrix(4, 4, &mut rng);
        let b = randn_matrix(4, 4, &mut rng);
        let da = det(&a).unwrap();
        let db = det(&b).unwrap();
        let dab = det(&(&a * &b)).unwrap();
        assert!((dab - da * db).abs() < 1e-8 * dab.abs().max(1.0));
    }
}
