//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA-based reconstruction attacks and ICA whitening both need the
//! eigenstructure of covariance matrices, which are symmetric positive
//! semidefinite — exactly the regime where Jacobi rotation sweeps are simple
//! and numerically excellent.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in **descending** order and `V` orthogonal (columns are
/// the corresponding eigenvectors).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

impl SymmetricEigen {
    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input.
    /// * [`LinalgError::NotSymmetric`] when `|aᵢⱼ − aⱼᵢ|` exceeds a small
    ///   tolerance relative to the matrix scale.
    /// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not
    ///   vanish within the sweep budget (practically unreachable for
    ///   covariance matrices).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidDimension {
                reason: "eigendecomposition requires a non-empty matrix",
            });
        }
        let scale = a.max_abs().max(1.0);
        for i in 0..n {
            for j in i + 1..n {
                if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                    return Err(LinalgError::NotSymmetric);
                }
            }
        }

        let mut m = a.clone();
        // Symmetrize exactly to kill representation noise.
        for i in 0..n {
            for j in i + 1..n {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        let mut v = Matrix::identity(n);

        let off = |m: &Matrix| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s
        };

        let tol = 1e-22 * scale * scale * (n as f64);
        let mut sweeps = 0;
        while off(&m) > tol {
            sweeps += 1;
            if sweeps > MAX_SWEEPS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "jacobi eigendecomposition",
                    iterations: MAX_SWEEPS,
                });
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Stable computation of the Jacobi rotation angle.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    // Apply the rotation to rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_c, &old_c) in order.iter().enumerate() {
            eigenvectors.set_column(new_c, &v.column(old_c));
        }

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthogonal matrix whose columns are the eigenvectors, ordered to match
    /// [`Self::eigenvalues`].
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Reconstructs `V · diag(λ) · Vᵀ` (for testing / residual checks).
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::from_diag(&self.eigenvalues);
        &(&self.eigenvectors * &d) * &self.eigenvectors.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_matches_random_symmetric() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [2, 4, 8] {
            let g = randn_matrix(n, n, &mut rng);
            let a = &g + &g.transpose(); // symmetric
            let e = SymmetricEigen::new(&a).unwrap();
            assert!(
                e.reconstruct().approx_eq(&a, 1e-8),
                "reconstruction failed n={n}"
            );
            assert!(e.eigenvectors().is_orthogonal(1e-8));
        }
    }

    #[test]
    fn eigenvalues_of_covariance_nonnegative() {
        let mut rng = StdRng::seed_from_u64(23);
        let x = randn_matrix(5, 50, &mut rng);
        let cov = x.column_covariance();
        let e = SymmetricEigen::new(&cov).unwrap();
        for &l in e.eigenvalues() {
            assert!(l > -1e-10, "covariance eigenvalue {l} negative");
        }
        // Sorted descending.
        for w in e.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        for k in 0..3 {
            let v = e.eigenvectors().column(k);
            let av = a.matvec(&v).unwrap();
            let lv: Vec<f64> = v.iter().map(|x| x * e.eigenvalues()[k]).collect();
            for (x, y) in av.iter().zip(&lv) {
                assert!((x - y).abs() < 1e-9, "A v != λ v at pair {k}");
            }
        }
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NotSymmetric)
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = randn_matrix(6, 6, &mut rng);
        let a = &g + &g.transpose();
        let e = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8);
    }
}
