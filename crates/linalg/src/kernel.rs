//! Packed, register-blocked compute kernels behind [`Matrix::matmul`],
//! [`Matrix::mul_transpose`] and [`Matrix::column_covariance`].
//!
//! Every kernel here is a *schedule* change, never a *semantics* change:
//! the per-output-element floating-point accumulation order is pinned to
//! the straightforward reference loops that shipped first ([`matmul_rows`],
//! [`column_covariance_reference`]), so results are **bit-identical** to
//! those references at any tile size, packing layout, or thread count.
//! That invariant is what the streaming/buffered data-plane equivalence
//! and the optimizer's serial-vs-parallel equivalence rest on, and it is
//! property-tested in `tests/kernel_equivalence.rs`.
//!
//! # The tiling invariant that preserves bit-identity
//!
//! For `C = A·B`, every output element is
//!
//! ```text
//! C[i][j] = Σ_k A[i][k]·B[k][j]      (k ascending, A[i][k] == 0 skipped)
//! ```
//!
//! accumulated left-to-right from `0.0`. Register blocking changes *which*
//! output elements are in flight at once (an `MR × NR` tile instead of
//! one), and panel packing changes *where* `B`'s elements are read from
//! (a contiguous `k`-major panel instead of strided rows) — but neither
//! reorders the `k` walk of any single element, so every intermediate sum
//! is the exact `f64` the reference produces. The zero-skip rule
//! (`A[i][k] == 0.0` contributes nothing and is not added) is likewise
//! applied per `(i, k)` in both paths.
//!
//! # Layout
//!
//! * [`pack_b`] — copies the right factor into NR-wide column panels,
//!   `k`-major inside each panel, so the microkernel's inner loop reads
//!   one contiguous cache line per `k` step instead of `NR` strided rows.
//! * [`matmul_packed_rows`] — the `MR × NR` (4 × 8) register-blocked
//!   microkernel over packed panels; the accumulator tile lives in
//!   registers across the whole `k` sweep, so the kernel does one load of
//!   `A` and one contiguous lane group of `B` per `NR` multiply-adds
//!   instead of the reference's load+store of `C` per multiply-add.
//! * [`mul_transpose_rows`] — the same register blocking for `A·Bᵀ`,
//!   where both operands are walked along contiguous rows (no packing
//!   needed — row-major rows *are* the panels).
//! * [`column_covariance_packed`] — 4 × 4 tiles of the Gram/covariance
//!   matrix accumulated in registers while streaming the `N` records
//!   once; the reference walks `d²/2` strided columns per record.

use crate::matrix::Matrix;

/// Register-tile height: output rows in flight per microkernel call.
pub const MR: usize = 4;
/// Register-tile width: output columns in flight per microkernel call
/// (also the packed panel width). Eight lanes amortize the per-`(row, k)`
/// zero-skip branch over 8 multiply-adds and give the auto-vectorizer two
/// full 4-wide vectors per accumulator row.
pub const NR: usize = 8;

/// Flop floor below which packing the right factor costs more than the
/// register-blocked kernel saves; small products stay on the reference
/// loop (same bits either way).
const PACK_MIN_FLOPS: usize = 1 << 13;

/// Packed-path routing bounds. The register-blocked kernel wins where the
/// reference's per-`(i, k)` setup cannot amortize over a long contiguous
/// inner loop: many output rows streaming against a *narrow* right factor
/// (record-block × small-rotation products, `N × d · d × d'`). With a wide
/// right factor the reference's 512-wide inner loops already saturate the
/// FP pipes and packing cannot beat them, so those shapes stay on
/// [`matmul_rows`]. Both paths are bit-identical; this is routing, not
/// semantics.
const PACK_MIN_ROWS: usize = 128;
const PACK_MAX_COLS: usize = 16;
const PACK_MAX_INNER: usize = 32;

/// Column-block width of the reference multiply: a `cols × 512` panel of
/// the right factor (≤ 64 KiB for the dimensionalities this workspace
/// uses) stays resident across the row sweep instead of being re-streamed
/// once per output row.
const MATMUL_COL_BLOCK: usize = 512;

/// The pinned reference spec: computes output rows
/// `row0 .. row0 + out.len() / rhs.cols()` of `lhs * rhs` into the
/// contiguous row-major slice `out` with the cache-blocked i-k-j loop.
///
/// The i-k-j order keeps the inner loop sequential over both the output
/// row and the rhs row; the j-blocking only re-orders *which columns* are
/// touched when, never the per-element `k` accumulation order, so the
/// result is bit-identical to the unblocked triple loop. Every faster
/// matmul path in this module is pinned to this function.
pub fn matmul_rows(lhs: &Matrix, rhs: &Matrix, row0: usize, out: &mut [f64]) {
    let n = rhs.cols();
    let rows = out.len() / n.max(1);
    let a = lhs.as_slice();
    let b = rhs.as_slice();
    let lcols = lhs.cols();
    for jb in (0..n).step_by(MATMUL_COL_BLOCK) {
        let je = (jb + MATMUL_COL_BLOCK).min(n);
        for i in 0..rows {
            let a_row = &a[(row0 + i) * lcols..(row0 + i + 1) * lcols];
            let (out_start, out_end) = (i * n + jb, i * n + je);
            for (k, &x) in a_row.iter().enumerate() {
                if x == 0.0 {
                    continue;
                }
                let rhs_row = &b[k * n + jb..k * n + je];
                let out_row = &mut out[out_start..out_end];
                for (o, &y) in out_row.iter_mut().zip(rhs_row) {
                    *o += x * y;
                }
            }
        }
    }
}

/// The right factor of a matmul, repacked into NR-wide column panels.
///
/// Panel `p` covers columns `p·NR .. min((p+1)·NR, n)`; inside a panel
/// the layout is `k`-major (`panel[k·NR + jj] = B[k][p·NR + jj]`), zero
/// padded to NR lanes on the ragged last panel. The microkernel therefore
/// reads exactly one contiguous NR-word group per `k` step.
pub struct PackedB {
    panels: Vec<f64>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Inner dimension `k` (rows of the packed factor).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width `n` (columns of the packed factor).
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn panel(&self, p: usize) -> &[f64] {
        &self.panels[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// Packs `rhs` into [`PackedB`] panels. One pass over `rhs`, done once
/// per product and shared read-only by every worker thread.
pub fn pack_b(rhs: &Matrix) -> PackedB {
    let (k, n) = rhs.shape();
    let n_panels = n.div_ceil(NR).max(1);
    let mut panels = vec![0.0f64; n_panels * k * NR];
    let src = rhs.as_slice();
    for p in 0..n.div_ceil(NR) {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut panels[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            dst[kk * NR..kk * NR + w].copy_from_slice(&src[kk * n + j0..kk * n + j0 + w]);
        }
    }
    PackedB { panels, k, n }
}

/// `true` when a `m × k × n` product lands in the packed register-blocked
/// kernel's win region — a tall row stream against a narrow right factor
/// (see the routing-bound consts); both paths produce the same bits, so
/// this is purely a performance heuristic.
pub fn packing_pays(m: usize, k: usize, n: usize) -> bool {
    m >= PACK_MIN_ROWS
        && (NR..=PACK_MAX_COLS).contains(&n)
        && k <= PACK_MAX_INNER
        && m.saturating_mul(k).saturating_mul(n) >= PACK_MIN_FLOPS
}

/// Register-blocked microkernel: computes output rows
/// `row0 .. row0 + out.len() / packed.n()` of `lhs * B` from the packed
/// panels into the contiguous row-major slice `out`.
///
/// `MR`-row blocks run the `MR × NR` microkernel: the accumulator tile
/// lives in registers across the whole `k` sweep, each `k` step reading
/// one element per `A` row and one contiguous `NR`-lane group of the
/// panel. Leftover rows fall back to a scalar per-element loop over the
/// same panels. Both walk each output element's `k` range ascending with
/// the `A[i][k] == 0.0` skip, so the result is **bit-identical** to
/// [`matmul_rows`].
pub fn matmul_packed_rows(lhs: &Matrix, packed: &PackedB, row0: usize, out: &mut [f64]) {
    let n = packed.n;
    let kdim = packed.k;
    let rows = out.len() / n.max(1);
    debug_assert_eq!(lhs.cols(), kdim, "packed panel inner dim mismatch");
    let a = lhs.as_slice();
    let lcols = lhs.cols();
    let n_panels = n.div_ceil(NR);

    let mut i = 0;
    while i + MR <= rows {
        let ar = [
            &a[(row0 + i) * lcols..(row0 + i + 1) * lcols],
            &a[(row0 + i + 1) * lcols..(row0 + i + 2) * lcols],
            &a[(row0 + i + 2) * lcols..(row0 + i + 3) * lcols],
            &a[(row0 + i + 3) * lcols..(row0 + i + 4) * lcols],
        ];
        for p in 0..n_panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let bp = packed.panel(p);
            let mut c = [[0.0f64; NR]; MR];
            for (k, lane) in bp.chunks_exact(NR).enumerate() {
                for (row, cr) in ar.iter().zip(c.iter_mut()) {
                    let x = row[k];
                    if x != 0.0 {
                        for (cj, &bj) in cr.iter_mut().zip(lane) {
                            *cj += x * bj;
                        }
                    }
                }
            }
            for (ii, lane) in c.iter().enumerate() {
                out[(i + ii) * n + j0..(i + ii) * n + j0 + w].copy_from_slice(&lane[..w]);
            }
        }
        i += MR;
    }

    // Leftover rows (rows % MR): scalar per-element loop over the same
    // panels — identical k walk, identical bits.
    while i < rows {
        let ar = &a[(row0 + i) * lcols..(row0 + i + 1) * lcols];
        for p in 0..n_panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let bp = packed.panel(p);
            for jj in 0..w {
                let mut acc = 0.0f64;
                for (k, &x) in ar.iter().enumerate() {
                    if x == 0.0 {
                        continue;
                    }
                    acc += x * bp[k * NR + jj];
                }
                out[i * n + j0 + jj] = acc;
            }
        }
        i += 1;
    }
}

/// Register-blocked `A · Bᵀ`: computes output rows
/// `row0 .. row0 + out.len() / rhs.rows()` of `lhs · rhsᵀ` into the
/// contiguous row-major slice `out`.
///
/// Output element `(i, j)` is the dot product of `lhs` row `i` and `rhs`
/// row `j` — both contiguous in row-major storage, so no packing is
/// needed; the 4 × 4 register blocking streams both operands once per
/// tile. The `k` walk is ascending with the `lhs[i][k] == 0.0` skip,
/// making the result **bit-identical** to
/// `lhs.matmul(&rhs.transpose())`.
pub fn mul_transpose_rows(lhs: &Matrix, rhs: &Matrix, row0: usize, out: &mut [f64]) {
    /// Column-tile width of the transpose kernel: `TNR` `rhs` rows are
    /// streamed together per tile (independent of the packed panel width
    /// [`NR`] — here the operands are already contiguous rows).
    const TNR: usize = 4;
    let n = rhs.rows();
    let kdim = lhs.cols();
    debug_assert_eq!(rhs.cols(), kdim, "mul_transpose inner dim mismatch");
    let rows = out.len() / n.max(1);
    let a = lhs.as_slice();
    let b = rhs.as_slice();

    let mut i = 0;
    while i + MR <= rows {
        let arow = [
            &a[(row0 + i) * kdim..(row0 + i + 1) * kdim],
            &a[(row0 + i + 1) * kdim..(row0 + i + 2) * kdim],
            &a[(row0 + i + 2) * kdim..(row0 + i + 3) * kdim],
            &a[(row0 + i + 3) * kdim..(row0 + i + 4) * kdim],
        ];
        let mut j = 0;
        while j + TNR <= n {
            let brow = [
                &b[j * kdim..(j + 1) * kdim],
                &b[(j + 1) * kdim..(j + 2) * kdim],
                &b[(j + 2) * kdim..(j + 3) * kdim],
                &b[(j + 3) * kdim..(j + 4) * kdim],
            ];
            let mut c = [[0.0f64; TNR]; MR];
            for k in 0..kdim {
                let bv = [brow[0][k], brow[1][k], brow[2][k], brow[3][k]];
                for ii in 0..MR {
                    let x = arow[ii][k];
                    if x != 0.0 {
                        c[ii][0] += x * bv[0];
                        c[ii][1] += x * bv[1];
                        c[ii][2] += x * bv[2];
                        c[ii][3] += x * bv[3];
                    }
                }
            }
            for ii in 0..MR {
                out[(i + ii) * n + j..(i + ii) * n + j + TNR].copy_from_slice(&c[ii]);
            }
            j += TNR;
        }
        // Ragged columns of this 4-row band.
        while j < n {
            let br = &b[j * kdim..(j + 1) * kdim];
            for (ii, ar) in arow.iter().enumerate() {
                out[(i + ii) * n + j] = dot_skip_zero(ar, br);
            }
            j += 1;
        }
        i += MR;
    }
    // Ragged rows: plain dot products, same k walk.
    while i < rows {
        let ar = &a[(row0 + i) * kdim..(row0 + i + 1) * kdim];
        for j in 0..n {
            out[i * n + j] = dot_skip_zero(ar, &b[j * kdim..(j + 1) * kdim]);
        }
        i += 1;
    }
}

/// Ascending-`k` dot product with the left-factor zero skip — the scalar
/// form of every microkernel element in this module.
#[inline]
fn dot_skip_zero(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (k, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        acc += x * b[k];
    }
    acc
}

/// The pinned reference spec for [`Matrix::column_covariance`]: the
/// record-outer loop that shipped first. Every output element `(a, b)`
/// accumulates `(x[a][j] − μ[a])·(x[b][j] − μ[b])` over records `j`
/// ascending; the upper triangle is computed, divided by `N − 1`, then
/// mirrored.
///
/// # Panics
///
/// Panics if the matrix has fewer than two columns.
pub fn column_covariance_reference(x: &Matrix) -> Matrix {
    assert!(x.cols() >= 2, "covariance needs at least two columns");
    let d = x.rows();
    let mu = x.row_means();
    let mut cov = Matrix::zeros(d, d);
    for j in 0..x.cols() {
        for a in 0..d {
            let da = x[(a, j)] - mu[a];
            for b in a..d {
                let db = x[(b, j)] - mu[b];
                cov[(a, b)] += da * db;
            }
        }
    }
    let denom = (x.cols() - 1) as f64;
    for a in 0..d {
        for b in a..d {
            cov[(a, b)] /= denom;
            cov[(b, a)] = cov[(a, b)];
        }
    }
    cov
}

/// Tiled covariance of the columns of a `d × N` matrix: 4 × 4 register
/// tiles of the upper triangle, each streaming the `N` records once over
/// contiguous rows, **bit-identical** to
/// [`column_covariance_reference`] (each element's record walk is
/// ascending `j` from `0.0`, with the same centered factors).
///
/// The reference reads `d` strided columns per record (`x[(a, j)]` hops
/// `N` doubles per step); this kernel reads 8 contiguous row streams per
/// tile, which is what makes whitening-covariance construction memory-
/// bandwidth-bound instead of latency-bound.
///
/// # Panics
///
/// Panics if the matrix has fewer than two columns.
pub fn column_covariance_packed(x: &Matrix) -> Matrix {
    assert!(x.cols() >= 2, "covariance needs at least two columns");
    let d = x.rows();
    let n = x.cols();
    let mu = x.row_means();
    let data = x.as_slice();
    let mut cov = Matrix::zeros(d, d);

    let mut a0 = 0;
    while a0 < d {
        let am = MR.min(d - a0);
        let mut b0 = a0;
        while b0 < d {
            let bm = MR.min(d - b0);
            let mut c = [[0.0f64; MR]; MR];
            for j in 0..n {
                let mut da = [0.0f64; MR];
                let mut db = [0.0f64; MR];
                for (ii, slot) in da.iter_mut().take(am).enumerate() {
                    *slot = data[(a0 + ii) * n + j] - mu[a0 + ii];
                }
                for (kk, slot) in db.iter_mut().take(bm).enumerate() {
                    *slot = data[(b0 + kk) * n + j] - mu[b0 + kk];
                }
                for ii in 0..am {
                    for kk in 0..bm {
                        c[ii][kk] += da[ii] * db[kk];
                    }
                }
            }
            for (ii, row) in c.iter().enumerate().take(am) {
                for (kk, &v) in row.iter().enumerate().take(bm) {
                    let (r, cc) = (a0 + ii, b0 + kk);
                    if cc >= r {
                        cov[(r, cc)] = v;
                    }
                }
            }
            b0 += bm;
        }
        a0 += am;
    }

    let denom = (n - 1) as f64;
    for a in 0..d {
        for b in a..d {
            cov[(a, b)] /= denom;
            cov[(b, a)] = cov[(a, b)];
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_matrix(rows: usize, cols: usize, seed: u64, zero_every: usize) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |r, c| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zero_every > 0 && (r + c) % zero_every == 0 {
                0.0
            } else {
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            }
        })
    }

    fn packed_product(a: &Matrix, b: &Matrix) -> Matrix {
        let packed = pack_b(b);
        let mut out = Matrix::zeros(a.rows(), b.cols());
        matmul_packed_rows(a, &packed, 0, out.as_mut_slice());
        out
    }

    fn reference_product(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        matmul_rows(a, b, 0, out.as_mut_slice());
        out
    }

    #[test]
    fn packed_matches_reference_across_shapes() {
        for &(m, k, n, z) in &[
            (1usize, 1usize, 1usize, 0usize),
            (4, 4, 4, 0),
            (5, 3, 7, 2),
            (8, 16, 130, 3),
            (13, 9, 33, 1), // zero_every=1 → all-zero lhs
            (3, 7, 2, 0),   // fewer rows than MR, fewer cols than NR
            (17, 12, 257, 5),
        ] {
            let a = lcg_matrix(m, k, 0x5EED ^ (m as u64) << 8 ^ n as u64, z);
            let b = lcg_matrix(k, n, 0xF00D ^ (k as u64) << 4 ^ n as u64, 0);
            let fast = packed_product(&a, &b);
            let slow = reference_product(&a, &b);
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "m={m} k={k} n={n} zero_every={z}"
            );
        }
    }

    #[test]
    fn packed_rows_offset_chunks_match() {
        let a = lcg_matrix(11, 6, 0xABCD, 4);
        let b = lcg_matrix(6, 37, 0x1234, 0);
        let whole = reference_product(&a, &b);
        let packed = pack_b(&b);
        // Compute rows 3..11 as a standalone chunk, as a thread would.
        let mut chunk = vec![0.0; 8 * 37];
        matmul_packed_rows(&a, &packed, 3, &mut chunk);
        assert_eq!(&whole.as_slice()[3 * 37..], &chunk[..]);
    }

    #[test]
    fn mul_transpose_rows_matches_explicit_transpose() {
        for &(m, k, n, z) in &[
            (1usize, 1usize, 1usize, 0usize),
            (4, 5, 4, 0),
            (9, 3, 6, 2),
            (6, 17, 11, 3),
        ] {
            let a = lcg_matrix(m, k, 0xAAA ^ m as u64, z);
            let b = lcg_matrix(n, k, 0xBBB ^ n as u64, 0);
            let via_transpose = reference_product(&a, &b.transpose());
            let mut fast = Matrix::zeros(m, n);
            mul_transpose_rows(&a, &b, 0, fast.as_mut_slice());
            assert_eq!(
                fast.as_slice(),
                via_transpose.as_slice(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn covariance_kernels_agree_bitwise() {
        for &(d, n) in &[(1usize, 2usize), (2, 5), (3, 17), (5, 40), (9, 101)] {
            let x = lcg_matrix(d, n, 0xC0FFEE ^ (d as u64) << 8 ^ n as u64, 3);
            let fast = column_covariance_packed(&x);
            let slow = column_covariance_reference(&x);
            assert_eq!(fast.as_slice(), slow.as_slice(), "d={d} n={n}");
        }
    }

    #[test]
    fn pack_b_pads_ragged_panel_with_zeros() {
        let b = lcg_matrix(3, NR + 3, 7, 0);
        let packed = pack_b(&b);
        assert_eq!(packed.k(), 3);
        assert_eq!(packed.n(), NR + 3);
        // Second panel holds columns NR..NR+3 in lanes 0..3, zeros after.
        let p1 = packed.panel(1);
        for k in 0..3 {
            for jj in 0..3 {
                assert_eq!(p1[k * NR + jj], b[(k, NR + jj)]);
            }
            assert!(p1[k * NR + 3..(k + 1) * NR].iter().all(|&v| v == 0.0));
        }
    }
}
