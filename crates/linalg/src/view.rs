//! Borrowed, zero-copy matrix views.
//!
//! The streaming data plane hands row-blocks of a dataset through
//! perturbation, adaptation, and classification stages without
//! materializing a [`Matrix`] (or any owned allocation) per block.
//! [`MatrixView`] is the currency those stages trade in: a `rows × cols`
//! row-major window over a borrowed `&[f64]`, typically a reusable scratch
//! buffer that a stage refills for every block.
//!
//! In the data plane's record-major convention a block of `n` dataset
//! records with `d` features is an `n × d` view — each **row** is one
//! record. (The paper-facing [`Matrix`] code keeps the transposed `d × N`
//! column-per-record convention; the two meet only in the kernels, which
//! are written to produce bit-identical results either way.)

use crate::matrix::Matrix;

/// A borrowed row-major `rows × cols` view over a flat `f64` slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Wraps a flat row-major slice as a `rows × cols` view.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "view shape {rows}×{cols} over {} elements",
            data.len()
        );
        MatrixView { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// A sub-view of rows `start..end` (zero-copy — rows are contiguous).
    ///
    /// # Panics
    ///
    /// Panics when `end > self.rows()` or `start > end`.
    pub fn row_block(&self, start: usize, end: usize) -> MatrixView<'a> {
        assert!(start <= end && end <= self.rows, "row block out of bounds");
        MatrixView {
            rows: end - start,
            cols: self.cols,
            data: &self.data[start * self.cols..end * self.cols],
        }
    }

    /// Copies the view into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec()).expect("shape checked")
    }
}

impl Matrix {
    /// Borrows the whole matrix as a [`MatrixView`].
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows(),
            cols: self.cols(),
            data: self.as_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_mirrors_matrix() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let v = m.view();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 4);
        assert_eq!(v.row(1), m.row(1));
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn row_block_is_zero_copy_window() {
        let m = Matrix::from_fn(5, 2, |r, c| (10 * r + c) as f64);
        let b = m.view().row_block(1, 4);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.row(0), &[10.0, 11.0]);
        assert_eq!(b.row(2), &[30.0, 31.0]);
        assert_eq!(b.as_slice().as_ptr(), m.as_slice()[2..].as_ptr(), "no copy");
    }

    #[test]
    fn iter_rows_covers_all() {
        let m = Matrix::identity(3);
        let rows: Vec<&[f64]> = m.view().iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "view shape")]
    fn bad_shape_panics() {
        let data = [1.0, 2.0, 3.0];
        let _ = MatrixView::new(2, 2, &data);
    }
}
