//! Gaussian sampling.
//!
//! The `rand` crate provides uniform sampling only; the perturbation family
//! `G(X) = RX + Ψ + Δ` needs standard normals both for the noise component
//! `Δ` and for sampling Haar-distributed orthogonal matrices (QR of a
//! Gaussian matrix). We implement the polar variant of Box–Muller, which
//! avoids trigonometric calls and the `u = 0` edge case.

use crate::matrix::Matrix;
use rand::{Rng, RngExt};

/// Draws one standard normal `N(0, 1)` sample using the Marsaglia polar
/// method.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws `n` i.i.d. standard normal samples.
pub fn randn_vec<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    (0..n).map(|_| randn(rng)).collect()
}

/// Draws a `rows × cols` matrix of i.i.d. standard normal entries.
pub fn randn_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| randn(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs = randn_vec(200_000, &mut rng);
        let m = vecops::mean(&xs);
        let v = vecops::variance(&xs);
        assert!(m.abs() < 0.01, "mean {m} too far from 0");
        assert!((v - 1.0).abs() < 0.02, "variance {v} too far from 1");
    }

    #[test]
    fn kurtosis_matches_gaussian() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = randn_vec(200_000, &mut rng);
        let m = vecops::mean(&xs);
        let s2 = vecops::variance(&xs);
        let k: f64 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / (xs.len() as f64 * s2 * s2);
        // Gaussian excess kurtosis is 0 (k = 3).
        assert!((k - 3.0).abs() < 0.1, "kurtosis {k} too far from 3");
    }

    #[test]
    fn matrix_shape_and_determinism() {
        let mut a_rng = StdRng::seed_from_u64(1);
        let mut b_rng = StdRng::seed_from_u64(1);
        let a = randn_matrix(3, 5, &mut a_rng);
        let b = randn_matrix(3, 5, &mut b_rng);
        assert_eq!(a.shape(), (3, 5));
        assert_eq!(a, b, "same seed must give same matrix");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a_rng = StdRng::seed_from_u64(1);
        let mut b_rng = StdRng::seed_from_u64(2);
        assert_ne!(randn_vec(8, &mut a_rng), randn_vec(8, &mut b_rng));
    }
}
