//! A small fixed thread-splitter for row-parallel kernels.
//!
//! The streaming data plane's hot loops — cache-blocked matmul, block
//! perturbation, adaptor application, distance/classify kernels — are all
//! *row-parallel*: they write disjoint chunks of one output slice and read
//! shared inputs. [`for_each_chunk_mut`] is the one splitting primitive
//! they share: it carves the output into contiguous chunks, feeds the
//! chunks through a work queue built on the `crossbeam` channel shim, and
//! runs them on a small fixed set of scoped worker threads.
//!
//! # Determinism
//!
//! Every chunk's content depends only on its index and the shared inputs,
//! never on scheduling, so results are **bit-identical** to the serial
//! loop regardless of thread count. That property is what lets the
//! streaming and buffered data planes promise byte-identical session
//! outcomes while still parallelizing the math.
//!
//! # Sizing
//!
//! The splitter never spawns more workers than there are chunks, and
//! callers guard small inputs with [`worth_splitting`] so tiny kernels
//! stay on the calling thread. The worker count is
//! `available_parallelism` capped at [`MAX_THREADS`], overridable with the
//! `SAP_LINALG_THREADS` environment variable (`1` forces serial).

use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::OnceLock;

/// Hard cap on splitter worker threads.
pub const MAX_THREADS: usize = 8;

/// The configured worker count: `SAP_LINALG_THREADS` if set, else the
/// machine's available parallelism, capped at [`MAX_THREADS`] and floored
/// at 1. Computed once per process.
pub fn threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("SAP_LINALG_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, MAX_THREADS);
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

/// `true` when a kernel of roughly `flops` floating-point operations is
/// large enough to amortize spawning scoped workers. Below the threshold
/// callers should run serially on their own thread.
pub fn worth_splitting(flops: usize) -> bool {
    worth_splitting_with(threads(), flops)
}

/// [`worth_splitting`] for an explicit worker count instead of the
/// process-global [`threads`] setting — the guard used by kernels that
/// accept a per-call worker override (e.g.
/// [`crate::Matrix::matmul_with_workers`]).
pub fn worth_splitting_with(workers: usize, flops: usize) -> bool {
    workers > 1 && flops >= 1 << 17
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` for every chunk, in parallel when more than one
/// worker is configured. The final chunk may be shorter.
///
/// Chunks are distributed through a shared work queue (the crossbeam
/// channel shim), so uneven chunks still balance across workers; because
/// each invocation owns a disjoint `&mut` chunk, the result is identical
/// to the serial loop.
///
/// # Panics
///
/// Panics when `chunk_len` is zero.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_chunk_mut_with(threads(), data, chunk_len, f);
}

/// [`for_each_chunk_mut`] with an explicit worker count instead of the
/// process-global [`threads`] setting. `workers` is floored at 1 and
/// capped at the chunk count; results are bit-identical to the serial
/// loop for every worker count (each chunk's content depends only on its
/// index and the shared inputs).
///
/// This is the entry point for callers that schedule *tasks* rather than
/// slices — e.g. the privacy optimizer's candidate fan-out, which needs a
/// per-run thread override for its serial-vs-parallel equivalence tests —
/// while [`for_each_chunk_mut`] keeps serving the data-parallel kernels.
///
/// # Panics
///
/// Panics when `chunk_len` is zero.
pub fn for_each_chunk_mut_with<T, F>(workers: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = workers.max(1).min(n_chunks);
    if workers <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Queue every chunk up front, then let scoped workers drain the queue:
    // `try_recv` returning `None` can only mean "empty", never "not yet
    // sent", so workers exit exactly when the work is done.
    let (tx, rx) = channel::unbounded();
    for item in data.chunks_mut(chunk_len).enumerate() {
        assert!(tx.send(item).is_ok(), "receiver alive until scope ends");
    }
    drop(tx);
    let queue = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = queue.lock().try_recv();
                match item {
                    Some((idx, chunk)) => f(idx, chunk),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u64; 10_000];
        for_each_chunk_mut(&mut data, 97, |idx, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (idx * 97 + i) as u64 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn matches_serial_result() {
        let mut par = vec![0.0f64; 5_000];
        let mut ser = vec![0.0f64; 5_000];
        let kernel = |idx: usize, chunk: &mut [f64]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let x = (idx * 64 + i) as f64;
                *v = (x * 0.25).sin() + x.sqrt();
            }
        };
        for_each_chunk_mut(&mut par, 64, kernel);
        for (idx, chunk) in ser.chunks_mut(64).enumerate() {
            kernel(idx, chunk);
        }
        assert_eq!(par, ser, "parallel split must be bit-identical");
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut data = vec![0u8; 1000];
        for_each_chunk_mut(&mut data, 10, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_and_single_chunk_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![1u8; 3];
        for_each_chunk_mut(&mut one, 8, |idx, chunk| {
            assert_eq!(idx, 0);
            assert_eq!(chunk.len(), 3);
        });
    }

    #[test]
    fn threads_is_positive_and_capped() {
        let t = threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn explicit_worker_counts_are_bit_identical() {
        let kernel = |idx: usize, chunk: &mut [f64]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let x = (idx * 7 + i) as f64;
                *v = (x * 0.37).cos() * x.sqrt();
            }
        };
        let mut reference = vec![0.0f64; 701];
        for_each_chunk_mut_with(1, &mut reference, 7, kernel);
        for workers in [0usize, 2, 4, 16] {
            let mut out = vec![0.0f64; 701];
            for_each_chunk_mut_with(workers, &mut out, 7, kernel);
            assert_eq!(out, reference, "workers={workers}");
        }
    }
}
