//! Error type shared by all decompositions in this crate.

use std::fmt;

/// Convenience alias for `Result<T, LinalgError>`.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by matrix constructors and decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes (e.g. a `2×3` times a `2×2`).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but the input was not square.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix was singular (or numerically singular) where an inverse or
    /// solve was requested.
    Singular,
    /// The matrix was expected to be symmetric but was not (within tolerance).
    NotSymmetric,
    /// The matrix was expected to be positive definite (Cholesky) but a
    /// non-positive pivot was encountered.
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A dimension argument was invalid (e.g. a 0×0 rotation).
    InvalidDimension {
        /// Description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSymmetric => write!(f, "matrix is not symmetric"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidDimension { reason } => {
                write!(f, "invalid dimension: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            op: "matrix multiply",
            lhs: (2, 3),
            rhs: (2, 2),
        };
        let msg = err.to_string();
        assert!(msg.contains("matrix multiply"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("2x2"));
    }

    #[test]
    fn display_all_variants_non_empty() {
        let errs = [
            LinalgError::NotSquare { shape: (1, 2) },
            LinalgError::Singular,
            LinalgError::NotSymmetric,
            LinalgError::NotPositiveDefinite,
            LinalgError::NoConvergence {
                algorithm: "jacobi",
                iterations: 100,
            },
            LinalgError::InvalidDimension {
                reason: "dimension must be positive",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
