//! Matrix norms and distance helpers used by the privacy metrics.

use crate::matrix::Matrix;

/// Frobenius distance `‖A − B‖_F`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn frobenius_distance(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "frobenius_distance: shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Induced 1-norm (maximum absolute column sum).
pub fn norm_1(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|c| (0..a.rows()).map(|r| a[(r, c)].abs()).sum::<f64>())
        .fold(0.0_f64, f64::max)
}

/// Induced ∞-norm (maximum absolute row sum).
pub fn norm_inf(a: &Matrix) -> f64 {
    a.iter_rows()
        .map(|row| row.iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0_f64, f64::max)
}

/// Root-mean-square entry-wise difference; the "average per-cell error"
/// the privacy metric normalizes.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn rms_difference(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "rms_difference: shape mismatch");
    let n = (a.rows() * a.cols()) as f64;
    (a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / n)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_distance_basic() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        assert!((frobenius_distance(&a, &b) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(frobenius_distance(&b, &b), 0.0);
    }

    #[test]
    fn induced_norms_known() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        assert_eq!(norm_1(&a), 6.0); // col sums: 4, 6
        assert_eq!(norm_inf(&a), 7.0); // row sums: 3, 7
    }

    #[test]
    fn rms_difference_scale() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::filled(2, 2, 2.0);
        assert!((rms_difference(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = frobenius_distance(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
