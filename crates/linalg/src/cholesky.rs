//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the synthetic dataset generators to impose a target covariance on
//! Gaussian class clusters (`x = μ + L·z` with `Σ = L·Lᵀ`).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input.
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consumes the factorization and returns `L`.
    pub fn into_l(self) -> Matrix {
        self.l
    }

    /// Applies `L` to a vector: `L·z`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for a wrong-length input.
    pub fn apply(&self, z: &[f64]) -> Result<Vec<f64>> {
        self.l.matvec(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::randn_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_spd_matrix() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in [1, 3, 6] {
            let g = randn_matrix(n, n + 2, &mut rng);
            let a = &g * &g.transpose(); // SPD with probability 1
            let chol = Cholesky::new(&a).unwrap();
            let back = chol.l() * &chol.l().transpose();
            assert!(back.approx_eq(&a, 1e-8), "Cholesky failed n={n}");
        }
    }

    #[test]
    fn l_is_lower_triangular() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let chol = Cholesky::new(&a).unwrap();
        assert_eq!(chol.l()[(0, 1)], 0.0);
        assert!((chol.l()[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn apply_matches_matvec() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let chol = Cholesky::new(&a).unwrap();
        let z = vec![1.0, -1.0];
        assert_eq!(chol.apply(&z).unwrap(), chol.l().matvec(&z).unwrap());
        assert!(chol.apply(&[1.0]).is_err());
    }

    #[test]
    fn identity_factor_is_identity() {
        let chol = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(chol.l().approx_eq(&Matrix::identity(4), 1e-12));
    }
}
