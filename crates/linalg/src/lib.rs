//! Dense linear algebra substrate for the SAP (Space Adaptation Protocol)
//! reproduction.
//!
//! The PODC'07 paper perturbs datasets with random orthogonal rotations,
//! inverts those rotations to build *space adaptors*, and evaluates attacks
//! that rely on PCA/ICA-style spectral analysis. This crate provides exactly
//! the dense, `f64` linear algebra those tasks need, implemented from scratch
//! so the reproduction has no dependency on `nalgebra`/`ndarray`:
//!
//! * [`Matrix`] — a row-major dense matrix with the usual arithmetic.
//! * [`qr::QrDecomposition`] — Householder QR, used to sample random
//!   orthogonal matrices.
//! * [`lu::LuDecomposition`] — LU with partial pivoting: `solve`, `inverse`,
//!   `det`.
//! * [`eigen::SymmetricEigen`] — cyclic Jacobi eigendecomposition of
//!   symmetric matrices (PCA, whitening).
//! * [`svd::Svd`] — one-sided Jacobi singular value decomposition.
//! * [`cholesky::Cholesky`] — for covariance factorization.
//! * [`orthogonal`] — uniform (Haar) random orthogonal and rotation matrices.
//! * [`randn`] — Box–Muller standard-normal sampling (the `rand` crate alone
//!   does not provide Gaussians).
//! * [`kernel`] — packed, register-blocked matmul / Gram / covariance
//!   microkernels, each pinned bit-identical to a reference loop.
//! * [`parallel`] — the fixed thread-splitter behind the row-parallel
//!   kernels (blocked matmul, block perturbation, distance sweeps).
//! * [`view`] — borrowed [`MatrixView`] windows, the zero-copy currency of
//!   the streaming data plane's block stages.
//!
//! # Conventions
//!
//! Matrices are row-major. Following the paper, a dataset is a `d × N` matrix
//! whose *columns* are records; helpers on [`Matrix`] (e.g.
//! [`Matrix::column`], [`Matrix::from_columns`]) make that convention cheap
//! to work with.
//!
//! # Example
//!
//! ```
//! use sap_linalg::{Matrix, orthogonal};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let r = orthogonal::random_orthogonal(4, &mut rng);
//! let identity = &r * &r.transpose();
//! assert!(identity.approx_eq(&Matrix::identity(4), 1e-9));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod kernel;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod orthogonal;
pub mod parallel;
pub mod qr;
pub mod rng;
pub mod svd;
pub mod vecops;
pub mod view;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use rng::{randn, randn_matrix, randn_vec};
pub use view::MatrixView;
