//! Haar-distributed random orthogonal and rotation matrices.
//!
//! The geometric perturbation `G(X) = R·X + Ψ + Δ` draws `R` uniformly from
//! the orthogonal group `O(d)`. The standard construction is the QR
//! decomposition of a matrix of i.i.d. standard normals, with the sign of
//! each column of `Q` fixed by the sign of the corresponding diagonal entry
//! of `R` — without that correction the distribution is not Haar
//! (Mezzadri, *How to generate random matrices from the classical compact
//! groups*, 2007).

use crate::error::{LinalgError, Result};
use crate::lu;
use crate::matrix::Matrix;
use crate::qr::QrDecomposition;
use crate::rng::randn_matrix;
use rand::Rng;

/// Samples a Haar-distributed random orthogonal matrix from `O(d)`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn random_orthogonal<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Matrix {
    try_random_orthogonal(d, rng).expect("d must be positive")
}

/// Fallible form of [`random_orthogonal`].
///
/// # Errors
///
/// Returns [`LinalgError::InvalidDimension`] when `d == 0`.
pub fn try_random_orthogonal<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Result<Matrix> {
    if d == 0 {
        return Err(LinalgError::InvalidDimension {
            reason: "orthogonal matrix dimension must be positive",
        });
    }
    let g = randn_matrix(d, d, rng);
    let (mut q, r) = QrDecomposition::new(&g)?.into_parts();
    // Sign correction: make the factorization unique (R with positive
    // diagonal) so Q is Haar distributed.
    for c in 0..d {
        if r[(c, c)] < 0.0 {
            for row in 0..d {
                q[(row, c)] = -q[(row, c)];
            }
        }
    }
    Ok(q)
}

/// Samples a Haar-distributed random **rotation** (determinant `+1`,
/// i.e. from `SO(d)`).
///
/// A determinant-`−1` draw from `O(d)` is fixed up by negating one column,
/// which maps Haar measure on the reflection coset onto `SO(d)`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn random_rotation<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Matrix {
    let mut q = random_orthogonal(d, rng);
    let det = lu::det(&q).expect("square by construction");
    if det < 0.0 {
        for row in 0..d {
            q[(row, 0)] = -q[(row, 0)];
        }
    }
    q
}

/// Builds the Givens rotation of angle `theta` in the `(i, j)` coordinate
/// plane of dimension `d`.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of range.
pub fn givens_rotation(d: usize, i: usize, j: usize, theta: f64) -> Matrix {
    assert!(
        i < d && j < d && i != j,
        "invalid Givens plane ({i},{j}) in dim {d}"
    );
    let mut m = Matrix::identity(d);
    let (c, s) = (theta.cos(), theta.sin());
    m[(i, i)] = c;
    m[(j, j)] = c;
    m[(i, j)] = -s;
    m[(j, i)] = s;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(100);
        for d in [1, 2, 3, 5, 10, 20] {
            let q = random_orthogonal(d, &mut rng);
            assert!(q.is_orthogonal(1e-9), "not orthogonal at d={d}");
        }
    }

    #[test]
    fn random_rotation_has_unit_determinant() {
        let mut rng = StdRng::seed_from_u64(101);
        for d in [2, 3, 4, 7] {
            for _ in 0..5 {
                let r = random_rotation(d, &mut rng);
                let det = lu::det(&r).unwrap();
                assert!((det - 1.0).abs() < 1e-8, "det {det} != 1 at d={d}");
                assert!(r.is_orthogonal(1e-9));
            }
        }
    }

    #[test]
    fn rotations_preserve_norms() {
        let mut rng = StdRng::seed_from_u64(102);
        let r = random_rotation(6, &mut rng);
        let x = crate::rng::randn_vec(6, &mut rng);
        let rx = r.matvec(&x).unwrap();
        let nx = crate::vecops::norm2(&x);
        let nrx = crate::vecops::norm2(&rx);
        assert!((nx - nrx).abs() < 1e-10);
    }

    #[test]
    fn haar_first_entry_distribution() {
        // For Haar-distributed Q in O(d), E[q00] = 0 and E[q00^2] = 1/d.
        let mut rng = StdRng::seed_from_u64(103);
        let d = 4;
        let n = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let q = random_orthogonal(d, &mut rng);
            sum += q[(0, 0)];
            sum_sq += q[(0, 0)] * q[(0, 0)];
        }
        let mean = sum / n as f64;
        let mean_sq = sum_sq / n as f64;
        assert!(mean.abs() < 0.03, "E[q00] = {mean}, expected ~0");
        assert!(
            (mean_sq - 1.0 / d as f64).abs() < 0.02,
            "E[q00^2] = {mean_sq}, expected {}",
            1.0 / d as f64
        );
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut rng = StdRng::seed_from_u64(104);
        assert!(try_random_orthogonal(0, &mut rng).is_err());
    }

    #[test]
    fn givens_is_rotation() {
        let g = givens_rotation(4, 1, 3, 0.83);
        assert!(g.is_orthogonal(1e-12));
        assert!((lu::det(&g).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "invalid Givens plane")]
    fn givens_rejects_equal_indices() {
        let _ = givens_rotation(3, 1, 1, 0.5);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(random_orthogonal(5, &mut a), random_orthogonal(5, &mut b));
    }
}
