//! Row-major dense `f64` matrix.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the reproduction: datasets (`d × N`, one
/// record per column, following the paper), rotation matrices, translation
/// matrices and noise matrices are all `Matrix` values.
///
/// Arithmetic operators are implemented on references (`&a * &b`) so large
/// matrices are never cloned implicitly; the operators panic on shape
/// mismatch, while the method forms ([`Matrix::matmul`], [`Matrix::try_add`],
/// …) return [`LinalgError`] instead.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "Matrix::from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose columns are the given slices.
    ///
    /// This is the natural constructor for the paper's `d × N` dataset
    /// convention, where each record is one column.
    ///
    /// # Panics
    ///
    /// Panics if the columns have inconsistent lengths or `cols` is empty.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        assert!(!cols.is_empty(), "from_columns: need at least one column");
        let rows = cols[0].len();
        let mut m = Matrix::zeros(rows, cols.len());
        for (c, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), rows, "from_columns: ragged columns");
            for (r, &v) in col.iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Creates a column vector (an `n × 1` matrix) from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns entry `(r, c)`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index {c} out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Overwrites column `c` with the values in `v`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds or `v.len() != self.rows()`.
    pub fn set_column(&mut self, c: usize, v: &[f64]) {
        assert!(c < self.cols, "column index {c} out of bounds");
        assert_eq!(v.len(), self.rows, "set_column: length mismatch");
        for (r, &x) in v.iter().enumerate() {
            self[(r, c)] = x;
        }
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Large products pack the right factor into register-friendly panels
    /// and run the 4×4 register-blocked microkernel
    /// ([`crate::kernel::matmul_packed_rows`]), row-parallel on the
    /// [`crate::parallel`] splitter. Every output element is still
    /// accumulated over `k` in ascending order (zero left-factors
    /// skipped), so the result is **bit-identical** to the pinned
    /// reference loop [`crate::kernel::matmul_rows`] — and to the
    /// straightforward serial triple loop — at any tile size or thread
    /// count. That invariant is what the streaming/buffered data-plane
    /// equivalence rests on, and `tests/kernel_equivalence.rs`
    /// property-tests it over shapes × worker counts.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with_workers(rhs, crate::parallel::threads())
    }

    /// [`Matrix::matmul`] with an explicit worker count instead of the
    /// process-global [`crate::parallel::threads`] setting.
    ///
    /// Results are bit-identical for every worker count; this exists so
    /// equivalence tests can sweep worker counts within one process
    /// (`SAP_LINALG_THREADS` latches once).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul_with_workers(&self, rhs: &Matrix, workers: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.cols == 0 {
            return Ok(out);
        }
        let flops = self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols);
        let packed = if crate::kernel::packing_pays(self.rows, self.cols, rhs.cols) {
            Some(crate::kernel::pack_b(rhs))
        } else {
            None
        };
        let run = |row0: usize, out_chunk: &mut [f64]| match &packed {
            Some(p) => crate::kernel::matmul_packed_rows(self, p, row0, out_chunk),
            None => crate::kernel::matmul_rows(self, rhs, row0, out_chunk),
        };
        if crate::parallel::worth_splitting_with(workers, flops) && self.rows > 1 {
            let rows_per = self.rows.div_ceil(workers.max(1));
            crate::parallel::for_each_chunk_mut_with(
                workers,
                &mut out.data,
                rows_per * rhs.cols,
                |chunk_idx, out_chunk| run(chunk_idx * rows_per, out_chunk),
            );
        } else {
            run(0, &mut out.data);
        }
        Ok(out)
    }

    /// Matrix product with the transposed right factor, `self * rhsᵀ`,
    /// without materializing the transpose.
    ///
    /// Output element `(i, j)` is the dot product of `self` row `i` and
    /// `rhs` row `j` — both contiguous in row-major storage, which is why
    /// Gram-style products (ICA decorrelation/convergence overlaps, the
    /// SVD polar step) route here. Runs the 4×4 register-blocked kernel
    /// ([`crate::kernel::mul_transpose_rows`]), row-parallel when large;
    /// the `k` walk per output element is ascending with the zero skip on
    /// the left factor, so the result is **bit-identical** to
    /// `self.matmul(&rhs.transpose())`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the column counts
    /// disagree.
    pub fn mul_transpose(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        if self.rows == 0 || rhs.rows == 0 {
            return Ok(out);
        }
        let flops = self.rows.saturating_mul(self.cols).saturating_mul(rhs.rows);
        let workers = crate::parallel::threads();
        if crate::parallel::worth_splitting_with(workers, flops) && self.rows > 1 {
            let rows_per = self.rows.div_ceil(workers);
            crate::parallel::for_each_chunk_mut_with(
                workers,
                &mut out.data,
                rows_per * rhs.rows,
                |chunk_idx, out_chunk| {
                    crate::kernel::mul_transpose_rows(self, rhs, chunk_idx * rows_per, out_chunk);
                },
            );
        } else {
            crate::kernel::mul_transpose_rows(self, rhs, 0, &mut out.data);
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum. Method form of `&a + &b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference. Method form of `&a - &b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm, `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// `true` when every entry of `self` is within `tol` of `other`.
    ///
    /// Shape mismatch returns `false` rather than panicking, so this is safe
    /// to use in assertions over generated inputs.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` when `self * selfᵀ` is within `tol` of the identity.
    pub fn is_orthogonal(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.mul_transpose(self).expect("square matmul");
        prod.approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Extracts the sub-matrix of `row_range` × `col_range`.
    ///
    /// # Panics
    ///
    /// Panics if a range end exceeds the matrix bounds.
    pub fn submatrix(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> Matrix {
        assert!(row_range.end <= self.rows && col_range.end <= self.cols);
        Matrix::from_fn(row_range.len(), col_range.len(), |r, c| {
            self[(row_range.start + r, col_range.start + c)]
        })
    }

    /// Horizontally concatenates `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hconcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Per-row means (length `rows`). For a `d × N` dataset this is the mean
    /// record (centroid).
    pub fn row_means(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|row| row.iter().sum::<f64>() / self.cols as f64)
            .collect()
    }

    /// Covariance of the columns of a `d × N` matrix: the `d × d` matrix
    /// `(1/(N-1)) Σ (xⱼ - μ)(xⱼ - μ)ᵀ`.
    ///
    /// Runs the tiled register-blocked kernel
    /// ([`crate::kernel::column_covariance_packed`]), which is
    /// **bit-identical** to the record-outer reference loop
    /// ([`crate::kernel::column_covariance_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than two columns.
    pub fn column_covariance(&self) -> Matrix {
        crate::kernel::column_covariance_packed(self)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().enumerate().take(max_rows) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("matrix add: shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs).expect("matrix sub: shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix mul: shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (5, 3));
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = &a * &b;
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r + 2 * c) as f64);
        assert_eq!(&a * &Matrix::identity(4), a);
        assert_eq!(&Matrix::identity(4) * &a, a);
    }

    #[test]
    fn matmul_shape_mismatch_errs() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let v = vec![1.0, -1.0, 2.0];
        let got = a.matvec(&v).unwrap();
        let via = &a * &Matrix::column_vector(&v);
        assert_eq!(got, via.column(0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(0.5, 0.5, 0.5, 0.5);
        let c = &(&a + &b) - &b;
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn hadamard_and_map() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let sq = a.hadamard(&a).unwrap();
        assert_eq!(sq, a.map(|x| x * x));
    }

    #[test]
    fn scale_and_neg() {
        let a = m22(1.0, -2.0, 3.0, -4.0);
        assert_eq!(&a * 2.0, m22(2.0, -4.0, 6.0, -8.0));
        assert_eq!(-&a, a.scale(-1.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m22(3.0, 0.0, 4.0, 0.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rows_and_columns_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.column(2), vec![3.0, 6.0]);
        let mut b = a.clone();
        b.set_column(0, &[9.0, 10.0]);
        assert_eq!(b.column(0), vec![9.0, 10.0]);
    }

    #[test]
    fn get_bounds() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(1, 1), Some(1.0));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(0, 2), None);
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = a.submatrix(1..3, 2..4);
        assert_eq!(s, Matrix::from_rows(&[vec![6.0, 7.0], vec![10.0, 11.0]]));
    }

    #[test]
    fn hconcat_widths_add() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        assert_eq!(c[(0, 2)], 1.0);
        assert!(a.hconcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn row_means_centroid() {
        // two records (columns): (1,3) and (3,5) -> centroid (2,4)
        let x = Matrix::from_columns(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(x.row_means(), vec![2.0, 4.0]);
    }

    #[test]
    fn column_covariance_of_isotropic_pairs() {
        // records (±1, 0) and (0, ±1): covariance diag(2/3, 2/3) for N=4.
        let x = Matrix::from_columns(&[
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ]);
        let cov = x.column_covariance();
        assert!((cov[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 2.0 / 3.0).abs() < 1e-12);
        assert!(cov[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let mut b = a.clone();
        b[(0, 0)] += 1e-6;
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-7));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn is_orthogonal_detects_rotation() {
        let theta = 0.7_f64;
        let r = m22(theta.cos(), -theta.sin(), theta.sin(), theta.cos());
        assert!(r.is_orthogonal(1e-12));
        assert!(!m22(1.0, 1.0, 0.0, 1.0).is_orthogonal(1e-6));
    }

    #[test]
    fn assign_ops() {
        let mut a = m22(1.0, 2.0, 3.0, 4.0);
        a += &Matrix::identity(2);
        assert_eq!(a, m22(2.0, 2.0, 3.0, 5.0));
        a -= &Matrix::identity(2);
        a *= 2.0;
        assert_eq!(a, m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn serde_roundtrip() {
        let a = Matrix::from_fn(3, 2, |r, c| r as f64 - c as f64);
        let json = serde_json_like(&a);
        assert!(json.contains("rows"));
    }

    // serde_json is not an approved dependency; just check Serialize is
    // derivable by going through the serde data model with a tiny writer.
    fn serde_json_like(m: &Matrix) -> String {
        format!(
            "rows={} cols={} len={}",
            m.rows(),
            m.cols(),
            m.as_slice().len()
        )
    }

    /// The blocked/parallel matmul must be bit-identical to the naive
    /// i-k-j triple loop it replaced — the streaming/buffered data-plane
    /// equivalence depends on it.
    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        // Wide enough to cross the parallel threshold and several column
        // blocks; includes exact zeros to exercise the skip path.
        let a = Matrix::from_fn(12, 12, |r, c| if (r + c) % 5 == 0 { 0.0 } else { next() });
        let b = Matrix::from_fn(12, 2000, |_, _| next());
        let fast = a.matmul(&b).unwrap();
        let mut naive = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let x = a[(i, k)];
                if x == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    naive[(i, j)] += x * b[(k, j)];
                }
            }
        }
        assert_eq!(fast.as_slice(), naive.as_slice(), "must match bitwise");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::identity(2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn debug_format_truncates() {
        let a = Matrix::zeros(20, 2);
        let s = format!("{a:?}");
        assert!(s.contains("more rows"));
    }
}
