//! A concurrent SAP service: many sessions, one shared runtime.
//!
//! The PODC'07 protocol was reproduced as "one process runs one session".
//! This crate turns the stack into a *service layer* (in the spirit of
//! the `pod` service-layer framing in PAPERS.md): a [`SapServer`] owns
//!
//! * a **physical mesh** of party-lane endpoints (in-memory hub or real
//!   TCP sockets), one per provider position plus one for the miner, each
//!   wrapped in a [`SessionMux`] so every lane carries *all* sessions'
//!   frames, demultiplexed by the authenticated session stamp of wire
//!   format v3;
//! * a **fixed [`ActorPool`]** on which every session's roles run as a
//!   gang — `N` concurrent sessions share the pool's workers instead of
//!   spawning `N × (k + 1)` dedicated threads;
//! * a **session registry** with create / lookup / reap: finished
//!   sessions are garbage-collected after [`ServerConfig::reap_after`],
//!   and sessions running past [`ServerConfig::max_session_age`] are
//!   aborted by the same sweep (timeout-based GC);
//! * **admission control**: beyond
//!   `max_concurrent + max_queued` live sessions, [`SapServer::submit`]
//!   sheds with [`ServerError::Overloaded`] instead of queueing unboundedly;
//! * **QoS scheduling**: sessions carry a
//!   [`sap_core::runtime::QosClass`] on their [`SapConfig`]; the pool
//!   admits interactive gangs with strict priority over batch ones
//!   (batch gangs age into the interactive queue instead of starving),
//!   sheds queued sessions whose `session_budget` provably cannot be met
//!   ([`SapError::AdmissionShed`]), and work-steals role tasks across
//!   its workers;
//! * a **metrics surface** ([`ServerMetrics`]): sessions
//!   started/completed/failed/aborted/rejected/shed, per-class
//!   queue-wait and service-time histograms with p50/p99/p999
//!   ([`SessionLatency`]), scheduler promotion/steal counters, relayed
//!   row blocks, and the lane muxes' frame/byte counters (bytes sent are
//!   sealed bytes — every payload on the wire is a sealed frame).
//!
//! Sessions submitted with the same [`SapConfig`] produce outcomes
//! byte-identical to a solo [`sap_core::run_session`] run: the runtime
//! multiplexes transport and threads, never the protocol's randomness.
//!
//! # Embedding the server
//!
//! An application embeds a [`SapServer`] directly — submit sessions
//! (non-blocking), wait for outcomes, read metrics:
//!
//! ```
//! use sap_core::session::SapConfig;
//! use sap_datasets::partition::{partition, PartitionScheme};
//! use sap_datasets::registry::UciDataset;
//! use sap_server::{SapServer, ServerConfig};
//!
//! // An in-process mesh (swap for `SapServer::local_tcp` to serve over
//! // real sockets — nothing else changes).
//! let server = SapServer::in_memory(ServerConfig::default()).unwrap();
//!
//! // Three providers hold horizontal slices of one dataset.
//! let pooled = UciDataset::Iris.generate(42);
//! let locals = partition(&pooled, 3, PartitionScheme::Uniform, 7);
//!
//! let id = server.submit(locals, &SapConfig::quick_test()).unwrap();
//! let outcome = server.wait(id, None).unwrap();
//! assert_eq!(outcome.unified.len(), pooled.len());
//!
//! let metrics = server.metrics();
//! assert_eq!(metrics.sessions_completed, 1);
//! assert!(metrics.blocks_relayed > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod hist;

pub use hist::{ClassLatency, LatencyHistogram, SessionLatency};

use sap_core::placement::IdMinter;
use sap_core::runtime::{
    ActorPool, QosClass, SchedulerConfig, SessionHandle, SessionStatus, SessionTimings,
};
use sap_core::session::{spawn_session, SapConfig, SapOutcome, MINER_ID};
use sap_core::SapError;
use sap_datasets::Dataset;
use sap_net::mux::{MuxEndpoint, SessionMux};
use sap_net::sim::FaultyTransport;
use sap_net::tcp::{local_mesh, TcpLane};
use sap_net::transport::Endpoint;
use sap_net::{InMemoryHub, PartyId, SessionId, Transport, TransportError, WireCodec};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Server-level failures.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control shed the submission: too many live sessions.
    Overloaded {
        /// Live (running or queued) sessions at rejection time.
        live: usize,
        /// The configured ceiling (`max_concurrent + max_queued`).
        limit: usize,
    },
    /// The session wants more providers than the server has lanes.
    TooManyParties {
        /// Providers requested.
        requested: usize,
        /// Provider lanes available.
        max: usize,
    },
    /// No session with that id exists (never created, or reaped).
    UnknownSession(SessionId),
    /// The session itself failed (or its submission was invalid).
    Session(SapError),
    /// Building the physical mesh failed (socket errors).
    Mesh(std::io::Error),
    /// A lane refused the session (duplicate id — a server bug).
    Transport(TransportError),
    /// [`SapServer::submit_placed`] was given an id that is already
    /// registered (or reserved): the fleet's placement minted a
    /// duplicate, or two nodes disagree about ownership.
    DuplicateSession(SessionId),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { live, limit } => {
                write!(f, "server overloaded: {live} live sessions (limit {limit})")
            }
            ServerError::TooManyParties { requested, max } => {
                write!(f, "{requested} providers requested, server has {max} lanes")
            }
            ServerError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServerError::Session(e) => write!(f, "session failed: {e}"),
            ServerError::Mesh(e) => write!(f, "mesh setup failed: {e}"),
            ServerError::Transport(e) => write!(f, "lane error: {e}"),
            ServerError::DuplicateSession(id) => {
                write!(f, "{id} is already registered (or reserved)")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SapError> for ServerError {
    fn from(e: SapError) -> Self {
        ServerError::Session(e)
    }
}

impl From<TransportError> for ServerError {
    fn from(e: TransportError) -> Self {
        ServerError::Transport(e)
    }
}

/// What a server does when a session dies of a **peer failure** (a party
/// process detected dead mid-session, [`SapError::PeerFailure`]): how
/// many times [`SapServer::wait`] transparently re-runs the session with
/// its stored inputs before surfacing the failure. Retries consume fresh
/// wire session ids; the client-facing id never changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Automatic re-runs per session (0 — the default — disables retry
    /// and the per-session input retention it requires).
    pub max_retries: u32,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Provider lanes — the largest `k` a session may use.
    pub max_parties: usize,
    /// Sessions serviced concurrently before new ones queue.
    pub max_concurrent: usize,
    /// Sessions allowed to queue beyond `max_concurrent`; past that,
    /// submissions shed with [`ServerError::Overloaded`].
    pub max_queued: usize,
    /// Worker threads of the shared [`ActorPool`]. `0` sizes the pool to
    /// service `max_concurrent` sessions of `max_parties` providers:
    /// `(max_parties + 1) × max_concurrent`.
    pub worker_threads: usize,
    /// Per-session inbound queue bound on every lane mux (frames).
    pub session_queue_depth: usize,
    /// How long a finished session's registry entry survives before
    /// [`SapServer::reap`] removes it.
    pub reap_after: Duration,
    /// Running sessions older than this are aborted (and then reaped) by
    /// the GC sweep. With the liveness layer this is a last-resort
    /// backstop: peer deaths surface as typed
    /// [`SapError::PeerFailure`]s within the heartbeat budget, and the
    /// per-session [`sap_core::session::SapConfig::session_budget`]
    /// unwinds overlong sessions cooperatively long before this sweeps.
    pub max_session_age: Duration,
    /// Heartbeat interval of the lane liveness plane
    /// ([`sap_net::mux::SessionMux::start_liveness`]); `Duration::ZERO`
    /// disables lane heartbeats (peer deaths are then detected only when
    /// the transport reports them, e.g. a socket close).
    pub heartbeat_interval: Duration,
    /// Missed-interval budget before a silent lane peer is declared dead;
    /// detection latency is at most `heartbeat_interval × liveness_misses`
    /// plus one pump poll tick.
    pub liveness_misses: u32,
    /// Recovery policy for sessions killed by a peer failure.
    pub retry_policy: RetryPolicy,
    /// The shared pool's admission scheduler: QoS class queues with batch
    /// aging and deadline-aware shedding by default;
    /// [`sap_core::runtime::SchedPolicy::Fifo`] restores the pre-QoS
    /// arrival-order admission (the `load_qos` bench baseline).
    pub scheduler: SchedulerConfig,
    /// First session id this server mints
    /// ([`sap_core::placement::IdMinter`] base). Fleet node `j` uses
    /// `j + 1` so every node mints from a disjoint residue class.
    pub session_id_base: u64,
    /// Id increment between mints ([`sap_core::placement::IdMinter`]
    /// stride) — the fleet's node count; `1` for a standalone server
    /// (the pre-fleet sequence 1, 2, 3, …).
    pub session_id_stride: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_parties: 8,
            max_concurrent: 8,
            max_queued: 16,
            worker_threads: 0,
            session_queue_depth: sap_net::mux::DEFAULT_SESSION_QUEUE,
            reap_after: Duration::from_secs(60),
            max_session_age: Duration::from_secs(300),
            heartbeat_interval: sap_net::mux::DEFAULT_HEARTBEAT_INTERVAL,
            liveness_misses: sap_net::mux::DEFAULT_LIVENESS_MISSES,
            retry_policy: RetryPolicy::default(),
            scheduler: SchedulerConfig::default(),
            session_id_base: 1,
            session_id_stride: 1,
        }
    }
}

impl ServerConfig {
    fn pool_size(&self) -> usize {
        if self.worker_threads > 0 {
            self.worker_threads
        } else {
            (self.max_parties + 1) * self.max_concurrent.max(1)
        }
    }
}

/// Aggregated server counters. Sessions are accounted when their end is
/// first observed (by [`SapServer::wait`] or the reap sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerMetrics {
    /// Sessions admitted.
    pub sessions_started: u64,
    /// Sessions that completed with an outcome.
    pub sessions_completed: u64,
    /// Sessions that ended in a protocol/transport error.
    pub sessions_failed: u64,
    /// Sessions aborted (explicitly or by the age-based GC).
    pub sessions_aborted: u64,
    /// Submissions shed by admission control.
    pub sessions_rejected: u64,
    /// Currently registered, unfinished sessions.
    pub live_sessions: usize,
    /// Row blocks relayed through the anonymizing hop, summed over
    /// completed sessions.
    pub blocks_relayed: u64,
    /// Row blocks the relay hops forwarded **while their inbound stream
    /// was still arriving** (the streaming data plane's pipelining),
    /// summed over completed sessions.
    pub blocks_pipelined: u64,
    /// Mean compute/I-O overlap ratio across completed sessions: the
    /// share of data-plane compute (unseal-side decode + adaptation)
    /// hidden under stream transfer time. Zero for buffered sessions.
    pub overlap_ratio_avg: f64,
    /// Optimizer wall time summed over every provider of every completed
    /// session (seconds) — the staged engine's per-run total.
    pub optimizer_wall_s: f64,
    /// Optimizer candidates scored by the cheap stage, summed over
    /// completed sessions.
    pub optimizer_candidates_evaluated: u64,
    /// Optimizer candidates pruned before the expensive PCA/ICA stage,
    /// summed over completed sessions.
    pub optimizer_candidates_pruned: u64,
    /// Bytes sent through the lane muxes — all of them sealed envelope
    /// bytes (wire format v3).
    pub bytes_sealed: u64,
    /// Sealed frames routed to sessions by the lane muxes.
    pub frames_routed: u64,
    /// Frames dropped because they carried an unknown session id.
    pub unknown_session_dropped: u64,
    /// Frames shed because a session's bounded queue stayed full.
    pub shed_frames: u64,
    /// Lane peers declared dead by the liveness plane (socket close, hub
    /// kill, or missed heartbeats), summed over every lane mux.
    pub peer_failures_detected: u64,
    /// Mean detection latency over those events, in seconds: how long a
    /// peer had been silent when it was declared dead (≈ 0 for
    /// transport-notified deaths, ≈ the heartbeat budget for
    /// heartbeat-detected ones).
    pub peer_detection_latency_avg_s: f64,
    /// Sessions transparently re-run after a peer failure under
    /// [`ServerConfig::retry_policy`].
    pub sessions_retried: u64,
    /// Sessions shed by deadline-aware admission while queued — their
    /// budget provably could not be met, so no role ever ran
    /// ([`SapError::AdmissionShed`]).
    pub sessions_shed: u64,
    /// Batch gangs promoted to the interactive queue by aging (the
    /// pool's anti-starvation counter).
    pub gangs_promoted: u64,
    /// Role tasks a pool worker stole from a sibling's run queue.
    pub task_steals: u64,
    /// Role tasks of sessions still queued for gang admission.
    pub pool_queued_tasks: usize,
    /// Role tasks admitted to the pool and not yet finished.
    pub pool_running_tasks: usize,
    /// Per-class queue-wait and service-time histograms with
    /// p50/p99/p999 extraction ([`SessionLatency`]). Samples are recorded
    /// when a session's end is accounted.
    pub latency_histogram: SessionLatency,
}

struct RetryState {
    locals: Vec<Dataset>,
    config: SapConfig,
    remaining: u32,
}

/// One session's stored registration, exported by
/// [`SapServer::export_registrations`]: everything another node needs to
/// re-run the session under its original client-facing id.
#[derive(Debug)]
pub struct Registration {
    /// The client-facing session id (stable across the handoff).
    pub id: SessionId,
    /// The providers' datasets as submitted.
    pub locals: Vec<Dataset>,
    /// The session's protocol configuration.
    pub config: SapConfig,
}

struct SessionEntry {
    handle: SessionHandle,
    /// Scheduling class the session was submitted under — keyed here so
    /// accounting can route its timings to the right histograms even
    /// after retries swap the handle.
    class: QosClass,
    submitted: Instant,
    finished_at: Option<Instant>,
    accounted: bool,
    /// The owner called [`SapServer::abort`] (or the age GC did): the
    /// verdict outlives the current handle, so a peer-failure retry
    /// racing the abort cannot resurrect the session under a fresh
    /// handle the abort never saw.
    aborted: bool,
    /// Stored inputs for peer-failure retries (`None` when the policy is
    /// off — the server then never retains client datasets past spawn).
    retry: Option<RetryState>,
}

#[derive(Default)]
struct Counters {
    started: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    aborted: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    shed: AtomicU64,
    blocks_relayed: AtomicU64,
    blocks_pipelined: AtomicU64,
    /// Sum of per-session overlap ratios in micro-units (ratio × 1e6),
    /// over `overlap_sessions` — keeps the aggregate lock-free.
    overlap_micros_sum: AtomicU64,
    overlap_sessions: AtomicU64,
    /// Optimizer wall time in microseconds (lock-free f64 aggregation).
    optimizer_wall_micros: AtomicU64,
    optimizer_candidates: AtomicU64,
    optimizer_pruned: AtomicU64,
}

/// A multi-session SAP service over a shared physical mesh.
///
/// Generic over the physical transport: [`SapServer::in_memory`] builds a
/// hub-backed server (tests, embedding), [`SapServer::local_tcp`] a
/// localhost-TCP one (the deployment shape). All sessions of one server
/// share its lanes, its pool, and its metrics.
pub struct SapServer<T: Transport + 'static> {
    config: ServerConfig,
    pool: ActorPool,
    /// `lanes[i]` carries provider position `i` of every session.
    lanes: Vec<SessionMux<T>>,
    miner_lane: SessionMux<T>,
    registry: Mutex<HashMap<SessionId, SessionEntry>>,
    ids: IdMinter,
    counters: Counters,
    /// Per-class latency histograms (lock order: registry → latency).
    latency: Mutex<SessionLatency>,
}

impl SapServer<Endpoint> {
    /// Builds a server whose mesh is an in-process [`InMemoryHub`].
    pub fn in_memory(config: ServerConfig) -> Result<Self, ServerError> {
        let hub = InMemoryHub::new();
        let mut lanes = Vec::with_capacity(config.max_parties);
        for pos in 0..config.max_parties {
            lanes.push(hub.try_endpoint(PartyId(pos as u64))?);
        }
        let miner = hub.try_endpoint(MINER_ID)?;
        Ok(Self::over_lanes(config, lanes, miner))
    }
}

impl SapServer<TcpLane> {
    /// Builds a server whose mesh is real localhost TCP sockets — one
    /// listener per lane, fully meshed.
    ///
    /// # Errors
    ///
    /// Propagates socket errors as [`ServerError::Mesh`].
    pub fn local_tcp(config: ServerConfig) -> Result<Self, ServerError> {
        let mut ids: Vec<PartyId> = (0..config.max_parties as u64).map(PartyId).collect();
        ids.push(MINER_ID);
        let mut mesh = local_mesh(&ids).map_err(ServerError::Mesh)?;
        let miner = mesh.pop().expect("miner lane");
        Ok(Self::over_lanes(config, mesh, miner))
    }
}

impl<T: Transport + 'static> SapServer<T> {
    /// Builds a server over caller-supplied lane endpoints. `lanes[i]`
    /// must have [`Transport::local_id`] `PartyId(i)`; `miner` must be
    /// reachable from every lane (full mesh).
    pub fn over_lanes(config: ServerConfig, lanes: Vec<T>, miner: T) -> Self {
        let depth = config.session_queue_depth;
        let pool = ActorPool::with_config(config.pool_size(), config.scheduler);
        let lanes: Vec<SessionMux<T>> = lanes
            .into_iter()
            .map(|t| SessionMux::with_queue_depth(t, depth))
            .collect();
        let miner_lane = SessionMux::with_queue_depth(miner, depth);
        // The lane liveness plane: every lane heartbeats every other lane
        // and watches for silence, so a dead party process is detected in
        // O(heartbeat budget) and every session that involved it fails
        // with a typed PeerFailure instead of hanging until the age GC.
        if !config.heartbeat_interval.is_zero() {
            let roster: Vec<PartyId> = lanes
                .iter()
                .map(SessionMux::local_id)
                .chain(std::iter::once(miner_lane.local_id()))
                .collect();
            // Startup grace at least the TCP connect window: lanes of a
            // real mesh may bind in any order, and a late binder must
            // not be declared dead before it had a chance to come up.
            // Transport-reported deaths (socket close, hub kill) bypass
            // the grace and are declared immediately.
            let grace = (config.heartbeat_interval * config.liveness_misses.max(1))
                .max(sap_net::tcp::DEFAULT_CONNECT_WINDOW);
            for lane in lanes.iter().chain(std::iter::once(&miner_lane)) {
                lane.start_liveness_with_grace(
                    roster.clone(),
                    config.heartbeat_interval,
                    config.liveness_misses,
                    grace,
                );
            }
        }
        SapServer {
            pool,
            lanes,
            miner_lane,
            registry: Mutex::new(HashMap::new()),
            ids: IdMinter::new(config.session_id_base, config.session_id_stride),
            counters: Counters::default(),
            latency: Mutex::new(SessionLatency::default()),
            config,
        }
    }

    /// The shared pool's worker count.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    fn live_sessions(&self) -> usize {
        let registry = self.registry.lock().expect("registry lock");
        registry
            .values()
            .filter(|e| matches!(e.handle.poll(), SessionStatus::Running { .. }))
            .count()
    }

    /// Submits a session: `locals[i]` is provider `i`'s private dataset
    /// (the last provider doubles as coordinator), `session_config` the
    /// per-session protocol settings — including an optional
    /// [`sap_net::sim::FaultConfig`], applied to *this session's* virtual
    /// endpoints only.
    ///
    /// Returns the registered [`SessionId`]; the session runs (or queues
    /// for the pool) in the background. Look it up with
    /// [`SapServer::poll`] / [`SapServer::wait`].
    ///
    /// # Errors
    ///
    /// * [`ServerError::Overloaded`] when admission control sheds.
    /// * [`ServerError::TooManyParties`] when `locals` exceeds the lanes.
    /// * [`ServerError::Session`] on invalid inputs.
    pub fn submit(
        &self,
        locals: Vec<Dataset>,
        session_config: &SapConfig,
    ) -> Result<SessionId, ServerError> {
        self.admit(None, locals, session_config)
    }

    /// [`SapServer::submit`] under a **caller-chosen** session id — the
    /// fleet's placement path, where the id was minted (and hashed onto
    /// the placement ring) before the owning node was even known. The
    /// id must come from a fleet-unique minter
    /// ([`sap_core::placement::IdMinter`]); reserved ids and ids already
    /// registered here are refused.
    ///
    /// # Errors
    ///
    /// Everything [`SapServer::submit`] returns, plus
    /// [`ServerError::DuplicateSession`] when `id` is reserved
    /// ([`SessionId::SOLO`], [`SessionId::LIVENESS`], the control range)
    /// or already registered.
    pub fn submit_placed(
        &self,
        id: SessionId,
        locals: Vec<Dataset>,
        session_config: &SapConfig,
    ) -> Result<SessionId, ServerError> {
        if id == SessionId::SOLO
            || id == SessionId::LIVENESS
            || id.0 >= sap_core::placement::CONTROL_BASE
        {
            return Err(ServerError::DuplicateSession(id));
        }
        self.admit(Some(id), locals, session_config)
    }

    /// Mints the next session id from this server's minter **without**
    /// registering anything. The fleet's gateway path uses this: ids
    /// minted here and ids this server mints internally (submissions,
    /// retry wire ids) share one sequence, so a gateway-minted id can
    /// never collide with the node's own.
    pub fn mint_session_id(&self) -> SessionId {
        self.ids.mint()
    }

    /// Shared admission body of [`SapServer::submit`] (id minted here)
    /// and [`SapServer::submit_placed`] (id chosen by the fleet).
    fn admit(
        &self,
        placed: Option<SessionId>,
        locals: Vec<Dataset>,
        session_config: &SapConfig,
    ) -> Result<SessionId, ServerError> {
        let k = locals.len();
        if k > self.lanes.len() {
            return Err(ServerError::TooManyParties {
                requested: k,
                max: self.lanes.len(),
            });
        }
        // The registry lock is held from the admission check through the
        // insert: concurrent submits must not both observe the same free
        // slot (check-then-act race).
        let mut registry = self.registry.lock().expect("registry lock");
        if let Some(id) = placed {
            if registry.contains_key(&id) {
                return Err(ServerError::DuplicateSession(id));
            }
        }
        let live = registry
            .values()
            .filter(|e| matches!(e.handle.poll(), SessionStatus::Running { .. }))
            .count();
        let limit = self.config.max_concurrent + self.config.max_queued;
        if live >= limit {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Overloaded { live, limit });
        }

        let id = placed.unwrap_or_else(|| self.ids.mint());
        let retry = (self.config.retry_policy.max_retries > 0).then(|| RetryState {
            locals: locals.clone(),
            config: session_config.clone(),
            remaining: self.config.retry_policy.max_retries,
        });
        let handle = self.wire_session(id, locals, session_config)?;

        self.counters.started.fetch_add(1, Ordering::Relaxed);
        registry.insert(
            id,
            SessionEntry {
                handle,
                class: session_config.qos,
                submitted: Instant::now(),
                finished_at: None,
                accounted: false,
                aborted: false,
                retry,
            },
        );
        Ok(id)
    }

    /// Opens mux routes for `id` on the first `locals.len()` lanes (plus
    /// the miner lane), spawns the session gang, and installs the abort
    /// hook that tears those routes down. Shared by [`SapServer::submit`]
    /// and peer-failure retries.
    fn wire_session(
        &self,
        id: SessionId,
        locals: Vec<Dataset>,
        session_config: &SapConfig,
    ) -> Result<SessionHandle, ServerError> {
        let k = locals.len();
        let open_all = || -> Result<(Vec<MuxEndpoint<T>>, MuxEndpoint<T>), TransportError> {
            let mut endpoints = Vec::with_capacity(k);
            for lane in &self.lanes[..k] {
                endpoints.push(lane.open_session(id)?);
            }
            Ok((endpoints, self.miner_lane.open_session(id)?))
        };
        let (endpoints, miner_endpoint) = match open_all() {
            Ok(pair) => pair,
            Err(e) => {
                self.close_routes(id, k);
                return Err(e.into());
            }
        };

        // A session with a fault model gets its endpoints wrapped in the
        // injector; its siblings' traffic never passes through it.
        let spawned = match session_config.fault_config {
            None => spawn_session(
                &self.pool,
                id,
                locals,
                session_config,
                endpoints,
                miner_endpoint,
                WireCodec,
            ),
            Some(faults) => {
                // Same per-position salting as run_session, via the shared
                // helper — a faulted session draws the identical
                // deterministic fault stream here and in a solo run.
                let wrapped: Vec<_> = endpoints
                    .into_iter()
                    .enumerate()
                    .map(|(pos, ep)| FaultyTransport::new(ep, faults.salted_for(pos as u64 + 1)))
                    .collect();
                let miner_wrapped = FaultyTransport::new(
                    miner_endpoint,
                    faults.salted_for(sap_net::sim::FaultConfig::MINER_SALT),
                );
                spawn_session(
                    &self.pool,
                    id,
                    locals,
                    session_config,
                    wrapped,
                    miner_wrapped,
                    WireCodec,
                )
            }
        };
        let handle = match spawned {
            Ok(handle) => handle,
            Err(e) => {
                self.close_routes(id, k);
                return Err(e.into());
            }
        };

        // Aborting the session closes its mux routes so blocked roles
        // disconnect immediately instead of waiting out their timeouts.
        {
            let lanes: Vec<SessionMux<T>> = self.lanes[..k].to_vec();
            let miner_lane = self.miner_lane.clone();
            handle.set_abort_hook(move || {
                for lane in &lanes {
                    lane.close_session(id);
                }
                miner_lane.close_session(id);
            });
        }
        // Deadline-aware admission may have shed the gang during the
        // submit, before the abort hook above existed — the shed callback
        // then found no hook to run, so close the routes here.
        if matches!(handle.poll(), SessionStatus::Shed) {
            self.close_routes(id, k);
        }
        Ok(handle)
    }

    /// Consumes one retry of a peer-failed session: respawns it under a
    /// fresh wire session id with the stored inputs, swapping the new
    /// handle into the client-facing registry entry. Returns `false`
    /// when the entry has no retries left (or retry is off).
    fn try_retry(&self, public_id: SessionId) -> bool {
        let (locals, cfg) = {
            let mut registry = self.registry.lock().expect("registry lock");
            let Some(entry) = registry.get_mut(&public_id) else {
                return false;
            };
            if entry.aborted {
                // The owner gave up on this session; a retry racing the
                // abort must not resurrect it.
                return false;
            }
            let Some(retry) = entry.retry.as_mut() else {
                return false;
            };
            if retry.remaining == 0 {
                return false;
            }
            retry.remaining -= 1;
            (retry.locals.clone(), retry.config.clone())
        };
        let wire_id = self.ids.mint();
        match self.wire_session(wire_id, locals, &cfg) {
            Ok(handle) => {
                let installed = {
                    let mut registry = self.registry.lock().expect("registry lock");
                    match registry.get_mut(&public_id) {
                        Some(entry) if !entry.aborted => {
                            entry.handle = handle.clone();
                            entry.finished_at = None;
                            entry.accounted = false;
                            true
                        }
                        // Aborted or reaped while the replacement
                        // spawned: do not install a session the abort
                        // (or the reaper) never saw.
                        _ => false,
                    }
                };
                if installed {
                    self.counters.retried.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    handle.abort();
                    false
                }
            }
            Err(_) => false,
        }
    }

    /// Drains every unfinished session whose inputs the retry policy
    /// retained, returning their registrations for re-placement on
    /// another node — the export half of an ownership handoff when this
    /// server's node leaves a fleet.
    ///
    /// Each exported session is aborted here (its roles unwind with
    /// typed errors and its mux routes close); the importing node
    /// re-runs it from the stored inputs under the **same** client-facing
    /// id via [`SapServer::submit_placed`] — the same replay contract as
    /// a peer-failure retry. Finished sessions keep their outcomes here;
    /// unfinished sessions without stored inputs
    /// ([`RetryPolicy::max_retries`] = 0) cannot be handed off and are
    /// left running.
    pub fn export_registrations(&self) -> Vec<Registration> {
        let mut registry = self.registry.lock().expect("registry lock");
        let ids: Vec<SessionId> = registry
            .iter()
            .filter(|(_, e)| {
                e.retry.is_some() && matches!(e.handle.poll(), SessionStatus::Running { .. })
            })
            .map(|(&id, _)| id)
            .collect();
        let mut exported = Vec::with_capacity(ids.len());
        for id in ids {
            let Some(entry) = registry.remove(&id) else {
                continue;
            };
            entry.handle.abort();
            let Some(retry) = entry.retry else {
                continue;
            };
            exported.push(Registration {
                id,
                locals: retry.locals,
                config: retry.config,
            });
        }
        exported
    }

    fn close_routes(&self, id: SessionId, k: usize) {
        for lane in &self.lanes[..k] {
            lane.close_session(id);
        }
        self.miner_lane.close_session(id);
    }

    /// Non-blocking status lookup.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`] when the id is not registered.
    pub fn poll(&self, id: SessionId) -> Result<SessionStatus, ServerError> {
        let registry = self.registry.lock().expect("registry lock");
        registry
            .get(&id)
            .map(|e| e.handle.poll())
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Waits for a session and returns its outcome (once). `timeout`
    /// `None` waits indefinitely.
    ///
    /// Under a non-zero [`ServerConfig::retry_policy`], a session that
    /// dies of a [`SapError::PeerFailure`] is transparently re-run with
    /// its stored inputs (up to the policy's budget) before the failure
    /// is surfaced; the caller's `timeout` spans the retries.
    ///
    /// # Errors
    ///
    /// * [`ServerError::UnknownSession`] for unregistered (or reaped) ids.
    /// * [`ServerError::Session`] carrying the session's own error, the
    ///   harvest timeout, or [`SapError::Aborted`].
    pub fn wait(
        &self,
        id: SessionId,
        timeout: Option<Duration>,
    ) -> Result<SapOutcome, ServerError> {
        let overall = timeout.map(|t| Instant::now() + t);
        loop {
            let handle = {
                let registry = self.registry.lock().expect("registry lock");
                registry
                    .get(&id)
                    .map(|e| e.handle.clone())
                    .ok_or(ServerError::UnknownSession(id))?
            };
            let remaining = overall.map(|d| d.saturating_duration_since(Instant::now()));
            let result = handle.harvest(remaining);
            match &result {
                // A harvest deadline is the caller's timeout, not the
                // session's end — leave the entry unaccounted.
                Err(SapError::Timeout {
                    phase: "session harvest",
                    ..
                }) => {}
                Err(SapError::PeerFailure { .. }) if self.try_retry(id) => continue,
                _ => self.finalize(id, &result),
            }
            return result.map_err(ServerError::Session);
        }
    }

    /// Aborts a session (idempotent). The verdict is recorded on the
    /// registry entry as well as the running handle, so a peer-failure
    /// retry racing this call cannot resurrect the session.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`] when the id is not registered.
    pub fn abort(&self, id: SessionId) -> Result<(), ServerError> {
        let handle = {
            let mut registry = self.registry.lock().expect("registry lock");
            let entry = registry
                .get_mut(&id)
                .ok_or(ServerError::UnknownSession(id))?;
            entry.aborted = true;
            entry.handle.clone()
        };
        handle.abort();
        Ok(())
    }

    fn finalize(&self, id: SessionId, result: &Result<SapOutcome, SapError>) {
        let mut registry = self.registry.lock().expect("registry lock");
        let Some(entry) = registry.get_mut(&id) else {
            return;
        };
        entry.finished_at.get_or_insert_with(Instant::now);
        if entry.accounted {
            return;
        }
        entry.accounted = true;
        Self::record_latency(&self.latency, entry.class, entry.handle.timings());
        match result {
            Ok(outcome) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .blocks_relayed
                    .fetch_add(outcome.relayed_blocks, Ordering::Relaxed);
                self.counters
                    .blocks_pipelined
                    .fetch_add(outcome.stream.pipelined_blocks, Ordering::Relaxed);
                let micros = (outcome.stream.overlap_ratio() * 1e6) as u64;
                self.counters
                    .overlap_micros_sum
                    .fetch_add(micros, Ordering::Relaxed);
                self.counters
                    .overlap_sessions
                    .fetch_add(1, Ordering::Relaxed);
                let opt = outcome.optimizer_summary();
                self.counters
                    .optimizer_wall_micros
                    .fetch_add((opt.wall_s * 1e6) as u64, Ordering::Relaxed);
                self.counters
                    .optimizer_candidates
                    .fetch_add(opt.candidates_evaluated, Ordering::Relaxed);
                self.counters
                    .optimizer_pruned
                    .fetch_add(opt.candidates_pruned, Ordering::Relaxed);
            }
            Err(SapError::Aborted) => {
                self.counters.aborted.fetch_add(1, Ordering::Relaxed);
            }
            Err(SapError::AdmissionShed { .. }) => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds one accounted session's scheduler timings into the per-class
    /// histograms. Shed sessions contribute a queue-wait sample only —
    /// they never had a service phase.
    fn record_latency(latency: &Mutex<SessionLatency>, class: QosClass, timings: SessionTimings) {
        if timings.queue_wait.is_none() && timings.service.is_none() {
            return;
        }
        let mut latency = latency.lock().expect("latency lock");
        let class = latency.class_mut(class);
        if let Some(wait) = timings.queue_wait {
            class.queue_wait.record(wait);
        }
        if let Some(service) = timings.service {
            class.service.record(service);
        }
    }

    /// The GC sweep: aborts running sessions older than
    /// [`ServerConfig::max_session_age`], accounts finished-but-unwaited
    /// sessions, and removes entries finished longer than
    /// [`ServerConfig::reap_after`] ago. Returns the number of entries
    /// removed. Call periodically (or before capacity decisions).
    pub fn reap(&self) -> usize {
        let now = Instant::now();
        // Collect handles first: aborting under the registry lock would
        // deadlock with the abort hook closing mux routes while a pump
        // blocks on a full queue.
        let overdue: Vec<SessionHandle> = {
            let mut registry = self.registry.lock().expect("registry lock");
            registry
                .values_mut()
                .filter(|e| {
                    matches!(e.handle.poll(), SessionStatus::Running { .. })
                        && now.duration_since(e.submitted) > self.config.max_session_age
                })
                .map(|e| {
                    // Recorded on the entry too, so a racing peer-failure
                    // retry cannot resurrect the overdue session.
                    e.aborted = true;
                    e.handle.clone()
                })
                .collect()
        };
        for handle in &overdue {
            handle.abort();
        }

        let mut registry = self.registry.lock().expect("registry lock");
        let mut reaped = 0;
        registry.retain(|_, entry| {
            let status = entry.handle.poll();
            if matches!(status, SessionStatus::Running { .. }) {
                return true;
            }
            let finished_at = *entry.finished_at.get_or_insert(now);
            if !entry.accounted {
                entry.accounted = true;
                Self::record_latency(&self.latency, entry.class, entry.handle.timings());
                match status {
                    SessionStatus::Complete => {
                        // Completed but never harvested; count it (the
                        // blocks metric needs the outcome, so it is only
                        // summed for harvested sessions).
                        self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    SessionStatus::Aborted => {
                        self.counters.aborted.fetch_add(1, Ordering::Relaxed);
                    }
                    SessionStatus::Shed => {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            if now.duration_since(finished_at) >= self.config.reap_after {
                reaped += 1;
                false
            } else {
                true
            }
        });
        reaped
    }

    /// A snapshot of the server's metrics (session counters plus the lane
    /// muxes' traffic counters).
    pub fn metrics(&self) -> ServerMetrics {
        let sched = self.pool.stats();
        let mut bytes_sealed = 0;
        let mut frames_routed = 0;
        let mut unknown = 0;
        let mut shed = 0;
        let mut peers_down = 0;
        let mut down_latency_us = 0;
        for lane in self.lanes.iter().chain(std::iter::once(&self.miner_lane)) {
            let m = lane.metrics();
            bytes_sealed += m.bytes_sent;
            frames_routed += m.frames_routed;
            unknown += m.unknown_session_dropped;
            shed += m.shed_frames;
            peers_down += m.peers_down;
            down_latency_us += m.peer_down_latency_us;
        }
        let overlap_sessions = self.counters.overlap_sessions.load(Ordering::Relaxed);
        let overlap_ratio_avg = if overlap_sessions == 0 {
            0.0
        } else {
            self.counters.overlap_micros_sum.load(Ordering::Relaxed) as f64
                / 1e6
                / overlap_sessions as f64
        };
        ServerMetrics {
            sessions_started: self.counters.started.load(Ordering::Relaxed),
            sessions_completed: self.counters.completed.load(Ordering::Relaxed),
            sessions_failed: self.counters.failed.load(Ordering::Relaxed),
            sessions_aborted: self.counters.aborted.load(Ordering::Relaxed),
            sessions_rejected: self.counters.rejected.load(Ordering::Relaxed),
            live_sessions: self.live_sessions(),
            blocks_relayed: self.counters.blocks_relayed.load(Ordering::Relaxed),
            blocks_pipelined: self.counters.blocks_pipelined.load(Ordering::Relaxed),
            overlap_ratio_avg,
            optimizer_wall_s: self.counters.optimizer_wall_micros.load(Ordering::Relaxed) as f64
                / 1e6,
            optimizer_candidates_evaluated: self
                .counters
                .optimizer_candidates
                .load(Ordering::Relaxed),
            optimizer_candidates_pruned: self.counters.optimizer_pruned.load(Ordering::Relaxed),
            bytes_sealed,
            frames_routed,
            unknown_session_dropped: unknown,
            shed_frames: shed,
            peer_failures_detected: peers_down,
            peer_detection_latency_avg_s: if peers_down == 0 {
                0.0
            } else {
                down_latency_us as f64 / 1e6 / peers_down as f64
            },
            sessions_retried: self.counters.retried.load(Ordering::Relaxed),
            sessions_shed: self.counters.shed.load(Ordering::Relaxed),
            gangs_promoted: sched.gangs_promoted,
            task_steals: sched.task_steals,
            pool_queued_tasks: sched.queued_tasks,
            pool_running_tasks: sched.running_tasks,
            latency_histogram: *self.latency.lock().expect("latency lock"),
        }
    }
}

impl<T: Transport + 'static> Drop for SapServer<T> {
    fn drop(&mut self) {
        // Abort everything still running so pool workers unblock, then let
        // the pool's own Drop join them.
        let handles: Vec<SessionHandle> = {
            let registry = self.registry.lock().expect("registry lock");
            registry.values().map(|e| e.handle.clone()).collect()
        };
        for handle in handles {
            handle.abort();
        }
        for lane in &self.lanes {
            lane.shutdown();
        }
        self.miner_lane.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_datasets::partition::{partition, PartitionScheme};
    use sap_datasets::registry::UciDataset;

    fn quick() -> SapConfig {
        SapConfig {
            timeout: Duration::from_secs(30),
            ..SapConfig::quick_test()
        }
    }

    fn locals(seed: u64) -> Vec<Dataset> {
        let pooled = UciDataset::Iris.generate(seed);
        partition(&pooled, 3, PartitionScheme::Uniform, seed ^ 0x55)
    }

    #[test]
    fn single_session_through_server_matches_solo() {
        let server = SapServer::in_memory(ServerConfig::default()).unwrap();
        let cfg = quick();
        let id = server.submit(locals(3), &cfg).unwrap();
        let outcome = server.wait(id, Some(Duration::from_secs(60))).unwrap();
        let solo = sap_core::run_session(locals(3), &cfg).unwrap();
        assert_eq!(outcome.unified, solo.unified);
        assert_eq!(outcome.forwarder_of_slot, solo.forwarder_of_slot);

        let m = server.metrics();
        assert_eq!(m.sessions_started, 1);
        assert_eq!(m.sessions_completed, 1);
        assert!(m.blocks_relayed > 0);
        assert!(m.bytes_sealed > 0);
        // The default data plane streams: relay hops pipeline blocks and
        // the miner's decode overlaps the exchange.
        assert!(m.blocks_pipelined > 0, "{m:?}");
        assert!(
            m.overlap_ratio_avg >= 0.0 && m.overlap_ratio_avg <= 1.0,
            "{m:?}"
        );
        // Optimizer telemetry: 3 providers × 4 quick-test candidates.
        assert_eq!(m.optimizer_candidates_evaluated, 12, "{m:?}");
        assert!(m.optimizer_wall_s > 0.0, "{m:?}");
        assert_eq!(
            m.optimizer_candidates_evaluated - m.optimizer_candidates_pruned,
            outcome
                .reports
                .iter()
                .map(|r| r.optimizer.survivors as u64)
                .sum::<u64>()
        );
    }

    /// A client submitting `candidates: 0` must fail *its* session with a
    /// typed optimizer error — never panic a pool worker or take the
    /// server down.
    #[test]
    fn malformed_optimizer_config_fails_only_its_session() {
        let server = SapServer::in_memory(ServerConfig::default()).unwrap();
        let bad_cfg = SapConfig {
            optimizer: sap_privacy::OptimizerConfig {
                candidates: 0,
                ..sap_privacy::OptimizerConfig::default()
            },
            ..quick()
        };
        let bad = server.submit(locals(20), &bad_cfg).unwrap();
        let err = server.wait(bad, Some(Duration::from_secs(60))).unwrap_err();
        assert!(
            matches!(
                err,
                ServerError::Session(SapError::Optimizer(
                    sap_privacy::OptimizeError::NoCandidates
                ))
            ),
            "{err}"
        );
        assert_eq!(server.metrics().sessions_failed, 1);

        // The server keeps serving: a healthy session still completes.
        let good = server.submit(locals(21), &quick()).unwrap();
        assert!(server.wait(good, Some(Duration::from_secs(60))).is_ok());
    }

    #[test]
    fn too_many_parties_rejected() {
        let server = SapServer::in_memory(ServerConfig {
            max_parties: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let pooled = UciDataset::Iris.generate(1);
        let locals = partition(&pooled, 4, PartitionScheme::Uniform, 2);
        assert!(matches!(
            server.submit(locals, &quick()),
            Err(ServerError::TooManyParties {
                requested: 4,
                max: 3
            })
        ));
    }

    #[test]
    fn admission_control_sheds_when_full() {
        let server = SapServer::in_memory(ServerConfig {
            max_concurrent: 1,
            max_queued: 0,
            ..ServerConfig::default()
        })
        .unwrap();
        // A session that will hang (all frames dropped) holds the slot.
        let stuck_cfg = SapConfig {
            fault_config: Some(sap_net::sim::FaultConfig {
                drop_prob: 1.0,
                ..Default::default()
            }),
            timeout: Duration::from_secs(5),
            ..SapConfig::quick_test()
        };
        let stuck = server.submit(locals(9), &stuck_cfg).unwrap();
        let err = server.submit(locals(10), &quick()).unwrap_err();
        assert!(matches!(err, ServerError::Overloaded { live: 1, limit: 1 }));
        assert_eq!(server.metrics().sessions_rejected, 1);

        // The stuck session times out; its slot frees up.
        let err = server.wait(stuck, None).unwrap_err();
        assert!(
            matches!(err, ServerError::Session(SapError::Timeout { .. })),
            "{err}"
        );
        assert!(server.submit(locals(11), &quick()).is_ok());
    }

    #[test]
    fn abort_cancels_promptly_and_counts() {
        let server = SapServer::in_memory(ServerConfig::default()).unwrap();
        let stuck_cfg = SapConfig {
            fault_config: Some(sap_net::sim::FaultConfig {
                drop_prob: 1.0,
                ..Default::default()
            }),
            timeout: Duration::from_secs(120),
            ..SapConfig::quick_test()
        };
        let id = server.submit(locals(4), &stuck_cfg).unwrap();
        server.abort(id).unwrap();
        let start = Instant::now();
        let err = server.wait(id, Some(Duration::from_secs(30))).unwrap_err();
        assert!(
            matches!(err, ServerError::Session(SapError::Aborted)),
            "{err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "abort must not wait out the 120s protocol timeout"
        );
        assert_eq!(server.metrics().sessions_aborted, 1);
    }

    #[test]
    fn reap_gcs_finished_sessions() {
        let server = SapServer::in_memory(ServerConfig {
            reap_after: Duration::ZERO,
            ..ServerConfig::default()
        })
        .unwrap();
        let id = server.submit(locals(5), &quick()).unwrap();
        server.wait(id, None).unwrap();
        assert_eq!(server.reap(), 1);
        assert!(matches!(
            server.poll(id),
            Err(ServerError::UnknownSession(_))
        ));
        // Unknown-session wait after reap.
        assert!(matches!(
            server.wait(id, None),
            Err(ServerError::UnknownSession(_))
        ));
    }

    #[test]
    fn age_gc_aborts_overdue_sessions() {
        let server = SapServer::in_memory(ServerConfig {
            max_session_age: Duration::ZERO,
            ..ServerConfig::default()
        })
        .unwrap();
        let stuck_cfg = SapConfig {
            fault_config: Some(sap_net::sim::FaultConfig {
                drop_prob: 1.0,
                ..Default::default()
            }),
            timeout: Duration::from_secs(120),
            ..SapConfig::quick_test()
        };
        let id = server.submit(locals(6), &stuck_cfg).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // First sweep aborts; roles unwind via Disconnected, then a later
        // sweep (or wait) observes the end.
        server.reap();
        let err = server.wait(id, Some(Duration::from_secs(30))).unwrap_err();
        assert!(
            matches!(err, ServerError::Session(SapError::Aborted)),
            "{err}"
        );
    }
}
