//! Fixed-bucket log-scale latency histograms for the metrics surface.
//!
//! The vendored-only workspace has no `hdrhistogram`; this is the small
//! fixed-footprint equivalent the server needs: 64 buckets spanning
//! sub-microsecond to ~hours at **2 buckets per octave** (≈41% relative
//! bucket width, so a p99 read is within ~√2 of the true value —
//! tail-latency resolution, not a timing oracle). Recording is O(1) with
//! no allocation; a [`LatencyHistogram`] is plain `Copy` data so
//! [`crate::ServerMetrics`] snapshots stay lock-free to read after the
//! one snapshot clone.

use sap_core::runtime::QosClass;
use std::time::Duration;

const BUCKETS: usize = 64;

/// A fixed 64-bucket log-scale histogram of durations (2 buckets per
/// octave of microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    // Derived `Default` needs `Default for [u64; 64]`, which std only
    // provides for arrays up to 32.
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((2.0 * (us as f64).log2()).floor() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` in microseconds: `2^((i+1)/2)`.
fn upper_bound_us(i: usize) -> f64 {
    2f64.powf((i + 1) as f64 / 2.0)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let us = sample.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Mean of the recorded samples (exact — from the running sum, not
    /// the buckets). Zero when empty.
    pub fn mean(&self) -> Duration {
        match self.sum_us.checked_div(self.count) {
            Some(mean_us) => Duration::from_micros(mean_us),
            None => Duration::ZERO,
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that rank, clamped to the observed maximum. Zero when
    /// empty.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let us = upper_bound_us(i).min(self.max_us as f64);
                return Duration::from_micros(us as u64);
            }
        }
        Duration::from_micros(self.max_us)
    }

    /// Median (see [`LatencyHistogram::percentile`]).
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Duration {
        self.percentile(0.999)
    }
}

/// Queue-wait and service-time histograms of one scheduling class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassLatency {
    /// Submit → gang admission (time spent queued; includes shed
    /// sessions' submit → shed wait).
    pub queue_wait: LatencyHistogram,
    /// Gang admission → last role finished.
    pub service: LatencyHistogram,
}

/// Per-class session latency histograms
/// ([`crate::ServerMetrics::latency_histogram`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionLatency {
    /// Sessions submitted as [`QosClass::Interactive`].
    pub interactive: ClassLatency,
    /// Sessions submitted as [`QosClass::Batch`].
    pub batch: ClassLatency,
}

impl SessionLatency {
    /// The class's histograms.
    pub fn class(&self, class: QosClass) -> &ClassLatency {
        match class {
            QosClass::Interactive => &self.interactive,
            QosClass::Batch => &self.batch,
        }
    }

    /// Mutable access to the class's histograms.
    pub fn class_mut(&mut self, class: QosClass) -> &mut ClassLatency {
        match class {
            QosClass::Interactive => &mut self.interactive,
            QosClass::Batch => &mut self.batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p999(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=1000u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 1000);
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        assert!(p50 <= p99 && p99 <= p999, "{p50:?} {p99:?} {p999:?}");
        assert!(p999 <= h.max());
        // Log-scale buckets: the read is within one bucket width (√2) of
        // the true quantile, which here is ~500ms / ~990ms / ~999ms.
        assert!(p50 >= Duration::from_millis(350) && p50 <= Duration::from_millis(750));
        assert!(p99 >= Duration::from_millis(700));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(777));
        assert_eq!(h.p50(), h.p999());
        assert!(h.p50() <= h.max());
        assert_eq!(h.mean(), Duration::from_micros(777));
    }

    #[test]
    fn extreme_samples_clamp_into_end_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1_000_000_000));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) <= h.max());
    }

    #[test]
    fn saturating_bucket_and_sum_never_wrap() {
        let mut h = LatencyHistogram::new();
        // Durations beyond the last bucket's range all land in bucket 63
        // and the running sum saturates instead of wrapping.
        h.record(Duration::MAX);
        h.record(Duration::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_micros(u64::MAX));
        // A wrapped sum would read as a tiny mean; saturation keeps it
        // at the scale of the samples.
        assert!(h.mean() >= Duration::from_micros(u64::MAX / 4));
        // Both samples share the saturated top bucket, so every
        // percentile reads the same clamped value.
        assert_eq!(h.p50(), h.p999());
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn p999_on_tiny_counts_reads_the_maximum() {
        // With fewer than 1000 samples the 99.9th-percentile rank is the
        // last sample: p999 must clamp to the observed maximum, never
        // overshoot it or fall into a lower bucket.
        for n in 1..=10u64 {
            let mut h = LatencyHistogram::new();
            for i in 0..n {
                h.record(Duration::from_millis(1 + i));
            }
            assert_eq!(h.p999(), h.max(), "tiny count n={n}");
            assert_eq!(h.percentile(1.0), h.max(), "tiny count n={n}");
        }
        // Rank 0 still reads a real sample (rank clamps to 1).
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(5));
        assert!(h.percentile(0.0) > Duration::ZERO);
    }

    #[test]
    fn class_selector_routes_to_the_right_histogram() {
        let mut l = SessionLatency::default();
        l.class_mut(QosClass::Interactive)
            .queue_wait
            .record(Duration::from_millis(1));
        l.class_mut(QosClass::Batch)
            .service
            .record(Duration::from_millis(2));
        assert_eq!(l.class(QosClass::Interactive).queue_wait.count(), 1);
        assert_eq!(l.class(QosClass::Interactive).service.count(), 0);
        assert_eq!(l.class(QosClass::Batch).service.count(), 1);
    }
}
