//! Soft-margin support vector machine trained with SMO.
//!
//! Implements the simplified Sequential Minimal Optimization algorithm
//! (Platt 1998; the simplified variant of the Stanford CS229 notes): pairs
//! of Lagrange multipliers are optimized analytically until no multiplier
//! violates the KKT conditions. Multiclass problems are reduced by
//! one-vs-one voting, which is what LibSVM — the de-facto tool of the
//! paper's era — does.
//!
//! The RBF kernel depends only on pairwise distances, so the trained model's
//! accuracy is invariant under the rotation + translation part of geometric
//! perturbation; only the additive noise component degrades it. Figure 6 of
//! the brief measures exactly that residual degradation.

use crate::Model;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_datasets::Dataset;
use sap_linalg::vecops;

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Inner-product kernel `K(x, y) = ⟨x, y⟩`.
    Linear,
    /// Gaussian radial basis function `K(x, y) = exp(−γ·‖x − y‖²)`.
    Rbf {
        /// Bandwidth γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vecops::dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * vecops::dist2_sq(a, b)).exp(),
        }
    }

    /// The conventional default RBF bandwidth `γ = 1/d`.
    pub fn rbf_default(dim: usize) -> Kernel {
        Kernel::Rbf {
            gamma: 1.0 / dim.max(1) as f64,
        }
    }
}

/// Training configuration for [`SvmClassifier`].
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive no-change passes before declaring convergence.
    pub max_passes: usize,
    /// Hard cap on total passes (guards pathological data).
    pub max_iter: usize,
    /// Seed for SMO's random partner selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.5 },
            tol: 1e-3,
            max_passes: 3,
            max_iter: 200,
            seed: 0x5eed,
        }
    }
}

impl SvmConfig {
    /// Default configuration with the RBF bandwidth set to `1/dim`.
    pub fn rbf_for_dim(dim: usize) -> Self {
        SvmConfig {
            kernel: Kernel::rbf_default(dim),
            ..SvmConfig::default()
        }
    }
}

/// One binary SVM of the one-vs-one ensemble.
#[derive(Debug, Clone)]
struct BinarySvm {
    /// The two class labels this machine separates: decision > 0 ⇒ `pos`.
    pos: usize,
    neg: usize,
    /// Support vectors with their `αᵢ·yᵢ` coefficients.
    support: Vec<(Vec<f64>, f64)>,
    bias: f64,
    kernel: Kernel,
}

impl BinarySvm {
    fn decision(&self, x: &[f64]) -> f64 {
        self.support
            .iter()
            .map(|(sv, coef)| coef * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    fn vote(&self, x: &[f64]) -> usize {
        if self.decision(x) > 0.0 {
            self.pos
        } else {
            self.neg
        }
    }
}

/// A trained (possibly multiclass) SVM.
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    machines: Vec<BinarySvm>,
    num_classes: usize,
    /// Majority class, used as the degenerate fallback when training data
    /// contains a single class.
    fallback: usize,
}

impl SvmClassifier {
    /// Trains a one-vs-one SVM ensemble on `data`.
    ///
    /// Class pairs with no representatives are skipped; if the training data
    /// holds a single class, the classifier degenerates to predicting it.
    ///
    /// # Panics
    ///
    /// Panics if `config.c <= 0`.
    pub fn fit(data: &Dataset, config: &SvmConfig) -> Self {
        assert!(config.c > 0.0, "C must be positive");
        let counts = data.class_counts();
        let fallback =
            vecops::argmax(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>()).unwrap_or(0);
        let mut machines = Vec::new();
        for a in 0..data.num_classes() {
            for b in a + 1..data.num_classes() {
                if counts[a] == 0 || counts[b] == 0 {
                    continue;
                }
                let idx: Vec<usize> = (0..data.len())
                    .filter(|&i| data.label(i) == a || data.label(i) == b)
                    .collect();
                let records: Vec<&[f64]> = idx.iter().map(|&i| data.record(i)).collect();
                let y: Vec<f64> = idx
                    .iter()
                    .map(|&i| if data.label(i) == a { 1.0 } else { -1.0 })
                    .collect();
                machines.push(train_binary(a, b, &records, &y, config));
            }
        }
        SvmClassifier {
            machines,
            num_classes: data.num_classes(),
            fallback,
        }
    }

    /// Number of binary machines in the ensemble.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total number of support vectors across the ensemble.
    pub fn num_support_vectors(&self) -> usize {
        self.machines.iter().map(|m| m.support.len()).sum()
    }
}

impl Model for SvmClassifier {
    fn predict(&self, record: &[f64]) -> usize {
        if self.machines.is_empty() {
            return self.fallback;
        }
        let mut votes = vec![0usize; self.num_classes];
        for m in &self.machines {
            votes[m.vote(record)] += 1;
        }
        vecops::argmax(&votes.iter().map(|&v| v as f64).collect::<Vec<_>>())
            .unwrap_or(self.fallback)
    }
}

/// Simplified SMO on a binary problem with labels `y ∈ {−1, +1}`.
fn train_binary(
    pos: usize,
    neg: usize,
    records: &[&[f64]],
    y: &[f64],
    config: &SvmConfig,
) -> BinarySvm {
    let n = records.len();
    debug_assert_eq!(n, y.len());
    let mut rng = StdRng::seed_from_u64(config.seed ^ ((pos as u64) << 32) ^ neg as u64);

    // Precompute the kernel matrix; pair subsets are small enough (≤ ~2000)
    // that the O(n²) memory is the right trade against re-evaluating RBF
    // exponentials inside the SMO inner loop.
    let mut k = vec![0.0; n * n];
    for i in 0..n {
        for j in i..n {
            let v = config.kernel.eval(records[i], records[j]);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    let kij = |i: usize, j: usize| k[i * n + j];

    let mut alpha = vec![0.0_f64; n];
    let mut b = 0.0_f64;
    let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
        let mut s = b;
        for t in 0..n {
            if alpha[t] != 0.0 {
                s += alpha[t] * y[t] * kij(t, i);
            }
        }
        s
    };

    let mut passes = 0;
    let mut iter = 0;
    while passes < config.max_passes && iter < config.max_iter {
        iter += 1;
        let mut changed = 0;
        for i in 0..n {
            let ei = f(&alpha, b, i) - y[i];
            let violates = (y[i] * ei < -config.tol && alpha[i] < config.c)
                || (y[i] * ei > config.tol && alpha[i] > 0.0);
            if !violates {
                continue;
            }
            // Random partner j ≠ i.
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let ej = f(&alpha, b, j) - y[j];

            let (ai_old, aj_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                (
                    (aj_old - ai_old).max(0.0),
                    (config.c + aj_old - ai_old).min(config.c),
                )
            } else {
                (
                    (ai_old + aj_old - config.c).max(0.0),
                    (ai_old + aj_old).min(config.c),
                )
            };
            if (hi - lo).abs() < 1e-12 {
                continue;
            }
            let eta = 2.0 * kij(i, j) - kij(i, i) - kij(j, j);
            if eta >= 0.0 {
                continue;
            }
            let mut aj_new = aj_old - y[j] * (ei - ej) / eta;
            aj_new = aj_new.clamp(lo, hi);
            if (aj_new - aj_old).abs() < 1e-5 {
                continue;
            }
            let ai_new = ai_old + y[i] * y[j] * (aj_old - aj_new);
            alpha[i] = ai_new;
            alpha[j] = aj_new;

            let b1 = b
                - ei
                - y[i] * (ai_new - ai_old) * kij(i, i)
                - y[j] * (aj_new - aj_old) * kij(i, j);
            let b2 = b
                - ej
                - y[i] * (ai_new - ai_old) * kij(i, j)
                - y[j] * (aj_new - aj_old) * kij(j, j);
            b = if ai_new > 0.0 && ai_new < config.c {
                b1
            } else if aj_new > 0.0 && aj_new < config.c {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    let support: Vec<(Vec<f64>, f64)> = (0..n)
        .filter(|&i| alpha[i] > 1e-8)
        .map(|i| (records[i].to_vec(), alpha[i] * y[i]))
        .collect();
    BinarySvm {
        pos,
        neg,
        support,
        bias: b,
        kernel: config.kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_datasets::registry::UciDataset;
    use sap_datasets::split::stratified_split;

    fn linearly_separable(n: usize) -> Dataset {
        // Class 0 around (0,0), class 1 around (3,3).
        let mut records = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { 0.0 } else { 3.0 };
            records.push(vec![
                cx + 0.5 * sap_linalg::randn(&mut rng),
                cx + 0.5 * sap_linalg::randn(&mut rng),
            ]);
            labels.push(class);
        }
        Dataset::new(records, labels)
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&[0.0], &[1.0]) - (-1.0_f64).exp()).abs() < 1e-12);
        assert_eq!(Kernel::rbf_default(4), Kernel::Rbf { gamma: 0.25 });
    }

    #[test]
    fn separable_binary_problem_solved() {
        let data = linearly_separable(120);
        let svm = SvmClassifier::fit(&data, &SvmConfig::default());
        let acc = svm.accuracy(&data);
        assert!(acc > 0.95, "separable accuracy {acc}");
        assert_eq!(svm.num_machines(), 1);
        assert!(svm.num_support_vectors() >= 2);
    }

    #[test]
    fn linear_kernel_on_separable() {
        let data = linearly_separable(100);
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            ..SvmConfig::default()
        };
        let svm = SvmClassifier::fit(&data, &cfg);
        assert!(svm.accuracy(&data) > 0.95);
    }

    #[test]
    fn rbf_solves_circle_inside_circle() {
        // Radially separated classes that no linear machine can split.
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let t = i as f64 / 60.0 * std::f64::consts::TAU;
            records.push(vec![0.3 * t.cos(), 0.3 * t.sin()]);
            labels.push(0);
            records.push(vec![2.0 * t.cos(), 2.0 * t.sin()]);
            labels.push(1);
        }
        let data = Dataset::new(records, labels);
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 1.0 },
            c: 10.0,
            ..SvmConfig::default()
        };
        let svm = SvmClassifier::fit(&data, &cfg);
        let acc = svm.accuracy(&data);
        assert!(acc > 0.95, "ring accuracy {acc}");

        let linear = SvmClassifier::fit(
            &data,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..SvmConfig::default()
            },
        );
        assert!(
            linear.accuracy(&data) < 0.75,
            "a linear machine should fail on rings"
        );
    }

    #[test]
    fn multiclass_one_vs_one() {
        let data = UciDataset::Iris.generate(1);
        let tt = stratified_split(&data, 0.7, 3);
        let svm = SvmClassifier::fit(&tt.train, &SvmConfig::rbf_for_dim(data.dim()));
        assert_eq!(svm.num_machines(), 3); // 3 choose 2
        let acc = svm.accuracy(&tt.test);
        assert!(acc > 0.85, "iris-like accuracy {acc}");
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let data = Dataset::with_num_classes(vec![vec![1.0], vec![2.0]], vec![1, 1], 3);
        let svm = SvmClassifier::fit(&data, &SvmConfig::default());
        assert_eq!(svm.num_machines(), 0);
        assert_eq!(svm.predict(&[5.0]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = linearly_separable(80);
        let a = SvmClassifier::fit(&data, &SvmConfig::default());
        let b = SvmClassifier::fit(&data, &SvmConfig::default());
        let preds_a = a.predict_dataset(&data);
        let preds_b = b.predict_dataset(&data);
        assert_eq!(preds_a, preds_b);
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn non_positive_c_panics() {
        let data = linearly_separable(10);
        let _ = SvmClassifier::fit(
            &data,
            &SvmConfig {
                c: 0.0,
                ..SvmConfig::default()
            },
        );
    }
}
