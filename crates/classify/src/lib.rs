//! From-scratch classifiers and evaluation for the SAP experiments.
//!
//! The PODC'07 brief measures the *accuracy deviation* of models trained on
//! SAP-unified perturbed data versus models trained on the original data,
//! for "two representative classifiers: KNN classifier and SVM classifier
//! with RBF kernel" (Figures 5–6). Both are implemented here from scratch:
//!
//! * [`knn::KnnClassifier`] — brute-force k-nearest-neighbour voting.
//! * [`svm::SvmClassifier`] — soft-margin SVM trained with the SMO
//!   algorithm, RBF or linear kernel, one-vs-one multiclass reduction.
//! * [`perceptron::Perceptron`] — the linear baseline the paper's
//!   "linear classifiers are rotation-invariant" claim refers to.
//!
//! All three implement the common [`Model`] trait so the protocol and
//! benchmark code can treat them interchangeably. Evaluation helpers
//! (accuracy, confusion matrices, cross-validation) live in [`metrics`] and
//! [`crossval`]; the O(n·log k) bounded-heap selection kernel behind KNN's
//! neighbour scan lives in [`topk`].
//!
//! # Why these classifiers?
//!
//! Geometric perturbation's utility argument is that kernel methods whose
//! kernels depend only on distances or inner products (RBF) and neighbour
//! methods (KNN) are invariant under rotation + translation of the feature
//! space. The integration tests in this crate verify that invariance
//! directly.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod crossval;
pub mod knn;
pub mod metrics;
pub mod naive_bayes;
pub mod perceptron;
pub mod svm;
pub mod topk;

pub use knn::KnnClassifier;
pub use naive_bayes::GaussianNaiveBayes;
pub use perceptron::Perceptron;
pub use svm::{Kernel, SvmClassifier, SvmConfig};

use sap_datasets::Dataset;
use sap_linalg::MatrixView;

/// A trained classification model.
pub trait Model {
    /// Predicts the class label of one record.
    fn predict(&self, record: &[f64]) -> usize;

    /// Predicts labels for every record of a dataset.
    fn predict_dataset(&self, data: &Dataset) -> Vec<usize> {
        data.records().iter().map(|r| self.predict(r)).collect()
    }

    /// Predicts labels for a record-major block (`n × d`, one record per
    /// row) into the reusable `out` buffer — the streaming data plane's
    /// inference entry point: row-blocks coming off the wire are scored
    /// as they arrive, without ever assembling a [`Dataset`].
    ///
    /// The default walks the rows serially; distance-based models
    /// override it with a row-parallel sweep.
    fn predict_block(&self, block: MatrixView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.extend(block.iter_rows().map(|r| self.predict(r)));
    }

    /// Fraction of records of `data` classified correctly.
    fn accuracy(&self, data: &Dataset) -> f64 {
        let preds = self.predict_dataset(data);
        metrics::accuracy(&preds, data.labels())
    }
}
