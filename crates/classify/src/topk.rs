//! Bounded top-k selection: the O(n·log k) kernel behind KNN's
//! neighbour scan.
//!
//! [`KnnClassifier::neighbors`](crate::knn::KnnClassifier::neighbors)
//! used to collect all `n` distances and `sort_by` them — O(n·log n)
//! comparisons and O(n) memory *per predicted record*, with a
//! `partial_cmp(..).expect("finite distances")` panic site in the
//! comparator. [`select_k_smallest`] replaces that with a bounded
//! max-heap: stream the distances once, keep the `k` smallest seen so
//! far, O(n·log k) time and O(k) memory, no panic on NaN (ordering is
//! [`f64::total_cmp`], which sorts NaN after every finite value).
//!
//! # Tie rule
//!
//! Candidates are ordered by `(total_cmp(dist), index)` — equal distances
//! resolve to the **smaller index**, which is exactly what a stable sort
//! over `(dist, index)` pairs produces when indices arrive in ascending
//! order. [`select_k_smallest_reference`] is that stable sort, kept as
//! the pinned spec; `tests/kernel_equivalence.rs` property-tests the two
//! equal over duplicate-heavy inputs and every `k` (including `k ≥ n`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(distance, index)` candidate with total order `(total_cmp(dist),
/// idx)` — the heap's max is the current worst kept neighbour.
#[derive(Debug, Clone, Copy)]
struct Entry {
    dist: f64,
    idx: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

// `total_cmp` is a total order over the full f64 domain (NaN included),
// so equality via `cmp` satisfies `Eq`.
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the `k` smallest `(value, index)` pairs from `values`,
/// returned ascending (ties by index). When `k ≥ n` every pair is
/// returned, fully sorted.
///
/// One pass, O(n·log k) comparisons, O(k) memory. NaN values order after
/// all finite values ([`f64::total_cmp`]) instead of panicking. The
/// result is element-identical to [`select_k_smallest_reference`] —
/// a stable sort of all pairs truncated to `k`.
///
/// # Panics
///
/// Panics when `k == 0` (a zero-size neighbourhood is a caller bug —
/// [`KnnClassifier::fit`](crate::knn::KnnClassifier::fit) rejects it at
/// construction).
pub fn select_k_smallest(values: impl IntoIterator<Item = f64>, k: usize) -> Vec<(f64, usize)> {
    assert!(k >= 1, "top-k selection needs k >= 1");
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (idx, dist) in values.into_iter().enumerate() {
        let entry = Entry { dist, idx };
        if heap.len() < k {
            heap.push(entry);
        } else if let Some(worst) = heap.peek() {
            // Strict `<`: an equal distance with a larger index ranks
            // after the kept entry, exactly as the stable sort would.
            if entry < *worst {
                heap.pop();
                heap.push(entry);
            }
        }
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable(); // total order: ascending (dist, idx)
    kept.into_iter().map(|e| (e.dist, e.idx)).collect()
}

/// The pinned reference spec for [`select_k_smallest`]: enumerate all
/// pairs, stable-sort by [`f64::total_cmp`] on the value, truncate to
/// `k`.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn select_k_smallest_reference(
    values: impl IntoIterator<Item = f64>,
    k: usize,
) -> Vec<(f64, usize)> {
    assert!(k >= 1, "top-k selection needs k >= 1");
    let mut pairs: Vec<(f64, usize)> = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_smallest_with_index_ties() {
        let vals = [3.0, 1.0, 2.0, 1.0, 0.5];
        assert_eq!(
            select_k_smallest(vals, 3),
            vec![(0.5, 4), (1.0, 1), (1.0, 3)]
        );
    }

    #[test]
    fn k_at_least_n_returns_full_sort() {
        let vals = [2.0, 2.0, 1.0];
        let got = select_k_smallest(vals, 10);
        assert_eq!(got, vec![(1.0, 2), (2.0, 0), (2.0, 1)]);
        assert_eq!(got, select_k_smallest_reference(vals, 10));
    }

    #[test]
    fn nan_orders_last_without_panicking() {
        let vals = [f64::NAN, 1.0, 2.0];
        assert_eq!(select_k_smallest(vals, 2), vec![(1.0, 1), (2.0, 2)]);
        let all = select_k_smallest(vals, 3);
        assert_eq!(all[2].1, 0);
        assert!(all[2].0.is_nan());
    }

    #[test]
    fn matches_reference_on_duplicate_heavy_input() {
        let vals: Vec<f64> = (0..200).map(|i| ((i * 7) % 5) as f64).collect();
        for k in [1, 2, 5, 50, 199, 200, 300] {
            assert_eq!(
                select_k_smallest(vals.iter().copied(), k),
                select_k_smallest_reference(vals.iter().copied(), k),
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = select_k_smallest([1.0], 0);
    }

    #[test]
    fn empty_input_yields_empty() {
        assert_eq!(select_k_smallest(std::iter::empty(), 3), vec![]);
    }
}
