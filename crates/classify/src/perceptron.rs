//! Averaged perceptron — the linear-classifier baseline.
//!
//! The brief's introduction notes that "many popular classifiers, such as
//! linear classifiers and Support Vector Machine (SVM), are invariant to
//! geometric transformation". This averaged multiclass perceptron is the
//! linear representative used in the ablation benches.

use crate::Model;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sap_datasets::Dataset;
use sap_linalg::vecops;

/// Training configuration for [`Perceptron`].
#[derive(Debug, Clone)]
pub struct PerceptronConfig {
    /// Number of epochs over the training data.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            epochs: 20,
            seed: 0xACE,
        }
    }
}

/// A multiclass averaged perceptron (one weight vector + bias per class,
/// trained with the standard mistake-driven update and prediction from the
/// running average of the weights for stability).
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `num_classes × (dim + 1)` averaged weights; last column is the bias.
    weights: Vec<Vec<f64>>,
}

impl Perceptron {
    /// Trains the perceptron.
    pub fn fit(data: &Dataset, config: &PerceptronConfig) -> Self {
        let d = data.dim();
        let k = data.num_classes();
        let mut w = vec![vec![0.0; d + 1]; k];
        let mut acc = vec![vec![0.0; d + 1]; k];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();

        for _ in 0..config.epochs.max(1) {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = data.record(i);
                let y = data.label(i);
                let scores: Vec<f64> = w.iter().map(|wc| score(wc, x)).collect();
                let pred = vecops::argmax(&scores).unwrap_or(0);
                if pred != y {
                    for (j, &v) in x.iter().enumerate() {
                        w[y][j] += v;
                        w[pred][j] -= v;
                    }
                    w[y][d] += 1.0;
                    w[pred][d] -= 1.0;
                }
                for (a, b) in acc.iter_mut().zip(&w) {
                    for (av, &bv) in a.iter_mut().zip(b) {
                        *av += bv;
                    }
                }
            }
        }
        Perceptron { weights: acc }
    }

    /// Per-class decision scores for a record.
    pub fn scores(&self, record: &[f64]) -> Vec<f64> {
        self.weights.iter().map(|w| score(w, record)).collect()
    }
}

fn score(w: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), x.len() + 1);
    vecops::dot(&w[..x.len()], x) + w[x.len()]
}

impl Model for Perceptron {
    fn predict(&self, record: &[f64]) -> usize {
        vecops::argmax(&self.scores(record)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_datasets::registry::UciDataset;
    use sap_datasets::split::stratified_split;

    #[test]
    fn learns_linearly_separable() {
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 10.0;
            records.push(vec![t, t + 2.0]);
            labels.push(0);
            records.push(vec![t, t - 2.0]);
            labels.push(1);
        }
        let data = Dataset::new(records, labels);
        let p = Perceptron::fit(&data, &PerceptronConfig::default());
        assert!((p.accuracy(&data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_on_synthetic_iris() {
        let data = UciDataset::Iris.generate(2);
        let tt = stratified_split(&data, 0.7, 1);
        let p = Perceptron::fit(&tt.train, &PerceptronConfig::default());
        let acc = p.accuracy(&tt.test);
        assert!(acc > 0.8, "iris-like perceptron accuracy {acc}");
    }

    #[test]
    fn deterministic() {
        let data = UciDataset::Heart.generate(1);
        let a = Perceptron::fit(&data, &PerceptronConfig::default());
        let b = Perceptron::fit(&data, &PerceptronConfig::default());
        assert_eq!(a.predict_dataset(&data), b.predict_dataset(&data));
    }

    #[test]
    fn scores_length_matches_classes() {
        let data = UciDataset::Wine.generate(1);
        let p = Perceptron::fit(&data, &PerceptronConfig::default());
        assert_eq!(p.scores(data.record(0)).len(), 3);
    }
}
