//! Cross-validation driver over any [`Model`] family.

use crate::Model;
use sap_datasets::split::k_fold;
use sap_datasets::Dataset;

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Per-fold test accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds.
    pub fn mean(&self) -> f64 {
        sap_linalg::vecops::mean(&self.fold_accuracies)
    }

    /// Sample standard deviation across folds.
    pub fn std_dev(&self) -> f64 {
        sap_linalg::vecops::std_dev(&self.fold_accuracies)
    }
}

/// Runs `k`-fold cross-validation: `trainer` maps each training fold to a
/// fitted model, which is scored on the held-out fold.
///
/// # Panics
///
/// Propagates [`k_fold`]'s panics (`k < 2` or more folds than records).
pub fn cross_validate<M, F>(data: &Dataset, k: usize, seed: u64, trainer: F) -> CvResult
where
    M: Model,
    F: Fn(&Dataset) -> M,
{
    let folds = k_fold(data, k, seed);
    let fold_accuracies = folds
        .iter()
        .map(|f| trainer(&f.train).accuracy(&f.test))
        .collect();
    CvResult { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnClassifier;
    use sap_datasets::registry::UciDataset;

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let data = UciDataset::Iris.generate(1);
        let result = cross_validate(&data, 5, 7, |train| KnnClassifier::fit(train, 5));
        assert_eq!(result.fold_accuracies.len(), 5);
        assert!(result.mean() > 0.85, "cv mean {}", result.mean());
        assert!(result.std_dev() < 0.2);
    }

    #[test]
    fn cv_deterministic() {
        let data = UciDataset::Wine.generate(2);
        let a = cross_validate(&data, 4, 3, |train| KnnClassifier::fit(train, 3));
        let b = cross_validate(&data, 4, 3, |train| KnnClassifier::fit(train, 3));
        assert_eq!(a.fold_accuracies, b.fold_accuracies);
    }
}
