//! Classification evaluation metrics.

/// Fraction of positions where `predictions[i] == truth[i]`.
///
/// # Panics
///
/// Panics when lengths differ or inputs are empty.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty evaluation set");
    let correct = predictions
        .iter()
        .zip(truth)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / truth.len() as f64
}

/// Accuracy deviation in *percentage points*, the unit of the paper's
/// Figures 5–6: `100 · (perturbed_accuracy − baseline_accuracy)`. Negative
/// values mean the perturbed model is worse.
pub fn accuracy_deviation(perturbed: f64, baseline: f64) -> f64 {
    100.0 * (perturbed - baseline)
}

/// A `k × k` confusion matrix: `counts[t][p]` is the number of records of
/// true class `t` predicted as `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ, inputs are empty, or a label is
    /// `>= num_classes`.
    pub fn new(predictions: &[usize], truth: &[usize], num_classes: usize) -> Self {
        assert_eq!(predictions.len(), truth.len(), "length mismatch");
        assert!(!truth.is_empty(), "empty evaluation set");
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&p, &t) in predictions.iter().zip(truth) {
            assert!(p < num_classes && t < num_classes, "label out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Overall accuracy from the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        let diag: usize = (0..self.num_classes()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }

    /// Recall of class `t` (`None` when the class has no true records).
    pub fn recall(&self, t: usize) -> Option<f64> {
        let row: usize = self.counts[t].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[t][t] as f64 / row as f64)
        }
    }

    /// Precision of class `p` (`None` when nothing was predicted as `p`).
    pub fn precision(&self, p: usize) -> Option<f64> {
        let col: usize = (0..self.num_classes()).map(|t| self.counts[t][p]).sum();
        if col == 0 {
            None
        } else {
            Some(self.counts[p][p] as f64 / col as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn deviation_in_percentage_points() {
        assert!((accuracy_deviation(0.93, 0.95) + 2.0).abs() < 1e-12);
        assert_eq!(accuracy_deviation(0.5, 0.5), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 0);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recall_precision() {
        let cm = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(0), Some(1.0));
        assert!((cm.precision(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_is_none() {
        let cm = ConfusionMatrix::new(&[0, 0], &[0, 0], 3);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.precision(2), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let _ = ConfusionMatrix::new(&[5], &[0], 2);
    }
}
