//! k-nearest-neighbour classification.

use crate::Model;
use sap_datasets::Dataset;
use sap_linalg::vecops;

/// A brute-force k-nearest-neighbour classifier.
///
/// Distance-based and therefore exactly invariant under rotation and
/// translation of the feature space — the property the paper's utility
/// argument rests on. Ties in the vote resolve toward the class of the
/// nearest member among the tied classes.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: Dataset,
    k: usize,
}

impl KnnClassifier {
    /// "Trains" (stores) a KNN model.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or `k > data.len()`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(k <= data.len(), "k exceeds training size");
        KnnClassifier {
            train: data.clone(),
            k,
        }
    }

    /// The neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Indices of the `k` nearest training records to `record`, nearest
    /// first (distance ties resolve to the smaller index).
    ///
    /// One streaming pass over the training set through the bounded
    /// max-heap kernel [`crate::topk::select_k_smallest`]: O(n·log k)
    /// comparisons and O(k) memory instead of the full O(n·log n) sort,
    /// with identical output order.
    pub fn neighbors(&self, record: &[f64]) -> Vec<usize> {
        crate::topk::select_k_smallest(
            self.train
                .records()
                .iter()
                .map(|r| vecops::dist2_sq(record, r)),
            self.k,
        )
        .into_iter()
        .map(|(_, i)| i)
        .collect()
    }
}

impl Model for KnnClassifier {
    fn predict(&self, record: &[f64]) -> usize {
        let neigh = self.neighbors(record);
        let mut votes = vec![0usize; self.train.num_classes()];
        for &i in &neigh {
            votes[self.train.label(i)] += 1;
        }
        let best = votes.iter().max().copied().unwrap_or(0);
        // Tie-break toward the class of the nearest tied neighbour.
        for &i in &neigh {
            if votes[self.train.label(i)] == best {
                return self.train.label(i);
            }
        }
        unreachable!("some neighbour has the winning class");
    }

    /// Row-parallel brute-force sweep: each record's distance scan is
    /// independent, so large blocks split across the
    /// [`sap_linalg::parallel`] splitter with results identical to the
    /// serial walk.
    fn predict_block(&self, block: sap_linalg::MatrixView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.resize(block.rows(), 0);
        let flops = block
            .rows()
            .saturating_mul(self.train.len())
            .saturating_mul(block.cols());
        if sap_linalg::parallel::worth_splitting(flops) && block.rows() > 1 {
            let per = block.rows().div_ceil(sap_linalg::parallel::threads());
            sap_linalg::parallel::for_each_chunk_mut(out, per, |chunk_idx, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = self.predict(block.row(chunk_idx * per + i));
                }
            });
        } else {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.predict(block.row(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_datasets::registry::UciDataset;
    use sap_datasets::split::stratified_split;
    use sap_linalg::MatrixView;

    #[test]
    fn predict_block_matches_per_record_predict() {
        let data = UciDataset::Iris.generate(3);
        let knn = KnnClassifier::fit(&data, 5);
        let flat: Vec<f64> = data.records().iter().flatten().copied().collect();
        let block = MatrixView::new(data.len(), data.dim(), &flat);
        let mut out = Vec::new();
        knn.predict_block(block, &mut out);
        let serial: Vec<usize> = data.records().iter().map(|r| knn.predict(r)).collect();
        assert_eq!(out, serial);
    }

    fn xor_corners() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn one_nn_memorizes_training_data() {
        let data = xor_corners();
        let knn = KnnClassifier::fit(&data, 1);
        assert!((knn.accuracy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_point_wins() {
        let data = xor_corners();
        let knn = KnnClassifier::fit(&data, 1);
        assert_eq!(knn.predict(&[0.1, 0.1]), 0);
        assert_eq!(knn.predict(&[0.1, 0.9]), 1);
    }

    #[test]
    fn k3_majority_vote() {
        // Two class-0 points near origin, one class-1 outlier: k=3 vote at
        // origin must be class 0.
        let data = Dataset::new(
            vec![vec![0.0, 0.0], vec![0.2, 0.0], vec![5.0, 5.0]],
            vec![0, 0, 1],
        );
        let knn = KnnClassifier::fit(&data, 3);
        assert_eq!(knn.predict(&[0.0, 0.1]), 0);
    }

    #[test]
    fn tie_breaks_to_nearest() {
        // k=2 with one vote each; the nearer neighbour's class wins.
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        let knn = KnnClassifier::fit(&data, 2);
        assert_eq!(knn.predict(&[0.1]), 0);
        assert_eq!(knn.predict(&[0.9]), 1);
    }

    #[test]
    fn neighbors_sorted_by_distance() {
        let data = Dataset::new(vec![vec![0.0], vec![2.0], vec![1.0]], vec![0, 0, 0]);
        let knn = KnnClassifier::fit(&data, 3);
        assert_eq!(knn.neighbors(&[0.0]), vec![0, 2, 1]);
    }

    #[test]
    fn decent_accuracy_on_separable_synthetic() {
        let data = UciDataset::Iris.generate(1);
        let tt = stratified_split(&data, 0.7, 2);
        let knn = KnnClassifier::fit(&tt.train, 5);
        let acc = knn.accuracy(&tt.test);
        assert!(acc > 0.85, "iris-like accuracy {acc} too low");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KnnClassifier::fit(&xor_corners(), 0);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn oversized_k_panics() {
        let _ = KnnClassifier::fit(&xor_corners(), 10);
    }
}
