//! Gaussian naive Bayes — the *negative control* for geometric perturbation.
//!
//! The paper's utility argument covers classifiers that depend only on
//! distances or inner products (KNN, kernel machines, linear models). Naive
//! Bayes is **not** in that family: it models each attribute independently,
//! and a rotation mixes attributes, so its accuracy is *not* preserved under
//! geometric perturbation. (This is why reference \[3\] of the brief — Zhang
//! et al.'s SIGKDD'05 scheme — needed a different construction for
//! Bayes-style classifiers.) The invariance test suite uses this classifier
//! to demonstrate the boundary of the paper's claim.

use crate::Model;
use sap_datasets::Dataset;

/// A Gaussian naive Bayes classifier: per class, each attribute is modeled
/// as an independent normal; prediction maximizes the log posterior with
/// Laplace-smoothed class priors.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    /// `log P(class)`, length `num_classes` (empty classes get `-inf`).
    log_priors: Vec<f64>,
    /// Per class, per attribute `(mean, variance)`.
    stats: Vec<Vec<(f64, f64)>>,
}

/// Variance floor to keep degenerate (constant) attributes finite.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Fits class priors and per-attribute Gaussians.
    pub fn fit(data: &Dataset) -> Self {
        let k = data.num_classes();
        let d = data.dim();
        let n = data.len() as f64;
        let counts = data.class_counts();

        let log_priors = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    ((c as f64 + 1.0) / (n + k as f64)).ln()
                }
            })
            .collect();

        let mut sums = vec![vec![0.0; d]; k];
        let mut sq_sums = vec![vec![0.0; d]; k];
        for (rec, lab) in data.iter() {
            for (j, &v) in rec.iter().enumerate() {
                sums[lab][j] += v;
                sq_sums[lab][j] += v * v;
            }
        }
        let stats = (0..k)
            .map(|c| {
                let cn = counts[c] as f64;
                (0..d)
                    .map(|j| {
                        if counts[c] == 0 {
                            (0.0, 1.0)
                        } else {
                            let mean = sums[c][j] / cn;
                            let var = (sq_sums[c][j] / cn - mean * mean).max(VAR_FLOOR);
                            (mean, var)
                        }
                    })
                    .collect()
            })
            .collect();

        GaussianNaiveBayes { log_priors, stats }
    }

    /// Per-class log posterior (up to the shared evidence constant).
    pub fn log_posteriors(&self, record: &[f64]) -> Vec<f64> {
        self.log_priors
            .iter()
            .zip(&self.stats)
            .map(|(&lp, attrs)| {
                if lp == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut ll = lp;
                for (&v, &(mean, var)) in record.iter().zip(attrs) {
                    let diff = v - mean;
                    ll += -0.5 * ((std::f64::consts::TAU * var).ln() + diff * diff / var);
                }
                ll
            })
            .collect()
    }
}

impl Model for GaussianNaiveBayes {
    fn predict(&self, record: &[f64]) -> usize {
        sap_linalg::vecops::argmax(&self.log_posteriors(record)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_datasets::registry::UciDataset;
    use sap_datasets::split::stratified_split;

    #[test]
    fn separable_gaussians_classified() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..150 {
            records.push(vec![sap_linalg::randn(&mut rng) * 0.3, 0.0]);
            labels.push(0);
            records.push(vec![3.0 + sap_linalg::randn(&mut rng) * 0.3, 0.0]);
            labels.push(1);
        }
        let data = Dataset::new(records, labels);
        let nb = GaussianNaiveBayes::fit(&data);
        assert!(nb.accuracy(&data) > 0.97);
    }

    #[test]
    fn decent_on_synthetic_iris() {
        let data = UciDataset::Iris.generate(1);
        let tt = stratified_split(&data, 0.7, 2);
        let nb = GaussianNaiveBayes::fit(&tt.train);
        let acc = nb.accuracy(&tt.test);
        assert!(acc > 0.8, "NB iris accuracy {acc}");
    }

    #[test]
    fn log_posteriors_prefer_true_class() {
        let data = UciDataset::Wine.generate(2);
        let nb = GaussianNaiveBayes::fit(&data);
        let lp = nb.log_posteriors(data.record(0));
        assert_eq!(lp.len(), 3);
        assert!(lp.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn missing_class_never_predicted() {
        let data = Dataset::with_num_classes(
            vec![vec![0.0], vec![0.1], vec![1.0], vec![1.1]],
            vec![0, 0, 2, 2],
            3,
        );
        let nb = GaussianNaiveBayes::fit(&data);
        for (rec, _) in data.iter() {
            assert_ne!(nb.predict(rec), 1, "empty class must never win");
        }
    }

    #[test]
    fn constant_attribute_handled() {
        let data = Dataset::new(
            vec![
                vec![5.0, 0.0],
                vec![5.0, 0.1],
                vec![5.0, 1.0],
                vec![5.0, 1.1],
            ],
            vec![0, 0, 1, 1],
        );
        let nb = GaussianNaiveBayes::fit(&data);
        assert!(nb.accuracy(&data) > 0.9);
    }
}
