//! Session orchestration: run every role of a session, collect the
//! outcome.
//!
//! [`run_session`] is the batteries-included entry point over the
//! in-memory hub (with optional fault injection). [`run_session_over`] is
//! the generic spine beneath it: hand it any set of [`Transport`]
//! endpoints (hub, TCP, mux-virtual, fault-wrapped, …) and any [`Codec`],
//! and the same protocol code runs unchanged. Both are thin wrappers over
//! [`spawn_session`], which launches the session's roles as a gang on an
//! [`ActorPool`] and returns a [`SessionHandle`] — the multi-session
//! building block `sap-server` drives: `N` concurrent sessions share one
//! fixed pool instead of spawning `N × (k + 1)` dedicated threads.

use crate::audit::AuditLog;
use crate::coordinator::run_coordinator;
use crate::error::SapError;
use crate::link::DEFAULT_BLOCK_ROWS;
use crate::liveness::{Deadline, Roster};
use crate::messages::SlotTag;
use crate::miner::run_miner;
use crate::party::run_provider;
use crate::runtime::{ActorPool, Gang, QosClass, SessionCollect, SessionHandle, SessionShared};
use crate::stream::StreamMonitor;
use parking_lot::{Condvar, Mutex};
use sap_datasets::Dataset;
use sap_net::codec::{Codec, WireCodec};
use sap_net::node::Node;
use sap_net::sim::{FaultConfig, FaultyTransport};
use sap_net::transport::InMemoryHub;
use sap_net::{PartyId, SessionId, Transport};
use sap_perturb::Perturbation;
use sap_privacy::optimize::OptimizerConfig;
use std::sync::Arc;
use std::time::Duration;

/// Which data plane a session's roles run on.
///
/// Both planes produce **byte-identical** [`SapOutcome`]s (the property
/// `tests/stream_equivalence.rs` pins); they differ only in *when* work
/// happens. `Streaming` is the default — `Buffered` is kept as the
/// reference implementation and for A/B benchmarking
/// (`stream_overlap`, `BENCH_stream.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPlane {
    /// Every role buffers a complete dataset stream before touching a
    /// row (the pre-PR-3 behavior).
    Buffered,
    /// Row blocks are perturbed, relayed, decoded, and adapted **as they
    /// arrive**, overlapping compute with seal/unseal and transport I/O.
    #[default]
    Streaming,
}

/// Session-wide configuration.
#[derive(Debug, Clone)]
pub struct SapConfig {
    /// Noise level σ of every provider's perturbation (the brief's *common
    /// noise component* `Δ` policy).
    pub noise_sigma: f64,
    /// Settings for each provider's local randomized optimizer.
    pub optimizer: OptimizerConfig,
    /// Shared session secret for the sealed channels.
    pub session_secret: u64,
    /// Master seed; each role derives its own stream.
    pub seed: u64,
    /// Per-receive timeout for every role.
    pub timeout: Duration,
    /// Session-wide wall-clock budget shared by every role (the
    /// [`crate::liveness::Deadline`] threaded through all blocking
    /// receives). Generous by design — the per-receive `timeout` catches
    /// ordinary starvation long before this trips; the budget is the
    /// cooperative backstop that replaces being reclaimed by a server's
    /// age GC.
    pub session_budget: Duration,
    /// Rows per dataset stream block (the chunking grain of the exchange).
    pub block_rows: usize,
    /// Whether roles process dataset streams block-by-block as they
    /// arrive ([`DataPlane::Streaming`], the default) or buffer whole
    /// streams first ([`DataPlane::Buffered`]).
    pub data_plane: DataPlane,
    /// Optional fault model applied to every party's *send* path (chaos
    /// testing). SAP has no retransmission layer, so any lost frame makes
    /// the session abort with a timeout instead of completing — the safety
    /// property the failure-injection tests assert.
    pub fault_config: Option<FaultConfig>,
    /// Scheduling class of the session's gang
    /// ([`QosClass::Interactive`] by default): interactive gangs are
    /// admitted with strict priority over queued batch gangs; batch gangs
    /// age into the interactive queue instead of starving.
    pub qos: QosClass,
}

impl Default for SapConfig {
    fn default() -> Self {
        SapConfig {
            noise_sigma: 0.05,
            optimizer: OptimizerConfig::default(),
            session_secret: 0x5A9_u64 ^ 0x1234_5678,
            seed: 0xD15E,
            timeout: Duration::from_secs(30),
            session_budget: Duration::from_secs(300),
            block_rows: DEFAULT_BLOCK_ROWS,
            data_plane: DataPlane::default(),
            fault_config: None,
            qos: QosClass::default(),
        }
    }
}

impl SapConfig {
    /// A small/fast configuration for tests: few optimizer candidates, small
    /// evaluation samples, short timeout.
    pub fn quick_test() -> Self {
        SapConfig {
            noise_sigma: 0.05,
            optimizer: OptimizerConfig {
                candidates: 4,
                noise_sigma: 0.05,
                known_points: 4,
                eval_sample: 80,
                use_ica: false,
                ..OptimizerConfig::default()
            },
            session_secret: 42,
            seed: 7,
            timeout: Duration::from_secs(10),
            session_budget: Duration::from_secs(120),
            block_rows: 64,
            data_plane: DataPlane::default(),
            fault_config: None,
            qos: QosClass::default(),
        }
    }
}

/// Per-provider result of a session.
#[derive(Debug, Clone)]
pub struct ProviderReport {
    /// The provider.
    pub provider: PartyId,
    /// Locally optimized privacy guarantee `ρᵢ`.
    pub rho_local: f64,
    /// Guarantee of the provider's data under the unified space, `ρᵢᴳ`.
    pub rho_unified: f64,
    /// Satisfaction level `sᵢ = ρᵢᴳ / ρᵢ`.
    pub satisfaction: f64,
    /// Privacy guarantee of every optimizer candidate (for Figure 2).
    /// Under the staged schedule, pruned candidates carry cheap-stage
    /// scores (see [`sap_privacy::optimize::OptimizedPerturbation::history`]).
    pub optimizer_history: Vec<f64>,
    /// Per-stage telemetry of this provider's optimizer run (wall times,
    /// candidates evaluated/pruned, ICA applications).
    pub optimizer: sap_privacy::EngineStats,
}

/// Outcome of a completed session.
#[derive(Debug)]
pub struct SapOutcome {
    /// The miner's pooled dataset, all partitions in the unified space.
    pub unified: Dataset,
    /// One report per provider, in provider order (coordinator last).
    pub reports: Vec<ProviderReport>,
    /// Source identifiability from the miner's view, `1/(k−1)`.
    pub identifiability: f64,
    /// The audit ledger of every delivery (for information-flow checks).
    pub audit: AuditLog,
    /// Which provider forwarded each slot — everything the miner knows about
    /// provenance.
    pub forwarder_of_slot: Vec<(SlotTag, PartyId)>,
    /// Row blocks the miner received through the anonymizing relay hop
    /// (feeds the server's `blocks_relayed` metric).
    pub relayed_blocks: u64,
    /// Streaming data-plane statistics (all zeros on the buffered plane).
    /// Timing-dependent observability — excluded from the
    /// streaming/buffered equivalence contract.
    pub stream: crate::stream::StreamStats,
    /// The unified target space (exposed by the test harness for analysis;
    /// in deployment only providers and the coordinator hold it).
    pub target: Perturbation,
}

/// Session-wide optimizer telemetry: every provider's engine run summed
/// up — what `sap-server` folds into its `ServerMetrics` counters
/// (optimizer wall time, candidates evaluated/pruned).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptimizerSummary {
    /// Total optimizer wall time across the session's providers (seconds).
    pub wall_s: f64,
    /// Candidates scored by the cheap stage, all providers.
    pub candidates_evaluated: u64,
    /// Candidates pruned before the expensive stage, all providers.
    pub candidates_pruned: u64,
    /// Survivors on which the ICA reconstruction applied, all providers.
    pub ica_applied: u64,
}

impl SapOutcome {
    /// Number of providers `k`.
    pub fn num_providers(&self) -> usize {
        self.reports.len()
    }

    /// Aggregates every provider's optimizer telemetry.
    pub fn optimizer_summary(&self) -> OptimizerSummary {
        let mut s = OptimizerSummary::default();
        for r in &self.reports {
            s.wall_s += r.optimizer.total_s;
            s.candidates_evaluated += r.optimizer.candidates as u64;
            s.candidates_pruned += r.optimizer.pruned as u64;
            s.ica_applied += r.optimizer.ica_applied as u64;
        }
        s
    }

    /// Per-provider overall SAP risk (eq. 2 of the brief), using the
    /// best **full-suite** guarantee the provider observed as the
    /// empirical bound `b̂`: `rho_local` is by construction the maximum
    /// full-suite score of the optimizer run, and `rho_unified` the
    /// unified space's full-suite score. The per-candidate history is
    /// deliberately *not* folded in — under the staged schedule pruned
    /// candidates carry cheap-stage upper bounds that no full evaluation
    /// ever measured, which would silently inflate `b̂`.
    /// Degenerate runs (all-zero guarantees) yield risk `1.0`.
    pub fn risk_summary(&self) -> Vec<f64> {
        let k = self.num_providers();
        self.reports
            .iter()
            .map(|r| {
                let bound = r.rho_local.max(r.rho_unified);
                if bound <= 1e-12 {
                    1.0
                } else {
                    sap_privacy::risk::sap_risk(bound, r.rho_local, r.satisfaction, k)
                }
            })
            .collect()
    }
}

/// Party id assigned to the miner.
pub const MINER_ID: PartyId = PartyId(1_000);

/// An owned context bundle for driving a single role **outside**
/// [`spawn_session`] — protocol test harnesses and standalone drivers.
/// [`StandaloneCtx::ctx`] borrows it as the [`RoleCtx`] the role
/// functions take. Defaults to an unbounded deadline (the driver owns
/// pacing) and fresh audit/monitor handles.
pub struct StandaloneCtx {
    /// The session's parties.
    pub roster: Roster,
    /// Session configuration.
    pub config: SapConfig,
    /// Delivery ledger (cloneable shared handle).
    pub audit: AuditLog,
    /// Streaming telemetry (cloneable shared handle).
    pub monitor: StreamMonitor,
    /// Budget/cancellation token.
    pub deadline: Deadline,
}

impl StandaloneCtx {
    /// Bundles a roster and config with fresh audit/monitor handles and
    /// an unbounded deadline.
    pub fn new(roster: Roster, config: SapConfig) -> Self {
        StandaloneCtx {
            roster,
            config,
            audit: AuditLog::new(),
            monitor: StreamMonitor::new(),
            deadline: Deadline::unbounded(),
        }
    }

    /// Borrows the bundle as the [`RoleCtx`] the role functions take.
    pub fn ctx(&self) -> RoleCtx<'_> {
        RoleCtx {
            roster: &self.roster,
            config: &self.config,
            audit: &self.audit,
            monitor: &self.monitor,
            deadline: &self.deadline,
        }
    }
}

/// Everything a role shares with its session beyond its node and data:
/// configuration, observability, and the liveness regime (roster +
/// deadline token). One borrowed bundle instead of a parameter per
/// concern — every blocking receive in the role loops goes through it
/// ([`crate::link::recv_message_ctx`] / [`crate::link::recv_flow_ctx`]).
pub struct RoleCtx<'a> {
    /// The session's parties (providers in position order, coordinator
    /// last) plus the miner.
    pub roster: &'a Roster,
    /// Session configuration.
    pub config: &'a SapConfig,
    /// The shared delivery ledger.
    pub audit: &'a AuditLog,
    /// Streaming data-plane telemetry.
    pub monitor: &'a StreamMonitor,
    /// The session-wide budget and cancellation token.
    pub deadline: &'a Deadline,
}

fn validate_locals(locals: &[Dataset]) -> Result<(usize, usize), SapError> {
    let k = locals.len();
    if k < 3 {
        return Err(SapError::TooFewProviders { got: k });
    }
    let dim = locals[0].dim();
    let num_classes = locals
        .iter()
        .map(Dataset::num_classes)
        .max()
        .expect("k >= 3");
    for (i, d) in locals.iter().enumerate() {
        if d.dim() != dim {
            return Err(SapError::InconsistentInputs(format!(
                "provider {i} has dim {} but provider 0 has {dim}",
                d.dim()
            )));
        }
    }
    Ok((dim, num_classes))
}

/// Runs a complete SAP session over an in-memory network: providers
/// `DP₀..DP_{k−1}` (the last one doubles as coordinator) plus the miner,
/// each on its own thread.
///
/// `locals[i]` is provider `i`'s private dataset; all must share
/// dimensionality and class count.
///
/// # Errors
///
/// * [`SapError::TooFewProviders`] for `k < 3`.
/// * [`SapError::InconsistentInputs`] when local datasets disagree.
/// * Any role's protocol/timeout error, propagated.
pub fn run_session(locals: Vec<Dataset>, config: &SapConfig) -> Result<SapOutcome, SapError> {
    validate_locals(&locals)?;
    let k = locals.len();
    let hub = InMemoryHub::new();
    let providers: Vec<PartyId> = (0..k as u64).map(PartyId).collect();

    // Endpoints must be created before any thread starts sending.
    let endpoints: Vec<_> = providers.iter().map(|&p| hub.endpoint(p)).collect();
    let miner_endpoint = hub.endpoint(MINER_ID);

    match config.fault_config {
        None => run_session_over(locals, config, endpoints, miner_endpoint, WireCodec),
        Some(faults) => {
            // Same generic path, transports wrapped in the fault injector
            // with a distinct deterministic stream per party.
            let wrapped: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(pos, endpoint)| {
                    FaultyTransport::new(endpoint, faults.salted_for(pos as u64 + 1))
                })
                .collect();
            let miner_wrapped =
                FaultyTransport::new(miner_endpoint, faults.salted_for(FaultConfig::MINER_SALT));
            run_session_over(locals, config, wrapped, miner_wrapped, WireCodec)
        }
    }
}

/// Runs a complete SAP session over caller-supplied transports and codec —
/// the transport-agnostic spine behind [`run_session`].
///
/// `provider_transports[i]` must be the endpoint whose
/// [`Transport::local_id`] is provider `i`; the last provider doubles as
/// coordinator. `miner_transport` carries the miner role. Every endpoint
/// must be able to reach every other (full mesh), as with
/// [`InMemoryHub`] endpoints or a [`sap_net::tcp::local_mesh`].
///
/// Internally this is [`spawn_session`] on a session-private
/// [`ActorPool`] of exactly `k + 1` workers, harvested inline — the same
/// thread budget the old dedicated-thread orchestration used, now
/// expressed through the pooled runtime a server shares across sessions.
///
/// # Errors
///
/// As [`run_session`].
pub fn run_session_over<T, C>(
    locals: Vec<Dataset>,
    config: &SapConfig,
    provider_transports: Vec<T>,
    miner_transport: T,
    codec: C,
) -> Result<SapOutcome, SapError>
where
    T: Transport + 'static,
    C: Codec,
{
    let codecs = SessionCodecs::uniform(codec, locals.len());
    run_session_over_with_codecs(locals, config, provider_transports, miner_transport, codecs)
}

/// [`run_session_over`] with a **per-party** codec assignment — the entry
/// point for heterogeneous meshes (e.g. one JSON debug client beside
/// binary wire clients). See [`SessionCodecs`] for the pairing rules.
///
/// # Errors
///
/// As [`run_session`], plus [`SapError::InconsistentInputs`] when the
/// codec count disagrees with the provider count.
pub fn run_session_over_with_codecs<T, C>(
    locals: Vec<Dataset>,
    config: &SapConfig,
    provider_transports: Vec<T>,
    miner_transport: T,
    codecs: SessionCodecs<C>,
) -> Result<SapOutcome, SapError>
where
    T: Transport + 'static,
    C: Codec,
{
    validate_locals(&locals)?;
    let pool = ActorPool::new(locals.len() + 1);
    let handle = spawn_session_with_codecs(
        &pool,
        SessionId::SOLO,
        locals,
        config,
        provider_transports,
        miner_transport,
        codecs,
    )?;
    handle.harvest(None)
}

/// Launches every role of one session as a gang on `pool` and returns its
/// lifecycle handle — the primitive a multi-session server builds on. The
/// gang starts once the pool has `k + 1` free workers; queued sessions
/// start in QoS order (class priority with batch aging) as capacity
/// frees up, and a queued session whose budget provably can no longer be
/// met is shed with [`SapError::AdmissionShed`].
///
/// All of the session's nodes are stamped with `session`: over a
/// [`sap_net::mux::SessionMux`] mesh, that is what isolates this
/// session's frames from every sibling sharing the physical transports.
///
/// # Errors
///
/// * [`SapError::TooFewProviders`] / [`SapError::InconsistentInputs`] on
///   invalid inputs (checked before anything is spawned).
/// * [`SapError::Capacity`] when `k + 1` exceeds the pool size.
pub fn spawn_session<T, C>(
    pool: &ActorPool,
    session: SessionId,
    locals: Vec<Dataset>,
    config: &SapConfig,
    provider_transports: Vec<T>,
    miner_transport: T,
    codec: C,
) -> Result<SessionHandle, SapError>
where
    T: Transport + 'static,
    C: Codec,
{
    let codecs = SessionCodecs::uniform(codec, locals.len());
    spawn_session_with_codecs(
        pool,
        session,
        locals,
        config,
        provider_transports,
        miner_transport,
        codecs,
    )
}

/// Per-role codec assignment for a heterogeneous session: `providers[i]`
/// serializes provider `i`'s traffic (the last provider doubles as
/// coordinator), `miner` the miner's.
///
/// Every pair of roles that exchanges messages must be able to decode
/// each other's encoding. Either give every role the same codec
/// ([`SessionCodecs::uniform`], what [`spawn_session`] does), or use
/// format-detecting codecs like
/// [`sap_net::codec::AutoCodec`] so a JSON-emitting client can sit beside
/// wire-emitting clients on one mesh.
pub struct SessionCodecs<C> {
    /// Codec of each provider's node, in provider position order.
    pub providers: Vec<C>,
    /// Codec of the miner's node.
    pub miner: C,
}

impl<C: Codec> SessionCodecs<C> {
    /// The homogeneous assignment: every role speaks `codec`.
    pub fn uniform(codec: C, k: usize) -> Self {
        SessionCodecs {
            providers: vec![codec.clone(); k],
            miner: codec,
        }
    }
}

/// [`spawn_session`] with a **per-party** codec assignment — the
/// heterogeneous-mesh variant behind [`run_session_over_with_codecs`].
///
/// # Errors
///
/// As [`spawn_session`], plus [`SapError::InconsistentInputs`] when
/// `codecs.providers` disagrees with the provider count.
pub fn spawn_session_with_codecs<T, C>(
    pool: &ActorPool,
    session: SessionId,
    locals: Vec<Dataset>,
    config: &SapConfig,
    provider_transports: Vec<T>,
    miner_transport: T,
    codecs: SessionCodecs<C>,
) -> Result<SessionHandle, SapError>
where
    T: Transport + 'static,
    C: Codec,
{
    let (_dim, num_classes) = validate_locals(&locals)?;
    let k = locals.len();
    if provider_transports.len() != k {
        return Err(SapError::InconsistentInputs(format!(
            "{} transports for {k} providers",
            provider_transports.len()
        )));
    }
    if codecs.providers.len() != k {
        return Err(SapError::InconsistentInputs(format!(
            "{} codecs for {k} providers",
            codecs.providers.len()
        )));
    }
    let providers: Vec<PartyId> = provider_transports
        .iter()
        .map(Transport::local_id)
        .collect();
    let coordinator = providers[k - 1];
    let audit = AuditLog::new();
    let monitor = StreamMonitor::new();
    let roster = Arc::new(Roster::new(providers.clone(), MINER_ID));
    // One deadline per session: budget from the config, cancelled the
    // moment any role fails or the owner aborts, observed by every
    // blocking receive of every role.
    let deadline = Deadline::after(config.session_budget);

    let shared = Arc::new(SessionShared {
        state: Mutex::new(SessionCollect {
            reports: (0..k).map(|_| None).collect(),
            target: None,
            miner: None,
            role_errors: (0..=k).map(|_| None).collect(),
            finished_roles: 0,
            total_roles: k + 1,
            aborted: false,
            shed: None,
            harvested: false,
            queue_wait: None,
            admitted_at: None,
            finished_at: None,
            retained: Vec::new(),
        }),
        progress: Condvar::new(),
        session,
        num_classes,
        k,
        audit: audit.clone(),
        monitor: monitor.clone(),
        deadline: deadline.clone(),
        on_abort: Mutex::new(None),
    });

    // Roles share the locals through `Arc` — the session runs k roles
    // without cloning a single `Dataset`.
    let locals: Vec<Arc<Dataset>> = locals.into_iter().map(Arc::new).collect();
    let mut transports: Vec<Option<T>> = provider_transports.into_iter().map(Some).collect();
    let mut gang = Gang::new(config.qos);

    // Providers 0..k−1 (all but the coordinator).
    for pos in 0..k - 1 {
        let transport = transports[pos]
            .take()
            .ok_or_else(|| SapError::Protocol("endpoint consumed twice".into()))?;
        let node = Node::for_session(
            transport,
            codecs.providers[pos].clone(),
            config.session_secret,
            session,
        );
        let data = Arc::clone(&locals[pos]);
        let cfg = config.clone();
        let audit = audit.clone();
        let pid = providers[pos];
        let shared = Arc::clone(&shared);
        let monitor = monitor.clone();
        let roster = Arc::clone(&roster);
        let deadline = deadline.clone();
        gang.push(move || {
            shared.run_role(pos, pid, || {
                let ctx = RoleCtx {
                    roster: &roster,
                    config: &cfg,
                    audit: &audit,
                    monitor: &monitor,
                    deadline: &deadline,
                };
                let report = run_provider(&node, &data, &ctx)?;
                shared.record(|s| s.reports[pos] = Some(report));
                Ok(())
            });
            // Park the transport until harvest: dropping it here would
            // close live TCP sockets and make this role's graceful
            // completion look like a peer death to its siblings.
            shared.retain(Box::new(node));
        });
    }

    // Coordinator (last provider).
    {
        let transport = transports[k - 1]
            .take()
            .ok_or_else(|| SapError::Protocol("coordinator endpoint consumed".into()))?;
        let node = Node::for_session(
            transport,
            codecs.providers[k - 1].clone(),
            config.session_secret,
            session,
        );
        let data = Arc::clone(&locals[k - 1]);
        let cfg = config.clone();
        let audit = audit.clone();
        let shared = Arc::clone(&shared);
        let monitor = monitor.clone();
        let roster = Arc::clone(&roster);
        let deadline = deadline.clone();
        gang.push(move || {
            shared.run_role(k - 1, coordinator, || {
                let ctx = RoleCtx {
                    roster: &roster,
                    config: &cfg,
                    audit: &audit,
                    monitor: &monitor,
                    deadline: &deadline,
                };
                let (report, target) = run_coordinator(&node, &data, &ctx)?;
                shared.record(|s| {
                    s.reports[k - 1] = Some(report);
                    s.target = Some(target);
                });
                Ok(())
            });
            shared.retain(Box::new(node));
        });
    }

    // Miner.
    {
        let node = Node::for_session(
            miner_transport,
            codecs.miner.clone(),
            config.session_secret,
            session,
        );
        let cfg = config.clone();
        let audit = audit.clone();
        let shared = Arc::clone(&shared);
        let monitor = monitor.clone();
        let roster = Arc::clone(&roster);
        let deadline = deadline.clone();
        gang.push(move || {
            shared.run_role(k, MINER_ID, || {
                let ctx = RoleCtx {
                    roster: &roster,
                    config: &cfg,
                    audit: &audit,
                    monitor: &monitor,
                    deadline: &deadline,
                };
                let out = run_miner(&node, k, &ctx)?;
                shared.record(|s| s.miner = Some(out));
                Ok(())
            });
            shared.retain(Box::new(node));
        });
    }

    // Scheduler wiring: the gang checks the session's own deadline at
    // admission time, reports its queue wait when admitted, and — if
    // shed — cancels the deadline, marks the session, and runs the
    // owner's abort hook so any transport routes opened for the session
    // are torn down even though no role ever ran.
    gang.set_deadline(deadline.clone());
    {
        let shared = Arc::clone(&shared);
        gang.set_on_admit(move |waited| {
            let mut state = shared.state.lock();
            state.queue_wait = Some(waited);
            state.admitted_at = Some(std::time::Instant::now());
        });
    }
    {
        let shared = Arc::clone(&shared);
        gang.set_on_shed(move |info| {
            shared.deadline.cancel();
            let hook = shared.on_abort.lock().take();
            {
                let mut state = shared.state.lock();
                state.queue_wait = Some(info.waited);
                state.shed = Some(info);
            }
            shared.progress.notify_all();
            if let Some(hook) = hook {
                hook();
            }
        });
    }

    pool.submit(gang)?;
    Ok(SessionHandle { shared })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_datasets::partition::{partition, PartitionScheme};
    use sap_datasets::registry::UciDataset;
    use sap_net::codec::JsonCodec;

    #[test]
    fn session_runs_end_to_end() {
        let pooled = UciDataset::Iris.generate(1);
        let locals = partition(&pooled, 4, PartitionScheme::Uniform, 2);
        let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();

        assert_eq!(outcome.unified.len(), pooled.len());
        assert_eq!(outcome.unified.dim(), pooled.dim());
        assert_eq!(outcome.reports.len(), 4);
        assert!((outcome.identifiability - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(outcome.forwarder_of_slot.len(), 4);
        for r in &outcome.reports {
            assert!(r.rho_local >= 0.0);
            assert!(r.satisfaction >= 0.0);
        }
    }

    #[test]
    fn session_runs_under_json_codec() {
        // The whole protocol is codec-generic: swap in the debug codec and
        // nothing else changes.
        let pooled = UciDataset::Iris.generate(5);
        let locals = partition(&pooled, 3, PartitionScheme::Uniform, 6);
        let hub = InMemoryHub::new();
        let providers: Vec<PartyId> = (0..3).map(PartyId).collect();
        let endpoints: Vec<_> = providers.iter().map(|&p| hub.endpoint(p)).collect();
        let miner = hub.endpoint(MINER_ID);
        let outcome = run_session_over(
            locals,
            &SapConfig::quick_test(),
            endpoints,
            miner,
            JsonCodec,
        )
        .unwrap();
        assert_eq!(outcome.unified.len(), pooled.len());
    }

    #[test]
    fn audit_flow_invariants_hold() {
        let pooled = UciDataset::Iris.generate(2);
        let locals = partition(&pooled, 5, PartitionScheme::Uniform, 3);
        let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();

        let providers: Vec<PartyId> = (0..5).map(PartyId).collect();
        let coordinator = PartyId(4);
        outcome
            .audit
            .verify_flow(coordinator, MINER_ID, &providers)
            .unwrap();
        assert!(!outcome.audit.party_saw_data(coordinator));
        assert!(outcome.audit.party_saw_data(MINER_ID));
        assert!(
            !outcome.audit.party_saw_parameters(MINER_ID) || {
                // The adaptor table is a parameter-class payload the miner is
                // *supposed* to see; verify nothing else parameter-like arrived.
                outcome
                    .audit
                    .events()
                    .iter()
                    .filter(|e| e.to == MINER_ID && e.carries_parameters)
                    .all(|e| e.kind == "adaptor-table")
            }
        );
    }

    #[test]
    fn coordinator_never_forwards_to_miner() {
        let pooled = UciDataset::Wine.generate(3);
        let locals = partition(&pooled, 4, PartitionScheme::ClassSkewed, 4);
        let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();
        let coordinator = PartyId(3);
        for (_, forwarder) in &outcome.forwarder_of_slot {
            assert_ne!(*forwarder, coordinator, "coordinator must never relay data");
        }
    }

    #[test]
    fn fully_lossy_network_aborts_with_timeout() {
        use sap_net::sim::FaultConfig;
        let pooled = UciDataset::Iris.generate(8);
        let locals = partition(&pooled, 4, PartitionScheme::Uniform, 9);
        let config = SapConfig {
            fault_config: Some(FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::default()
            }),
            timeout: std::time::Duration::from_millis(200),
            ..SapConfig::quick_test()
        };
        let err = run_session(locals, &config).unwrap_err();
        assert!(
            matches!(err, SapError::Timeout { .. }),
            "lossy network must abort, got {err}"
        );
    }

    #[test]
    fn duplicating_network_never_returns_wrong_result() {
        use sap_net::sim::FaultConfig;
        // Duplicated frames either trip the framing/slot duplicate checks
        // (abort) or are absorbed where idempotent; a success must still be
        // correct.
        let pooled = UciDataset::Iris.generate(9);
        let locals = partition(&pooled, 4, PartitionScheme::Uniform, 10);
        let config = SapConfig {
            fault_config: Some(FaultConfig {
                duplicate_prob: 0.5,
                ..FaultConfig::default()
            }),
            timeout: std::time::Duration::from_millis(500),
            ..SapConfig::quick_test()
        };
        match run_session(locals, &config) {
            Ok(outcome) => assert_eq!(outcome.unified.len(), pooled.len()),
            Err(e) => assert!(
                matches!(e, SapError::Protocol(_) | SapError::Timeout { .. }),
                "unexpected failure mode: {e}"
            ),
        }
    }

    #[test]
    fn risk_summary_is_bounded_and_sized() {
        let pooled = UciDataset::Iris.generate(7);
        let locals = partition(&pooled, 4, PartitionScheme::Uniform, 8);
        let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();
        let risks = outcome.risk_summary();
        assert_eq!(risks.len(), outcome.num_providers());
        for r in risks {
            assert!((0.0..=1.0).contains(&r), "risk {r} out of [0,1]");
        }
    }

    #[test]
    fn too_few_providers_rejected() {
        let pooled = UciDataset::Iris.generate(4);
        let locals = partition(&pooled, 2, PartitionScheme::Uniform, 5);
        assert!(matches!(
            run_session(locals, &SapConfig::quick_test()),
            Err(SapError::TooFewProviders { got: 2 })
        ));
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let a = UciDataset::Iris.generate(5);
        let b = UciDataset::Wine.generate(5); // 13-dim vs 4-dim
        let locals = vec![a.clone(), a.clone(), b];
        assert!(matches!(
            run_session(locals, &SapConfig::quick_test()),
            Err(SapError::InconsistentInputs(_))
        ));
    }

    #[test]
    fn transport_count_mismatch_rejected() {
        let pooled = UciDataset::Iris.generate(6);
        let locals = partition(&pooled, 3, PartitionScheme::Uniform, 7);
        let hub = InMemoryHub::new();
        let endpoints = vec![hub.endpoint(PartyId(0)), hub.endpoint(PartyId(1))];
        let miner = hub.endpoint(MINER_ID);
        assert!(matches!(
            run_session_over(
                locals,
                &SapConfig::quick_test(),
                endpoints,
                miner,
                WireCodec
            ),
            Err(SapError::InconsistentInputs(_))
        ));
    }
}
