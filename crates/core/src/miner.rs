//! The mining service provider (SP) actor.
//!
//! The miner collects `k` relayed dataset streams (tagged by opaque slots)
//! and the coordinator's slot-indexed adaptor table, decodes each stream's
//! row blocks, applies each adaptor to its slot's dataset, and pools
//! everything into one dataset in the unified target space. It never
//! learns which provider owns which dataset — only which provider
//! *forwarded* it, and the forwarding assignment is a secret random
//! exchange, so each dataset's source identifiability is `1/(k−1)`.
//!
//! Streams are kept as raw blocks until the adaptor table arrives, so the
//! miner holds sealed-sized chunks, not duplicate monolithic buffers,
//! while the exchange is still in flight.

use crate::error::SapError;
use crate::link::{self, DataHeader, DataStream, FlowInbound, Inbound};
use crate::messages::{SapMessage, SlotTag};
use crate::session::{DataPlane, RoleCtx};
use crate::stream::{AdaptStage, BlockStage, DatasetSink, StreamPipeline};
use sap_datasets::Dataset;
use sap_net::node::Node;
use sap_net::{Codec, PartyId, Transport};
use sap_perturb::SpaceAdaptor;
use std::collections::HashMap;
use std::time::Instant;

/// What the miner ends the session with.
#[derive(Debug, Clone)]
pub struct MinerOutput {
    /// The pooled dataset, every partition re-based into the target space.
    pub unified: Dataset,
    /// Which provider *forwarded* each slot (the miner's entire knowledge of
    /// data provenance — used by tests to verify identifiability).
    pub forwarder_of_slot: Vec<(SlotTag, PartyId)>,
    /// Total relayed row blocks received across all streams (feeds the
    /// server's `blocks_relayed` metric).
    pub relayed_blocks: u64,
}

/// Runs the miner role to completion, collecting `expected_datasets`
/// relayed streams (one per provider in a full session). The coordinator
/// comes from `ctx.roster`, and every blocking receive observes the
/// session's liveness regime.
///
/// # Errors
///
/// Returns [`SapError`] on timeout, peer failure, cancellation,
/// messaging failure, duplicate slots, missing adaptors, or dimension
/// mismatches.
pub fn run_miner<T: Transport, C: Codec>(
    node: &Node<T, C>,
    expected_datasets: usize,
    ctx: &RoleCtx<'_>,
) -> Result<MinerOutput, SapError> {
    match ctx.config.data_plane {
        DataPlane::Buffered => run_miner_buffered(node, expected_datasets, ctx),
        DataPlane::Streaming => run_miner_streaming(node, expected_datasets, ctx),
    }
}

fn run_miner_buffered<T: Transport, C: Codec>(
    node: &Node<T, C>,
    expected_datasets: usize,
    ctx: &RoleCtx<'_>,
) -> Result<MinerOutput, SapError> {
    let me = node.id();
    let config = ctx.config;
    let audit = ctx.audit;
    let coordinator = ctx.roster.coordinator();
    let mut streams: HashMap<SlotTag, (PartyId, DataStream)> = HashMap::new();
    let mut adaptors: Option<Vec<(SlotTag, SpaceAdaptor)>> = None;

    while streams.len() < expected_datasets || adaptors.is_none() {
        let (from, inbound) = link::recv_message_ctx(node, ctx, "data & adaptor collection")?;
        match inbound {
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                if !stream.header.relay {
                    return Err(SapError::Protocol(
                        "miner received un-relayed perturbed-data".into(),
                    ));
                }
                let slot = stream.header.slot;
                if streams.insert(slot, (from, stream)).is_some() {
                    return Err(SapError::Protocol(format!("duplicate slot {slot:?}")));
                }
            }
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::AdaptorTable { entries } => {
                        if from != coordinator {
                            return Err(SapError::Protocol(format!(
                                "adaptor table from non-coordinator {from}"
                            )));
                        }
                        if adaptors.replace(entries).is_some() {
                            return Err(SapError::Protocol("duplicate adaptor table".into()));
                        }
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "miner received unexpected {}",
                            other.kind()
                        )))
                    }
                }
            }
        }
    }
    let adaptors = adaptors.expect("loop exits only when set");

    // Unify: decode each slot's stream and apply its adaptor.
    let adaptor_of: HashMap<SlotTag, &SpaceAdaptor> =
        adaptors.iter().map(|(s, a)| (*s, a)).collect();
    let mut parts: Vec<Dataset> = Vec::with_capacity(expected_datasets);
    let mut forwarder_of_slot: Vec<(SlotTag, PartyId)> = Vec::new();
    let relayed_blocks: u64 = streams
        .values()
        .map(|(_, stream)| stream.blocks.len() as u64)
        .sum();
    // Deterministic slot order for reproducible pooling.
    let mut slots: Vec<SlotTag> = streams.keys().copied().collect();
    slots.sort();
    for slot in slots {
        let (forwarder, stream) = streams.remove(&slot).expect("slot key from map");
        let adaptor = adaptor_of
            .get(&slot)
            .ok_or_else(|| SapError::Protocol(format!("no adaptor for slot {slot:?}")))?;
        let data = stream.into_dataset()?;
        if adaptor.dim() != data.dim() {
            return Err(SapError::Protocol(format!(
                "adaptor dim {} != data dim {} for slot {slot:?}",
                adaptor.dim(),
                data.dim()
            )));
        }
        let y = data.to_column_matrix();
        let unified = adaptor.apply(&y);
        parts.push(Dataset::from_column_matrix(
            &unified,
            data.labels().to_vec(),
            data.num_classes(),
        ));
        forwarder_of_slot.push((slot, forwarder));
    }
    let unified = Dataset::concat(&parts);

    link::send_message(
        node,
        coordinator,
        &SapMessage::MiningComplete {
            unified_records: unified.len() as u64,
        },
        config.block_rows,
    )?;

    Ok(MinerOutput {
        unified,
        forwarder_of_slot,
        relayed_blocks,
    })
}

/// An inbound stream being decoded as it arrives: its slot, whether an
/// [`AdaptStage`] is already adapting its blocks in flight, and the
/// pipeline accumulating the records.
struct OpenSlot {
    slot: SlotTag,
    adapted: bool,
    pipeline: StreamPipeline<DatasetSink>,
}

/// A fully received stream's records, awaiting (or already in) the
/// unified space.
struct CollectedSlot {
    forwarder: PartyId,
    header: DataHeader,
    sink: DatasetSink,
    adapted: bool,
}

/// The streaming miner: decodes each relayed row block the moment it
/// arrives (overlapping unseal + decode with the exchange still in
/// flight), and — when the adaptor table got there first — re-bases
/// blocks into the target space *in flight* through an [`AdaptStage`].
/// Streams whose adaptor arrives later are adapted at unification with
/// the identical record-major kernel, so both orderings produce the same
/// bytes as the buffered miner.
fn run_miner_streaming<T: Transport, C: Codec>(
    node: &Node<T, C>,
    expected_datasets: usize,
    ctx: &RoleCtx<'_>,
) -> Result<MinerOutput, SapError> {
    let me = node.id();
    let config = ctx.config;
    let audit = ctx.audit;
    let monitor = ctx.monitor;
    let coordinator = ctx.roster.coordinator();
    let mut open: HashMap<PartyId, OpenSlot> = HashMap::new();
    let mut collected: HashMap<SlotTag, CollectedSlot> = HashMap::new();
    let mut adaptors: Option<Vec<(SlotTag, SpaceAdaptor)>> = None;
    let mut relayed_blocks: u64 = 0;

    while collected.len() < expected_datasets || adaptors.is_none() {
        let (from, event) = link::recv_flow_ctx(node, ctx, "data & adaptor collection")?;
        match event {
            FlowInbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::AdaptorTable { entries } => {
                        if from != coordinator {
                            return Err(SapError::Protocol(format!(
                                "adaptor table from non-coordinator {from}"
                            )));
                        }
                        if adaptors.replace(entries).is_some() {
                            return Err(SapError::Protocol("duplicate adaptor table".into()));
                        }
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "miner received unexpected {}",
                            other.kind()
                        )))
                    }
                }
            }
            FlowInbound::StreamStart { header, last } => {
                audit.record_kind(
                    from,
                    me,
                    if header.relay {
                        "relayed-data"
                    } else {
                        "perturbed-data"
                    },
                    true,
                    false,
                );
                if !header.relay {
                    return Err(SapError::Protocol(
                        "miner received un-relayed perturbed-data".into(),
                    ));
                }
                let slot = header.slot;
                if collected.contains_key(&slot) || open.values().any(|o| o.slot == slot) {
                    return Err(SapError::Protocol(format!("duplicate slot {slot:?}")));
                }
                // If the adaptor table already arrived, adapt this
                // stream's blocks in flight.
                let adaptor = adaptors
                    .as_ref()
                    .and_then(|entries| entries.iter().find(|(s, _)| *s == slot))
                    .map(|(_, a)| a.clone());
                let mut stages: Vec<Box<dyn BlockStage>> = Vec::new();
                let mut adapted = false;
                if let Some(adaptor) = adaptor {
                    if adaptor.dim() != header.dim as usize {
                        return Err(SapError::Protocol(format!(
                            "adaptor dim {} != data dim {} for slot {slot:?}",
                            adaptor.dim(),
                            header.dim
                        )));
                    }
                    stages.push(Box::new(AdaptStage::new(adaptor)));
                    adapted = true;
                }
                monitor.stream_opened();
                let pipeline = StreamPipeline::open(header, stages, DatasetSink::new())?;
                if last {
                    // The header declared ≥ 1 row (open() rejects zero)
                    // but the stream closed with no blocks.
                    monitor.stream_closed();
                    return Err(SapError::Protocol(format!(
                        "empty dataset stream for slot {slot:?} declaring {} rows",
                        pipeline.header().rows
                    )));
                }
                open.insert(
                    from,
                    OpenSlot {
                        slot,
                        adapted,
                        pipeline,
                    },
                );
            }
            FlowInbound::StreamBlock { bytes, last } => {
                // Decode (and possibly adapt) now, while the rest of the
                // exchange is still on the wire — overlapped unless this
                // is the session's final in-flight data.
                let overlapped = !last || open.len() > 1;
                let mut entry = open.remove(&from).ok_or_else(|| {
                    SapError::Protocol("stream block without an open stream".into())
                })?;
                monitor.block_received();
                relayed_blocks += 1;
                let t0 = Instant::now();
                entry.pipeline.push(&bytes)?;
                monitor.compute(t0.elapsed(), overlapped);
                if last {
                    monitor.stream_closed();
                    let header = *entry.pipeline.header();
                    let sink = entry.pipeline.finish()?;
                    collected.insert(
                        entry.slot,
                        CollectedSlot {
                            forwarder: from,
                            header,
                            sink,
                            adapted: entry.adapted,
                        },
                    );
                } else {
                    open.insert(from, entry);
                }
            }
        }
    }
    let adaptors = adaptors.expect("loop exits only when set");

    // Unify: adapt any slot whose stream outran the adaptor table, then
    // assemble in deterministic slot order (identical to the buffered
    // path's pooling order).
    let adaptor_of: HashMap<SlotTag, &SpaceAdaptor> =
        adaptors.iter().map(|(s, a)| (*s, a)).collect();
    let mut parts: Vec<Dataset> = Vec::with_capacity(expected_datasets);
    let mut forwarder_of_slot: Vec<(SlotTag, PartyId)> = Vec::new();
    let mut slots: Vec<SlotTag> = collected.keys().copied().collect();
    slots.sort();
    for slot in slots {
        let entry = collected.remove(&slot).expect("slot key from map");
        let adaptor = adaptor_of
            .get(&slot)
            .ok_or_else(|| SapError::Protocol(format!("no adaptor for slot {slot:?}")))?;
        if adaptor.dim() != entry.header.dim as usize {
            return Err(SapError::Protocol(format!(
                "adaptor dim {} != data dim {} for slot {slot:?}",
                adaptor.dim(),
                entry.header.dim
            )));
        }
        let t0 = Instant::now();
        let mut sink = entry.sink;
        if !entry.adapted {
            let mut out = vec![0.0; sink.values.len()];
            adaptor.adapt_records(&sink.values, &mut out);
            sink.values = out;
        }
        parts.push(sink.into_dataset());
        monitor.compute(t0.elapsed(), false);
        forwarder_of_slot.push((slot, entry.forwarder));
    }
    let unified = Dataset::concat(&parts);

    link::send_message(
        node,
        coordinator,
        &SapMessage::MiningComplete {
            unified_records: unified.len() as u64,
        },
        config.block_rows,
    )?;

    Ok(MinerOutput {
        unified,
        forwarder_of_slot,
        relayed_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditLog;
    use crate::liveness::Roster;
    use crate::session::{SapConfig, StandaloneCtx};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_net::transport::InMemoryHub;
    use sap_perturb::Perturbation;
    use std::time::Duration;

    fn quick_config() -> SapConfig {
        SapConfig {
            timeout: Duration::from_millis(500),
            ..SapConfig::quick_test()
        }
    }

    /// A miner harness: relay parties 1 and 5, coordinator 2
    /// (roster-last), miner 100, recording into `audit`.
    fn harness(config: SapConfig, audit: &AuditLog) -> StandaloneCtx {
        let mut sc = StandaloneCtx::new(
            Roster::new(vec![PartyId(1), PartyId(5), PartyId(2)], PartyId(100)),
            config,
        );
        sc.audit = audit.clone();
        sc
    }

    fn tiny_dataset(offset: f64) -> Dataset {
        let records: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![offset + i as f64 / 10.0, offset - i as f64 / 10.0])
            .collect();
        Dataset::new(records, (0..10).map(|i| i % 2).collect())
    }

    #[test]
    fn miner_unifies_two_slots() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let relay = Node::new(hub.endpoint(PartyId(1)), 7);
        let coord = Node::new(hub.endpoint(PartyId(2)), 7);
        let audit = AuditLog::new();

        let mut rng = StdRng::seed_from_u64(1);
        let target = Perturbation::random(2, &mut rng);
        let g1 = Perturbation::random(2, &mut rng);
        let g2 = Perturbation::random(2, &mut rng);

        // Perturbed datasets in spaces g1, g2, relayed as streams.
        let d1 = tiny_dataset(0.0);
        let d2 = tiny_dataset(5.0);
        let y1 = g1.apply_clean(&d1.to_column_matrix());
        let y2 = g2.apply_clean(&d2.to_column_matrix());
        link::send_dataset(
            &relay,
            PartyId(100),
            true,
            SlotTag(1),
            &Dataset::from_column_matrix(&y1, d1.labels().to_vec(), 2),
            4,
        )
        .unwrap();
        link::send_dataset(
            &relay,
            PartyId(100),
            true,
            SlotTag(2),
            &Dataset::from_column_matrix(&y2, d2.labels().to_vec(), 2),
            4,
        )
        .unwrap();
        coord
            .send_msg(
                PartyId(100),
                &SapMessage::AdaptorTable {
                    entries: vec![
                        (SlotTag(1), SpaceAdaptor::between(&g1, &target).unwrap()),
                        (SlotTag(2), SpaceAdaptor::between(&g2, &target).unwrap()),
                    ],
                },
            )
            .unwrap();

        let out = run_miner(&miner_node, 2, &harness(quick_config(), &audit).ctx()).unwrap();
        assert_eq!(out.unified.len(), 20);
        assert_eq!(out.forwarder_of_slot.len(), 2);

        // Unified records equal the target-space images of the originals
        // (noiseless case).
        let expected_1 = target.apply_clean(&d1.to_column_matrix());
        let got_first = out.unified.record(0);
        let exp_first = expected_1.column(0);
        for (a, b) in got_first.iter().zip(&exp_first) {
            assert!((a - b).abs() < 1e-8);
        }

        // Coordinator got the completion ack.
        let (_, msg): (PartyId, SapMessage) = coord.recv_msg().unwrap();
        assert!(matches!(
            msg,
            SapMessage::MiningComplete {
                unified_records: 20
            }
        ));
    }

    #[test]
    fn duplicate_slot_is_protocol_error() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let relay = Node::new(hub.endpoint(PartyId(1)), 7);
        let _coord = hub.endpoint(PartyId(2));
        let audit = AuditLog::new();

        for _ in 0..2 {
            link::send_dataset(
                &relay,
                PartyId(100),
                true,
                SlotTag(7),
                &tiny_dataset(0.0),
                4,
            )
            .unwrap();
        }
        let err = run_miner(&miner_node, 2, &harness(quick_config(), &audit).ctx()).unwrap_err();
        assert!(err.to_string().contains("duplicate slot"), "{err}");
    }

    #[test]
    fn missing_adaptor_is_protocol_error() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let relay = Node::new(hub.endpoint(PartyId(1)), 7);
        let coord = Node::new(hub.endpoint(PartyId(2)), 7);
        let audit = AuditLog::new();

        link::send_dataset(
            &relay,
            PartyId(100),
            true,
            SlotTag(7),
            &tiny_dataset(0.0),
            4,
        )
        .unwrap();
        coord
            .send_msg(PartyId(100), &SapMessage::AdaptorTable { entries: vec![] })
            .unwrap();
        let err = run_miner(&miner_node, 1, &harness(quick_config(), &audit).ctx()).unwrap_err();
        assert!(err.to_string().contains("no adaptor"), "{err}");
    }

    #[test]
    fn adaptor_table_from_impostor_rejected() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let impostor = Node::new(hub.endpoint(PartyId(5)), 7);
        let audit = AuditLog::new();
        impostor
            .send_msg(PartyId(100), &SapMessage::AdaptorTable { entries: vec![] })
            .unwrap();
        let err = run_miner(&miner_node, 1, &harness(quick_config(), &audit).ctx()).unwrap_err();
        assert!(err.to_string().contains("non-coordinator"), "{err}");
    }

    #[test]
    fn un_relayed_stream_rejected() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let sender = Node::new(hub.endpoint(PartyId(1)), 7);
        let audit = AuditLog::new();
        link::send_dataset(
            &sender,
            PartyId(100),
            false,
            SlotTag(7),
            &tiny_dataset(0.0),
            4,
        )
        .unwrap();
        let err = run_miner(&miner_node, 1, &harness(quick_config(), &audit).ctx()).unwrap_err();
        assert!(err.to_string().contains("un-relayed"), "{err}");
    }

    #[test]
    fn miner_times_out_on_silence() {
        let hub = InMemoryHub::new();
        let miner_node = Node::new(hub.endpoint(PartyId(100)), 7);
        let audit = AuditLog::new();
        let config = SapConfig {
            timeout: Duration::from_millis(30),
            ..SapConfig::quick_test()
        };
        let err = run_miner(&miner_node, 1, &harness(config, &audit).ctx()).unwrap_err();
        assert!(matches!(err, SapError::Timeout { .. }));
    }
}
