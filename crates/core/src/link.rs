//! The SAP message link: typed protocol messages over the streaming node.
//!
//! Control messages ([`SapMessage`] minus the data variants) travel as
//! ordinary codec frames. Dataset payloads travel as *streams*: a
//! [`DataHeader`] followed by length-prefixed row blocks, so neither
//! sender nor receiver ever materializes one monolithic serialized
//! dataset — and the anonymizing relay hop forwards the sealed row blocks
//! **without decoding them** ([`relay_stream`]), which is both faster and
//! closer to the paper's "unchanged payload" relay semantics.
//!
//! # Row-block layout
//!
//! ```text
//! [rows: u32 LE] [labels: rows × u32 LE] [values: rows × dim × f64 LE]
//! ```
//!
//! Rows never straddle blocks, so a receiver can fold each block into its
//! growing dataset as it arrives.

use crate::error::SapError;
use crate::liveness::CANCEL_POLL;
use crate::messages::{SapMessage, SlotTag};
use crate::session::RoleCtx;
use bytes::Bytes;
use sap_datasets::Dataset;
use sap_net::node::{Node, NodeError, NodeEvent, NodeFlow};
use sap_net::{Codec, PartyId, SessionId, Transport, TransportError};
use sap_perturb::GeometricPerturbation;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Default number of dataset rows per stream block.
pub const DEFAULT_BLOCK_ROWS: usize = 256;

/// Hard ceiling on one stream block's encoded size. `block_rows` is
/// clamped so a block never exceeds this, keeping behavior identical
/// across transports (TCP rejects payloads over its own, much larger,
/// limit; the in-memory hub would accept anything).
pub const MAX_BLOCK_BYTES: usize = 8 * 1024 * 1024;

/// Stream header for a dataset transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataHeader {
    /// The session the stream belongs to. Redundant with the (already
    /// authenticated) envelope stamp, but threading it through the header
    /// lets the relay hop preserve full session provenance **without
    /// decoding a single row block**: [`relay_stream`] copies the header,
    /// blocks stay opaque `Bytes`.
    pub session: SessionId,
    /// `false` for a provider→provider exchange (`PerturbedData`), `true`
    /// for the relay hop to the miner (`RelayedData`).
    pub relay: bool,
    /// Slot tag assigned by the coordinator.
    pub slot: SlotTag,
    /// Total record count across all blocks.
    pub rows: u64,
    /// Feature dimensionality.
    pub dim: u32,
    /// Class count of the dataset.
    pub num_classes: u32,
}

/// A received dataset stream, still in raw blocks.
#[derive(Debug)]
pub struct DataStream {
    /// The stream header.
    pub header: DataHeader,
    /// Raw row blocks, in order.
    pub blocks: Vec<Bytes>,
}

/// One inbound protocol delivery.
#[derive(Debug)]
pub enum Inbound {
    /// A control message.
    Msg(SapMessage),
    /// A dataset stream.
    Data(DataStream),
}

/// One inbound delivery on the **streaming** data plane: stream headers
/// and blocks surface per frame, the moment they arrive (see
/// [`recv_flow`]), instead of per fully buffered stream.
#[derive(Debug)]
pub enum FlowInbound {
    /// A control message.
    Msg(SapMessage),
    /// A dataset stream opened. `last` marks an empty stream.
    StreamStart {
        /// The validated stream header.
        header: DataHeader,
        /// `true` when no blocks follow.
        last: bool,
    },
    /// One raw row block of the sender's current stream.
    StreamBlock {
        /// The raw block, exactly as sent.
        bytes: Bytes,
        /// `true` when this closes the stream.
        last: bool,
    },
}

impl DataStream {
    /// Audit-ledger kind label (matches [`SapMessage::kind`]).
    pub fn kind(&self) -> &'static str {
        if self.header.relay {
            "relayed-data"
        } else {
            "perturbed-data"
        }
    }

    /// Decodes the blocks into a [`Dataset`], validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Protocol`] on malformed blocks, row-count or
    /// dimension mismatches, or out-of-range labels.
    pub fn into_dataset(self) -> Result<Dataset, SapError> {
        decode_blocks(&self.header, &self.blocks)
    }
}

/// Sends a control message. Data-bearing messages are routed through the
/// streaming path automatically.
///
/// # Errors
///
/// Returns [`SapError::Messaging`] on codec or transport failure.
pub fn send_message<T: Transport, C: Codec>(
    node: &Node<T, C>,
    to: PartyId,
    msg: &SapMessage,
    block_rows: usize,
) -> Result<(), SapError> {
    match msg {
        SapMessage::PerturbedData { slot, data } => {
            send_dataset(node, to, false, *slot, data, block_rows)
        }
        SapMessage::RelayedData { slot, data } => {
            send_dataset(node, to, true, *slot, data, block_rows)
        }
        other => node.send_msg(to, other).map_err(SapError::from),
    }
}

/// Streams a dataset to `to` as row blocks.
///
/// # Errors
///
/// Returns [`SapError::Messaging`] on codec or transport failure.
pub fn send_dataset<T: Transport, C: Codec>(
    node: &Node<T, C>,
    to: PartyId,
    relay: bool,
    slot: SlotTag,
    data: &Dataset,
    block_rows: usize,
) -> Result<(), SapError> {
    assert!(block_rows > 0, "block_rows must be positive");
    let row_size = 4 + data.dim() * 8;
    let block_rows = block_rows.min((MAX_BLOCK_BYTES / row_size).max(1));
    let header = DataHeader {
        session: node.session(),
        relay,
        slot,
        rows: data.len() as u64,
        dim: u32::try_from(data.dim())
            .map_err(|_| SapError::Protocol("dimension overflows u32".into()))?,
        num_classes: u32::try_from(data.num_classes())
            .map_err(|_| SapError::Protocol("class count overflows u32".into()))?,
    };
    let n = data.len();
    let mut stream = node
        .begin_stream(to, &header, n == 0)
        .map_err(SapError::from)?;
    let mut start = 0;
    while start < n {
        let end = (start + block_rows).min(n);
        node.stream_block_with(&mut stream, 4 + (end - start) * row_size, end == n, |out| {
            encode_block_into(data, start, end, out);
            Ok(())
        })
        .map_err(SapError::from)?;
        start = end;
    }
    Ok(())
}

/// Forwards a received stream to `to` under the relay kind **without
/// decoding the blocks** — only the `Bytes` handles are cloned.
///
/// # Errors
///
/// Returns [`SapError::Messaging`] on transport failure.
pub fn relay_stream<T: Transport, C: Codec>(
    node: &Node<T, C>,
    to: PartyId,
    stream: &DataStream,
) -> Result<(), SapError> {
    let header = DataHeader {
        relay: true,
        ..stream.header
    };
    node.send_stream(to, &header, stream.blocks.iter().cloned())
        .map_err(SapError::from)
}

/// Receives the next **streaming-mode** delivery within `timeout`:
/// stream headers and row blocks are delivered per frame, so a role can
/// relay, decode, or adapt a block while the rest of its stream is still
/// on the wire.
///
/// Stream headers get the same sender-bug session check as
/// [`recv_message`]. A role must use either this or the buffered
/// [`recv_message`] consistently — not both mid-stream.
///
/// # Errors
///
/// As [`recv_message`].
pub fn recv_flow<T: Transport, C: Codec>(
    node: &Node<T, C>,
    timeout: Duration,
) -> Result<(PartyId, FlowInbound), SapError> {
    let (from, flow) = node
        .recv_flow_timeout::<SapMessage, DataHeader>(timeout)
        .map_err(SapError::from)?;
    let inbound = match flow {
        NodeFlow::Msg(msg) => FlowInbound::Msg(msg),
        NodeFlow::StreamStart { header, last } => {
            if header.session != node.session() {
                return Err(SapError::Protocol(format!(
                    "stream header for {} arrived in {}",
                    header.session,
                    node.session()
                )));
            }
            FlowInbound::StreamStart { header, last }
        }
        NodeFlow::StreamBlock { block, last } => FlowInbound::StreamBlock { bytes: block, last },
    };
    Ok((from, inbound))
}

/// Runs one governed blocking receive under a role's liveness regime:
/// the wait is sliced into [`CANCEL_POLL`] quanta so the role observes
/// session-wide cancellation and budget expiry within one slice, the
/// per-receive `ctx.config.timeout` is enforced across slices, and a
/// transport-reported peer death is either converted into the typed
/// [`SapError::PeerFailure`] (the dead party is on this session's
/// roster) or ignored (a stranger's death broadcast on a shared
/// transport — keep receiving).
fn recv_governed<R>(
    ctx: &RoleCtx<'_>,
    who: PartyId,
    phase: &'static str,
    mut attempt: impl FnMut(Duration) -> Result<R, SapError>,
) -> Result<R, SapError> {
    let per_recv = Instant::now() + ctx.config.timeout;
    loop {
        if ctx.deadline.is_cancelled() {
            return Err(SapError::Cancelled { phase });
        }
        let now = Instant::now();
        if now >= per_recv {
            return Err(SapError::Timeout {
                waiting: who,
                phase,
            });
        }
        let mut slice = (per_recv - now).min(CANCEL_POLL);
        if let Some(budget) = ctx.deadline.remaining() {
            if budget.is_zero() {
                return Err(SapError::DeadlineExceeded { phase });
            }
            slice = slice.min(budget);
        }
        match attempt(slice) {
            Err(SapError::Messaging(NodeError::Transport(TransportError::Timeout))) => {}
            Err(SapError::Messaging(NodeError::Transport(TransportError::PeerDown(p)))) => {
                if ctx.roster.contains(p) {
                    return Err(SapError::PeerFailure { party: p, phase });
                }
            }
            Err(other) => return Err(other),
            Ok(r) => return Ok(r),
        }
    }
}

/// Receives the next protocol delivery under the session's liveness
/// regime (cancellation token, session budget, roster-filtered peer
/// failures) — the role-facing form of [`recv_message`].
///
/// # Errors
///
/// As [`recv_message`], plus [`SapError::Timeout`] naming `phase` on
/// per-receive expiry, [`SapError::PeerFailure`] when a roster peer dies,
/// [`SapError::Cancelled`] on cooperative cancellation, and
/// [`SapError::DeadlineExceeded`] when the session budget runs out.
pub fn recv_message_ctx<T: Transport, C: Codec>(
    node: &Node<T, C>,
    ctx: &RoleCtx<'_>,
    phase: &'static str,
) -> Result<(PartyId, Inbound), SapError> {
    recv_governed(ctx, node.id(), phase, |slice| recv_message(node, slice))
}

/// Streaming-mode counterpart of [`recv_message_ctx`]: per-frame
/// deliveries under the same liveness regime.
///
/// # Errors
///
/// As [`recv_message_ctx`].
pub fn recv_flow_ctx<T: Transport, C: Codec>(
    node: &Node<T, C>,
    ctx: &RoleCtx<'_>,
    phase: &'static str,
) -> Result<(PartyId, FlowInbound), SapError> {
    recv_governed(ctx, node.id(), phase, |slice| recv_flow(node, slice))
}

/// Receives the next protocol delivery within `timeout`.
///
/// # Errors
///
/// Returns [`SapError::Messaging`] on transport/codec failure; framing
/// violations surface as [`SapError::Protocol`].
pub fn recv_message<T: Transport, C: Codec>(
    node: &Node<T, C>,
    timeout: Duration,
) -> Result<(PartyId, Inbound), SapError> {
    let (from, event) = node
        .recv_event_timeout::<SapMessage, DataHeader>(timeout)
        .map_err(SapError::from)?;
    let inbound = match event {
        NodeEvent::Msg(msg) => Inbound::Msg(msg),
        NodeEvent::Stream { header, blocks } => {
            // The envelope already pinned the frames to this session; the
            // header-level check catches a *sender bug* (a relay stamping
            // someone else's stream into its own session) before a single
            // row is decoded.
            if header.session != node.session() {
                return Err(SapError::Protocol(format!(
                    "stream header for {} arrived in {}",
                    header.session,
                    node.session()
                )));
            }
            Inbound::Data(DataStream { header, blocks })
        }
    };
    Ok((from, inbound))
}

/// Streams a dataset to `to`, perturbing it **one block at a time**: each
/// row-block of `x` (a `d × N` column matrix) is pushed through
/// `G(X) = R·X + Ψ + Δ` into a reused scratch buffer, encoded, and handed
/// to the transport before the next block's math starts — the send-side
/// compute/I-O overlap of the streaming data plane.
///
/// The realized noise `delta` must be sampled up front (exactly as the
/// buffered path does), so the bytes on the wire are **bit-identical** to
/// perturbing the whole matrix and calling [`send_dataset`].
///
/// # Errors
///
/// Returns [`SapError::Messaging`] on codec or transport failure, or
/// [`SapError::Protocol`] on dimension overflow.
///
/// # Panics
///
/// Panics when shapes disagree or `block_rows` is zero.
#[allow(clippy::too_many_arguments)]
pub fn send_perturbed_dataset<T: Transport, C: Codec>(
    node: &Node<T, C>,
    to: PartyId,
    slot: SlotTag,
    g: &GeometricPerturbation,
    x: &sap_linalg::Matrix,
    delta: &sap_linalg::Matrix,
    labels: &[usize],
    num_classes: usize,
    block_rows: usize,
) -> Result<(), SapError> {
    assert!(block_rows > 0, "block_rows must be positive");
    assert_eq!(x.cols(), labels.len(), "column count != label count");
    let (dim, n) = (x.rows(), x.cols());
    let row_size = 4 + dim * 8;
    let block_rows = block_rows.min((MAX_BLOCK_BYTES / row_size).max(1));
    let header = DataHeader {
        session: node.session(),
        relay: false,
        slot,
        rows: n as u64,
        dim: u32::try_from(dim)
            .map_err(|_| SapError::Protocol("dimension overflows u32".into()))?,
        num_classes: u32::try_from(num_classes)
            .map_err(|_| SapError::Protocol("class count overflows u32".into()))?,
    };
    let mut stream = node
        .begin_stream(to, &header, n == 0)
        .map_err(SapError::from)?;
    let mut scratch: Vec<f64> = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + block_rows).min(n);
        g.perturb_records_into(x, delta, start..end, &mut scratch);
        node.stream_block_with(&mut stream, 4 + (end - start) * row_size, end == n, |out| {
            encode_records_block_into(&labels[start..end], &scratch, out);
            Ok(())
        })
        .map_err(SapError::from)?;
        start = end;
    }
    Ok(())
}

/// Appends one wire block from a record-major value buffer (`labels.len()
/// × dim` values) to `out`. Byte-for-byte the layout of
/// [`encode_block_into`].
fn encode_records_block_into(labels: &[usize], values: &[f64], out: &mut Vec<u8>) {
    out.reserve(4 + labels.len() * 4 + values.len() * 8);
    out.extend_from_slice(
        &u32::try_from(labels.len())
            .expect("block rows fit u32")
            .to_le_bytes(),
    );
    for &label in labels {
        out.extend_from_slice(&u32::try_from(label).expect("label fits u32").to_le_bytes());
    }
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends rows `start..end` of a dataset as one wire row block
/// (`[rows: u32] [labels] [values]`, see `docs/WIRE.md` §4.1) to `out` —
/// the sink [`send_dataset`] encodes each block through, straight into
/// the pooled sealed frame buffer.
///
/// # Panics
///
/// Panics when the range is out of bounds or a label exceeds `u32`.
pub fn encode_block_into(data: &Dataset, start: usize, end: usize, out: &mut Vec<u8>) {
    let rows = end - start;
    let dim = data.dim();
    out.reserve(4 + rows * 4 + rows * dim * 8);
    out.extend_from_slice(
        &u32::try_from(rows)
            .expect("block rows fit u32")
            .to_le_bytes(),
    );
    for i in start..end {
        out.extend_from_slice(
            &u32::try_from(data.label(i))
                .expect("label fits u32")
                .to_le_bytes(),
        );
    }
    for i in start..end {
        for &v in data.record(i) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Encodes rows `start..end` of a dataset as one standalone wire row
/// block. Public for harnesses that drive partial streams by hand (e.g.
/// the mid-stream peer-death fault tests); the send paths use
/// [`encode_block_into`] instead.
///
/// # Panics
///
/// As [`encode_block_into`].
pub fn encode_block(data: &Dataset, start: usize, end: usize) -> Bytes {
    let mut out = Vec::new();
    encode_block_into(data, start, end, &mut out);
    Bytes::from(out)
}

fn decode_blocks(header: &DataHeader, blocks: &[Bytes]) -> Result<Dataset, SapError> {
    let dim = header.dim as usize;
    let num_classes = header.num_classes as usize;
    let total = usize::try_from(header.rows)
        .map_err(|_| SapError::Protocol("row count overflows usize".into()))?;
    if total == 0 || dim == 0 {
        return Err(SapError::Protocol(
            "dataset stream with zero rows or dimensions".into(),
        ));
    }
    // Never pre-allocate from the untrusted header row count: a crafted
    // header could claim u64::MAX rows in a few dozen wire bytes. Bound
    // the reservation by what the received blocks can physically hold.
    let row_size = 4 + dim * 8;
    let deliverable: usize = blocks.iter().map(|b| b.len() / row_size).sum();
    let mut records: Vec<Vec<f64>> = Vec::with_capacity(total.min(deliverable));
    let mut labels: Vec<usize> = Vec::with_capacity(total.min(deliverable));
    for block in blocks {
        let (block_rows, rest) = split_u32(block)
            .ok_or_else(|| SapError::Protocol("row block shorter than its count".into()))?;
        let rows = block_rows as usize;
        let expect = rows
            .checked_mul(row_size)
            .ok_or_else(|| SapError::Protocol("row block size overflows".into()))?;
        if rest.len() != expect {
            return Err(SapError::Protocol(format!(
                "row block size {} != expected {expect} for {rows} rows × {dim} dims",
                rest.len()
            )));
        }
        let (label_bytes, value_bytes) = rest.split_at(rows * 4);
        for chunk in label_bytes.chunks_exact(4) {
            let label = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as usize;
            if label >= num_classes {
                return Err(SapError::Protocol(format!(
                    "label {label} out of range for {num_classes} classes"
                )));
            }
            labels.push(label);
        }
        for row in value_bytes.chunks_exact(dim * 8) {
            let mut rec = Vec::with_capacity(dim);
            for v in row.chunks_exact(8) {
                rec.push(f64::from_le_bytes(v.try_into().expect("8 bytes")));
            }
            records.push(rec);
        }
        if records.len() > total {
            return Err(SapError::Protocol(format!(
                "stream delivered more than the declared {total} rows"
            )));
        }
    }
    if records.len() != total {
        return Err(SapError::Protocol(format!(
            "stream delivered {} of {total} declared rows",
            records.len()
        )));
    }
    Ok(Dataset::with_num_classes(records, labels, num_classes))
}

fn split_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    if bytes.len() < 4 {
        return None;
    }
    let (head, rest) = bytes.split_at(4);
    Some((u32::from_le_bytes(head.try_into().expect("4 bytes")), rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_net::transport::InMemoryHub;

    fn dataset(rows: usize, dim: usize) -> Dataset {
        let records: Vec<Vec<f64>> = (0..rows)
            .map(|i| (0..dim).map(|j| (i * dim + j) as f64 / 7.0).collect())
            .collect();
        let labels: Vec<usize> = (0..rows).map(|i| i % 3).collect();
        Dataset::new(records, labels)
    }

    fn pair() -> (
        Node<sap_net::transport::Endpoint>,
        Node<sap_net::transport::Endpoint>,
    ) {
        let hub = InMemoryHub::new();
        (
            Node::new(hub.endpoint(PartyId(1)), 9),
            Node::new(hub.endpoint(PartyId(2)), 9),
        )
    }

    #[test]
    fn dataset_streams_roundtrip() {
        let (a, b) = pair();
        let data = dataset(100, 5);
        send_dataset(&a, PartyId(2), false, SlotTag(4), &data, 16).unwrap();
        let (from, inbound) = recv_message(&b, Duration::from_secs(2)).unwrap();
        assert_eq!(from, PartyId(1));
        let Inbound::Data(stream) = inbound else {
            panic!("expected data stream");
        };
        assert_eq!(stream.kind(), "perturbed-data");
        assert_eq!(stream.header.slot, SlotTag(4));
        assert_eq!(stream.blocks.len(), 100usize.div_ceil(16));
        let back = stream.into_dataset().unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn relay_preserves_payload_without_decode() {
        let (a, b) = pair();
        let hub2 = InMemoryHub::new();
        let b2 = Node::new(hub2.endpoint(PartyId(2)), 11);
        let miner = Node::new(hub2.endpoint(PartyId(100)), 11);

        let data = dataset(40, 3);
        send_dataset(&a, PartyId(2), false, SlotTag(8), &data, 8).unwrap();
        let (_, inbound) = recv_message(&b, Duration::from_secs(2)).unwrap();
        let Inbound::Data(stream) = inbound else {
            panic!("expected stream");
        };
        relay_stream(&b2, PartyId(100), &stream).unwrap();
        let (_, relayed) = recv_message(&miner, Duration::from_secs(2)).unwrap();
        let Inbound::Data(relayed) = relayed else {
            panic!("expected relayed stream");
        };
        assert_eq!(relayed.kind(), "relayed-data");
        assert_eq!(relayed.header.slot, SlotTag(8));
        assert_eq!(relayed.into_dataset().unwrap(), data);
    }

    #[test]
    fn perturbed_stream_bytes_identical_to_buffered_path() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let data = dataset(75, 4);
        let x = data.to_column_matrix();
        let mut rng = StdRng::seed_from_u64(21);
        let g = GeometricPerturbation::random(4, 0.05, &mut rng);
        let (y, delta) = g.perturb(&x, &mut rng);
        let perturbed = Dataset::from_column_matrix(&y, data.labels().to_vec(), data.num_classes());

        // Buffered: perturb whole matrix, then stream the dataset.
        let (a, b) = pair();
        send_dataset(&a, PartyId(2), false, SlotTag(3), &perturbed, 16).unwrap();
        let (_, inbound) = recv_message(&b, Duration::from_secs(2)).unwrap();
        let Inbound::Data(buffered) = inbound else {
            panic!("expected stream");
        };

        // Streaming: perturb block by block while sending.
        let (a2, b2) = pair();
        send_perturbed_dataset(
            &a2,
            PartyId(2),
            SlotTag(3),
            &g,
            &x,
            &delta,
            data.labels(),
            data.num_classes(),
            16,
        )
        .unwrap();
        let (_, inbound) = recv_message(&b2, Duration::from_secs(2)).unwrap();
        let Inbound::Data(streamed) = inbound else {
            panic!("expected stream");
        };

        assert_eq!(streamed.header, buffered.header);
        assert_eq!(streamed.blocks, buffered.blocks, "wire bytes must match");
    }

    #[test]
    fn recv_flow_delivers_blocks_incrementally() {
        let (a, b) = pair();
        let data = dataset(30, 3);
        send_dataset(&a, PartyId(2), false, SlotTag(9), &data, 10).unwrap();
        let (_, first) = recv_flow(&b, Duration::from_secs(2)).unwrap();
        let FlowInbound::StreamStart { header, last } = first else {
            panic!("expected stream start");
        };
        assert!(!last);
        assert_eq!(header.rows, 30);
        let mut got = 0;
        loop {
            let (_, ev) = recv_flow(&b, Duration::from_secs(2)).unwrap();
            let FlowInbound::StreamBlock { last, .. } = ev else {
                panic!("expected block");
            };
            got += 1;
            if last {
                break;
            }
        }
        assert_eq!(got, 3);
    }

    #[test]
    fn control_messages_pass_through() {
        let (a, b) = pair();
        send_message(
            &a,
            PartyId(2),
            &SapMessage::MiningComplete { unified_records: 9 },
            DEFAULT_BLOCK_ROWS,
        )
        .unwrap();
        let (_, inbound) = recv_message(&b, Duration::from_secs(2)).unwrap();
        assert!(matches!(
            inbound,
            Inbound::Msg(SapMessage::MiningComplete { unified_records: 9 })
        ));
    }

    #[test]
    fn corrupted_block_is_protocol_error() {
        let header = DataHeader {
            session: SessionId::SOLO,
            relay: false,
            slot: SlotTag(1),
            rows: 2,
            dim: 2,
            num_classes: 2,
        };
        // Truncated block.
        let bad = DataStream {
            header,
            blocks: vec![Bytes::from_static(b"\x02\x00\x00\x00")],
        };
        assert!(matches!(bad.into_dataset(), Err(SapError::Protocol(_))));
        // Row shortfall.
        let empty = DataStream {
            header,
            blocks: vec![],
        };
        assert!(matches!(empty.into_dataset(), Err(SapError::Protocol(_))));
    }

    #[test]
    fn out_of_range_label_rejected() {
        let data = dataset(4, 2); // labels 0..3
        let mut header = DataHeader {
            session: SessionId::SOLO,
            relay: false,
            slot: SlotTag(1),
            rows: 4,
            dim: 2,
            num_classes: 3,
        };
        let block = super::encode_block(&data, 0, 4);
        header.num_classes = 2; // now label 2 is out of range
        let stream = DataStream {
            header,
            blocks: vec![block],
        };
        assert!(matches!(stream.into_dataset(), Err(SapError::Protocol(_))));
    }
}
