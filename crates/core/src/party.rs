//! The data-provider actor.
//!
//! Each provider runs [`run_provider`] on its own thread with its private
//! local dataset. The provider:
//!
//! 1. locally optimizes its geometric perturbation `Gᵢ` (randomized
//!    optimizer over the attack suite),
//! 2. waits for the coordinator's [`SapMessage::Setup`] (target space `G_t`,
//!    slot tag, exchange assignment),
//! 3. perturbs its data with `Gᵢ` and streams it to the assigned receiver
//!    as row blocks,
//! 4. relays every dataset stream it receives to the miner **without
//!    decoding it** (the anonymizing hop forwards sealed row blocks),
//! 5. sends its space adaptor `A_it` to the coordinator,
//! 6. evaluates its satisfaction `sᵢ = ρᵢᴳ / ρᵢ` locally.
//!
//! The actor is generic over the transport and codec, so the same code
//! runs over the in-memory hub, the fault injector, and real TCP.

use crate::audit::AuditLog;
use crate::error::SapError;
use crate::link::{self, DataStream, Inbound};
use crate::messages::SapMessage;
use crate::session::{ProviderReport, SapConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::Dataset;
use sap_net::node::Node;
use sap_net::{Codec, PartyId, Transport};
use sap_perturb::{GeometricPerturbation, SpaceAdaptor};
use sap_privacy::optimize::{evaluate_perturbation, optimize};

/// Runs the provider role to completion.
///
/// # Errors
///
/// Returns [`SapError`] on timeout, messaging failure, or protocol
/// violation (wrong message kind, dimension mismatch).
pub fn run_provider<T: Transport, C: Codec>(
    node: &Node<T, C>,
    data: &Dataset,
    coordinator: PartyId,
    miner: PartyId,
    config: &SapConfig,
    audit: &AuditLog,
) -> Result<ProviderReport, SapError> {
    let me = node.id();
    let x = data.to_column_matrix();
    let mut rng = StdRng::seed_from_u64(config.seed ^ me.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // Phase 1: local optimization.
    let opt = optimize(&x, &config.optimizer, &mut rng);
    let g_local = opt.perturbation.clone();
    let rho_local = opt.privacy_guarantee;

    // Phase 2: setup (buffer any early data streams from fast peers).
    let mut pending: Vec<DataStream> = Vec::new();
    let (target, my_slot, send_data_to, expect_incoming) = loop {
        let (from, inbound) =
            link::recv_message(node, config.timeout).map_err(|e| e.or_timeout(me, "setup"))?;
        match inbound {
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::Setup {
                        target,
                        slot,
                        send_data_to,
                        expect_incoming,
                    } => {
                        if from != coordinator {
                            return Err(SapError::Protocol(format!(
                                "setup from non-coordinator {from}"
                            )));
                        }
                        break (target, slot, send_data_to, expect_incoming);
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "unexpected {} before setup",
                            other.kind()
                        )))
                    }
                }
            }
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                if stream.header.relay {
                    return Err(SapError::Protocol(
                        "provider received a relayed-data stream".into(),
                    ));
                }
                pending.push(stream);
            }
        }
    };
    if target.dim() != data.dim() {
        return Err(SapError::Protocol(format!(
            "target dimension {} != local dimension {}",
            target.dim(),
            data.dim()
        )));
    }

    // Phase 3: perturb and stream own data to the assigned receiver.
    let (y, _delta) = g_local.perturb(&x, &mut rng);
    let perturbed = Dataset::from_column_matrix(&y, data.labels().to_vec(), data.num_classes());
    link::send_dataset(
        node,
        send_data_to,
        false,
        my_slot,
        &perturbed,
        config.block_rows,
    )?;

    // Phase 4: relay incoming dataset streams to the miner, blocks
    // untouched (clone `Bytes` handles, never a `Dataset`).
    let mut relayed = 0u32;
    for stream in pending {
        link::relay_stream(node, miner, &stream)?;
        relayed += 1;
    }
    while relayed < expect_incoming {
        let (from, inbound) = link::recv_message(node, config.timeout)
            .map_err(|e| e.or_timeout(me, "data exchange"))?;
        match inbound {
            Inbound::Data(stream) if !stream.header.relay => {
                audit.record_kind(from, me, stream.kind(), true, false);
                link::relay_stream(node, miner, &stream)?;
                relayed += 1;
            }
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                return Err(SapError::Protocol(
                    "unexpected relayed-data during data exchange".into(),
                ));
            }
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                return Err(SapError::Protocol(format!(
                    "unexpected {} during data exchange",
                    msg.kind()
                )));
            }
        }
    }

    // Phase 5: space adaptor to the coordinator.
    let adaptor = SpaceAdaptor::between(g_local.base(), &target)
        .map_err(|e| SapError::Protocol(format!("adaptor construction failed: {e}")))?;
    link::send_message(
        node,
        coordinator,
        &SapMessage::Adaptor { adaptor },
        config.block_rows,
    )?;

    // Phase 6: satisfaction — privacy of my data under the unified space
    // (target rotation/translation with the inherited noise level).
    let g_unified = GeometricPerturbation::new(target, g_local.noise());
    let rho_unified = evaluate_perturbation(&x, &g_unified, &config.optimizer, &mut rng);
    let satisfaction = if rho_local > 1e-12 {
        rho_unified / rho_local
    } else {
        1.0
    };

    Ok(ProviderReport {
        provider: me,
        rho_local,
        rho_unified,
        satisfaction,
        optimizer_history: opt.history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SlotTag;
    use sap_net::transport::InMemoryHub;
    use sap_perturb::Perturbation;
    use std::time::Duration;

    fn tiny_dataset() -> Dataset {
        let records: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                vec![
                    (i % 7) as f64 / 7.0,
                    (i % 5) as f64 / 5.0,
                    (i % 3) as f64 / 3.0,
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        Dataset::new(records, labels)
    }

    fn quick_config() -> SapConfig {
        SapConfig {
            timeout: Duration::from_millis(500),
            ..SapConfig::quick_test()
        }
    }

    /// Drives a single provider through the protocol by hand from a fake
    /// coordinator + receiver + miner.
    #[test]
    fn provider_full_happy_path() {
        let hub = InMemoryHub::new();
        let secret = 7;
        let provider_node = Node::new(hub.endpoint(PartyId(0)), secret);
        let coord = Node::new(hub.endpoint(PartyId(1)), secret);
        let receiver = Node::new(hub.endpoint(PartyId(2)), secret);
        let miner = Node::new(hub.endpoint(PartyId(100)), secret);
        let audit = AuditLog::new();
        let data = tiny_dataset();
        let config = quick_config();

        let audit_p = audit.clone();
        let data_p = data.clone();
        let config_p = config.clone();
        let handle = std::thread::spawn(move || {
            run_provider(
                &provider_node,
                &data_p,
                PartyId(1),
                PartyId(100),
                &config_p,
                &audit_p,
            )
        });

        // Coordinator sends setup: provider 0 relays one incoming dataset.
        let mut rng = StdRng::seed_from_u64(3);
        let target = Perturbation::random(3, &mut rng);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target,
                    slot: SlotTag(11),
                    send_data_to: PartyId(2),
                    expect_incoming: 1,
                },
            )
            .unwrap();

        // The receiver gets the provider's perturbed data stream.
        let (_, inbound) = link::recv_message(&receiver, config.timeout).unwrap();
        let Inbound::Data(stream) = inbound else {
            panic!("expected perturbed data stream");
        };
        assert_eq!(stream.header.slot, SlotTag(11));
        assert!(!stream.header.relay);
        let perturbed = stream.into_dataset().unwrap();
        assert_eq!(perturbed.len(), data.len());
        assert_eq!(perturbed.labels(), data.labels());
        // Perturbed values differ from the original.
        assert_ne!(perturbed.record(0), data.record(0));

        // Feed the provider one dataset stream to relay.
        link::send_dataset(
            &receiver,
            PartyId(0),
            false,
            SlotTag(22),
            &tiny_dataset(),
            8,
        )
        .unwrap();

        // Miner receives the relayed stream, bytes identical to the
        // original perturbed payload.
        let (from, inbound) = link::recv_message(&miner, config.timeout).unwrap();
        assert_eq!(from, PartyId(0));
        let Inbound::Data(relayed) = inbound else {
            panic!("expected relayed stream");
        };
        assert!(relayed.header.relay);
        assert_eq!(relayed.header.slot, SlotTag(22));
        assert_eq!(relayed.into_dataset().unwrap(), tiny_dataset());

        // Coordinator receives the adaptor.
        let (from, msg): (PartyId, SapMessage) = coord.recv_msg().unwrap();
        assert_eq!(from, PartyId(0));
        assert!(matches!(msg, SapMessage::Adaptor { .. }));

        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.provider, PartyId(0));
        assert!(report.rho_local >= 0.0);
        assert!(report.satisfaction >= 0.0);
        assert_eq!(report.optimizer_history.len(), config.optimizer.candidates);
    }

    #[test]
    fn provider_times_out_without_setup() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let audit = AuditLog::new();
        let config = SapConfig {
            timeout: Duration::from_millis(30),
            ..SapConfig::quick_test()
        };
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(
            matches!(err, SapError::Timeout { phase: "setup", .. }),
            "{err}"
        );
    }

    #[test]
    fn provider_rejects_setup_from_impostor() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let impostor = Node::new(hub.endpoint(PartyId(5)), 7);
        let audit = AuditLog::new();
        let config = quick_config();

        let mut rng = StdRng::seed_from_u64(4);
        impostor
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(3, &mut rng),
                    slot: SlotTag(1),
                    send_data_to: PartyId(5),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(matches!(err, SapError::Protocol(_)), "{err}");
    }

    #[test]
    fn provider_rejects_dimension_mismatch() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let coord = Node::new(hub.endpoint(PartyId(1)), 7);
        let audit = AuditLog::new();
        let config = quick_config();

        let mut rng = StdRng::seed_from_u64(5);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(5, &mut rng), // data is 3-dim
                    slot: SlotTag(1),
                    send_data_to: PartyId(1),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(err.to_string().contains("dimension"), "{err}");
    }

    #[test]
    fn provider_rejects_relayed_stream() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let peer = Node::new(hub.endpoint(PartyId(2)), 7);
        let audit = AuditLog::new();
        let config = quick_config();

        link::send_dataset(&peer, PartyId(0), true, SlotTag(2), &tiny_dataset(), 8).unwrap();
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(err.to_string().contains("relayed-data"), "{err}");
    }
}
