//! The data-provider actor.
//!
//! Each provider runs [`run_provider`] on its own thread with its private
//! local dataset. The provider:
//!
//! 1. locally optimizes its geometric perturbation `Gᵢ` (randomized
//!    optimizer over the attack suite),
//! 2. waits for the coordinator's [`SapMessage::Setup`] (target space `G_t`,
//!    slot tag, exchange assignment),
//! 3. perturbs its data with `Gᵢ` and streams it to the assigned receiver
//!    as row blocks,
//! 4. relays every dataset stream it receives to the miner **without
//!    decoding it** (the anonymizing hop forwards sealed row blocks),
//! 5. sends its space adaptor `A_it` to the coordinator,
//! 6. evaluates its satisfaction `sᵢ = ρᵢᴳ / ρᵢ` locally.
//!
//! The actor is generic over the transport and codec, so the same code
//! runs over the in-memory hub, the fault injector, and real TCP.

use crate::error::SapError;
use crate::link::{self, DataHeader, DataStream, FlowInbound, Inbound};
use crate::messages::{SapMessage, SlotTag};
use crate::session::{DataPlane, ProviderReport, RoleCtx};
use crate::stream::StreamMonitor;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::Dataset;
use sap_linalg::Matrix;
use sap_net::node::{Node, StreamHandle};
use sap_net::{Codec, PartyId, Transport};
use sap_perturb::{GeometricPerturbation, Perturbation, SpaceAdaptor};
use sap_privacy::engine;
use sap_privacy::optimize::evaluate_perturbation;
use std::collections::{HashMap, VecDeque};

/// Runs the provider role to completion. The [`RoleCtx`] carries the
/// session's configuration, roster, observability, and liveness regime —
/// every blocking receive observes the session-wide deadline and fails
/// fast with [`SapError::PeerFailure`] when a roster peer dies.
///
/// # Errors
///
/// Returns [`SapError`] on timeout, peer failure, cancellation,
/// messaging failure, or protocol violation (wrong message kind,
/// dimension mismatch).
pub fn run_provider<T: Transport, C: Codec>(
    node: &Node<T, C>,
    data: &Dataset,
    ctx: &RoleCtx<'_>,
) -> Result<ProviderReport, SapError> {
    let me = node.id();
    let config = ctx.config;
    let coordinator = ctx.roster.coordinator();
    let x = data.to_column_matrix();
    let mut rng = StdRng::seed_from_u64(config.seed ^ me.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // Phase 1: local optimization through the staged, parallel engine.
    let engine_out = engine::run(&x, &config.optimizer, &mut rng)?;
    let opt = engine_out.result;
    let g_local = opt.perturbation.clone();
    let rho_local = opt.privacy_guarantee;

    // Phases 2–4 (setup, own-data send, relay) differ per data plane;
    // both orderings draw the same RNG stream and put the same bytes on
    // the wire, so the session outcome is byte-identical either way.
    let target = match config.data_plane {
        DataPlane::Buffered => exchange_buffered(node, data, &x, &g_local, ctx, &mut rng)?,
        DataPlane::Streaming => exchange_streaming(node, data, &x, &g_local, ctx, &mut rng)?,
    };

    // Phase 5: space adaptor to the coordinator.
    let adaptor = SpaceAdaptor::between(g_local.base(), &target)
        .map_err(|e| SapError::Protocol(format!("adaptor construction failed: {e}")))?;
    link::send_message(
        node,
        coordinator,
        &SapMessage::Adaptor { adaptor },
        config.block_rows,
    )?;

    // Phase 6: satisfaction — privacy of my data under the unified space
    // (target rotation/translation with the inherited noise level).
    let g_unified = GeometricPerturbation::new(target, g_local.noise());
    let rho_unified = evaluate_perturbation(&x, &g_unified, &config.optimizer, &mut rng);
    let satisfaction = if rho_local > 1e-12 {
        rho_unified / rho_local
    } else {
        1.0
    };

    Ok(ProviderReport {
        provider: me,
        rho_local,
        rho_unified,
        satisfaction,
        optimizer_history: opt.history,
        optimizer: engine_out.stats,
    })
}

/// Phases 2–4 on the buffered plane: wait for setup (buffering early
/// streams whole), perturb and send the entire dataset, then relay each
/// fully received stream.
fn exchange_buffered<T: Transport, C: Codec>(
    node: &Node<T, C>,
    data: &Dataset,
    x: &Matrix,
    g_local: &GeometricPerturbation,
    ctx: &RoleCtx<'_>,
    rng: &mut StdRng,
) -> Result<Perturbation, SapError> {
    let me = node.id();
    let config = ctx.config;
    let audit = ctx.audit;
    let coordinator = ctx.roster.coordinator();
    let miner = ctx.roster.miner;

    // Phase 2: setup (buffer any early data streams from fast peers).
    let mut pending: Vec<DataStream> = Vec::new();
    let (target, my_slot, send_data_to, expect_incoming) = loop {
        let (from, inbound) = link::recv_message_ctx(node, ctx, "setup")?;
        match inbound {
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::Setup {
                        target,
                        slot,
                        send_data_to,
                        expect_incoming,
                    } => {
                        if from != coordinator {
                            return Err(SapError::Protocol(format!(
                                "setup from non-coordinator {from}"
                            )));
                        }
                        break (target, slot, send_data_to, expect_incoming);
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "unexpected {} before setup",
                            other.kind()
                        )))
                    }
                }
            }
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                if stream.header.relay {
                    return Err(SapError::Protocol(
                        "provider received a relayed-data stream".into(),
                    ));
                }
                pending.push(stream);
            }
        }
    };
    if target.dim() != data.dim() {
        return Err(SapError::Protocol(format!(
            "target dimension {} != local dimension {}",
            target.dim(),
            data.dim()
        )));
    }

    // Phase 3: perturb and stream own data to the assigned receiver.
    let (y, _delta) = g_local.perturb(x, rng);
    let perturbed = Dataset::from_column_matrix(&y, data.labels().to_vec(), data.num_classes());
    link::send_dataset(
        node,
        send_data_to,
        false,
        my_slot,
        &perturbed,
        config.block_rows,
    )?;

    // Phase 4: relay incoming dataset streams to the miner, blocks
    // untouched (clone `Bytes` handles, never a `Dataset`).
    let mut relayed = 0u32;
    for stream in pending {
        link::relay_stream(node, miner, &stream)?;
        relayed += 1;
    }
    while relayed < expect_incoming {
        let (from, inbound) = link::recv_message_ctx(node, ctx, "data exchange")?;
        match inbound {
            Inbound::Data(stream) if !stream.header.relay => {
                audit.record_kind(from, me, stream.kind(), true, false);
                link::relay_stream(node, miner, &stream)?;
                relayed += 1;
            }
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                return Err(SapError::Protocol(
                    "unexpected relayed-data during data exchange".into(),
                ));
            }
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                return Err(SapError::Protocol(format!(
                    "unexpected {} during data exchange",
                    msg.kind()
                )));
            }
        }
    }
    Ok(target)
}

/// Phases 2–4 on the streaming plane: one event loop that forwards
/// incoming row blocks to the miner **as they arrive** (the relay pump),
/// perturbs the provider's own data block-by-block while sending, and
/// accepts setup whenever the coordinator's frame lands — the relay hop
/// is pipelined instead of store-and-forward.
fn exchange_streaming<T: Transport, C: Codec>(
    node: &Node<T, C>,
    data: &Dataset,
    x: &Matrix,
    g_local: &GeometricPerturbation,
    ctx: &RoleCtx<'_>,
    rng: &mut StdRng,
) -> Result<Perturbation, SapError> {
    let me = node.id();
    let config = ctx.config;
    let audit = ctx.audit;
    let coordinator = ctx.roster.coordinator();
    let miner = ctx.roster.miner;
    let mut pump = RelayPump::new(node, miner, ctx.monitor);
    let mut setup: Option<(Perturbation, SlotTag, PartyId, u32)> = None;
    let mut sent_own = false;
    loop {
        if let Some((_, slot, send_data_to, expect)) = &setup {
            if !sent_own {
                // Phase 3, block-streamed: the noise is drawn exactly as
                // the buffered `perturb` would (same RNG order), but the
                // affine math runs one block at a time, overlapped with
                // the transport.
                let delta = g_local.noise().sample(x.rows(), x.cols(), rng);
                link::send_perturbed_dataset(
                    node,
                    *send_data_to,
                    *slot,
                    g_local,
                    x,
                    &delta,
                    data.labels(),
                    data.num_classes(),
                    config.block_rows,
                )?;
                sent_own = true;
                continue;
            }
            if pump.relayed() >= *expect && pump.idle() {
                break;
            }
        }
        let phase = if setup.is_some() {
            "data exchange"
        } else {
            "setup"
        };
        let (from, event) = link::recv_flow_ctx(node, ctx, phase)?;
        match event {
            FlowInbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::Setup {
                        target,
                        slot,
                        send_data_to,
                        expect_incoming,
                    } if setup.is_none() => {
                        if from != coordinator {
                            return Err(SapError::Protocol(format!(
                                "setup from non-coordinator {from}"
                            )));
                        }
                        if target.dim() != data.dim() {
                            return Err(SapError::Protocol(format!(
                                "target dimension {} != local dimension {}",
                                target.dim(),
                                data.dim()
                            )));
                        }
                        setup = Some((target, slot, send_data_to, expect_incoming));
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "unexpected {} {}",
                            other.kind(),
                            if setup.is_some() {
                                "during data exchange"
                            } else {
                                "before setup"
                            }
                        )))
                    }
                }
            }
            FlowInbound::StreamStart { header, last } => {
                audit.record_kind(
                    from,
                    me,
                    if header.relay {
                        "relayed-data"
                    } else {
                        "perturbed-data"
                    },
                    true,
                    false,
                );
                if header.relay {
                    return Err(SapError::Protocol(
                        "provider received a relayed-data stream".into(),
                    ));
                }
                pump.start(from, header, last)?;
            }
            FlowInbound::StreamBlock { bytes, last } => pump.block(from, bytes, last)?,
        }
    }
    Ok(setup.expect("loop exits only after setup").0)
}

/// State of one inbound stream waiting for (or buffered behind) the
/// single outbound relay lane to the miner.
struct PendingRelay {
    header: DataHeader,
    blocks: Vec<Bytes>,
    done: bool,
}

/// Forwards inbound dataset streams to the miner block-by-block, while
/// they are still arriving. One outbound stream per peer may be open at a
/// time (receivers reassemble per sender), so when several inbound
/// streams interleave, the first goes through *live* and the rest buffer
/// until the lane frees — still overlapping their tails once promoted.
struct RelayPump<'n, T: Transport, C: Codec> {
    node: &'n Node<T, C>,
    miner: PartyId,
    monitor: &'n StreamMonitor,
    /// The inbound sender whose blocks are being forwarded live, and the
    /// open outbound stream carrying them.
    live: Option<(PartyId, StreamHandle)>,
    /// Senders whose streams wait for the lane, FIFO.
    waiting: VecDeque<PartyId>,
    pending: HashMap<PartyId, PendingRelay>,
    relayed: u32,
}

impl<'n, T: Transport, C: Codec> RelayPump<'n, T, C> {
    fn new(node: &'n Node<T, C>, miner: PartyId, monitor: &'n StreamMonitor) -> Self {
        RelayPump {
            node,
            miner,
            monitor,
            live: None,
            waiting: VecDeque::new(),
            pending: HashMap::new(),
            relayed: 0,
        }
    }

    /// Streams fully forwarded to the miner.
    fn relayed(&self) -> u32 {
        self.relayed
    }

    /// `true` when nothing is being forwarded or waiting.
    fn idle(&self) -> bool {
        self.live.is_none() && self.waiting.is_empty()
    }

    /// An inbound stream opened at this provider.
    fn start(&mut self, from: PartyId, header: DataHeader, last: bool) -> Result<(), SapError> {
        self.monitor.stream_opened();
        // A sender opening a new stream while its previous one is still
        // queued or live would corrupt the pending buffer (the frame
        // layer only rejects a new header *mid*-stream). Honest senders
        // stream once; abort like the other protocol violations.
        if self.pending.contains_key(&from)
            || self
                .live
                .as_ref()
                .is_some_and(|(sender, _)| *sender == from)
        {
            return Err(SapError::Protocol(format!(
                "second data stream from {from} while its first is still relaying"
            )));
        }
        if last {
            // Empty stream (the miner will reject it, but the relay's job
            // is to forward unchanged).
            self.monitor.stream_closed();
        }
        let relay_header = DataHeader {
            relay: true,
            ..header
        };
        if self.live.is_none() && self.waiting.is_empty() {
            if last {
                self.node.begin_stream(self.miner, &relay_header, true)?;
                self.relayed += 1;
            } else {
                let handle = self.node.begin_stream(self.miner, &relay_header, false)?;
                self.live = Some((from, handle));
            }
        } else {
            self.pending.insert(
                from,
                PendingRelay {
                    header,
                    blocks: Vec::new(),
                    done: last,
                },
            );
            self.waiting.push_back(from);
        }
        Ok(())
    }

    /// One inbound block arrived; forward it live or buffer it.
    fn block(&mut self, from: PartyId, bytes: Bytes, last: bool) -> Result<(), SapError> {
        self.monitor.block_received();
        if last {
            self.monitor.stream_closed();
        }
        if let Some((sender, handle)) = self.live.as_mut() {
            if *sender == from {
                self.node.stream_block(handle, bytes, last)?;
                self.monitor.block_pipelined();
                if last {
                    self.live = None;
                    self.relayed += 1;
                    self.drain_waiting()?;
                }
                return Ok(());
            }
        }
        let pending = self
            .pending
            .get_mut(&from)
            .ok_or_else(|| SapError::Protocol("stream block without an open stream".into()))?;
        pending.blocks.push(bytes);
        if last {
            pending.done = true;
        }
        if self.live.is_none() {
            self.drain_waiting()?;
        }
        Ok(())
    }

    /// Promotes waiting streams onto the free lane: complete ones are
    /// sent whole; the first incomplete one is flushed and goes live for
    /// the rest of its blocks.
    fn drain_waiting(&mut self) -> Result<(), SapError> {
        while self.live.is_none() {
            let Some(front) = self.waiting.pop_front() else {
                break;
            };
            let pending = self
                .pending
                .remove(&front)
                .expect("waiting senders have pending state");
            let relay_header = DataHeader {
                relay: true,
                ..pending.header
            };
            if pending.done {
                self.node
                    .send_stream(self.miner, &relay_header, pending.blocks)?;
                self.relayed += 1;
            } else {
                let mut handle = self.node.begin_stream(self.miner, &relay_header, false)?;
                for block in pending.blocks {
                    // None of these is the stream's last block (the
                    // stream is not done), so the lane stays open.
                    self.node.stream_block(&mut handle, block, false)?;
                }
                self.live = Some((front, handle));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditLog;
    use crate::liveness::Roster;
    use crate::messages::SlotTag;
    use crate::session::{SapConfig, StandaloneCtx};
    use sap_net::transport::InMemoryHub;
    use sap_perturb::Perturbation;
    use std::time::Duration;

    /// A provider-0 harness: coordinator 1 (roster-last), peer 2,
    /// miner 100.
    fn harness(config: SapConfig) -> StandaloneCtx {
        StandaloneCtx::new(
            Roster::new(vec![PartyId(0), PartyId(2), PartyId(1)], PartyId(100)),
            config,
        )
    }

    fn tiny_dataset() -> Dataset {
        let records: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                vec![
                    (i % 7) as f64 / 7.0,
                    (i % 5) as f64 / 5.0,
                    (i % 3) as f64 / 3.0,
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        Dataset::new(records, labels)
    }

    fn quick_config() -> SapConfig {
        SapConfig {
            timeout: Duration::from_millis(500),
            ..SapConfig::quick_test()
        }
    }

    /// Drives a single provider through the protocol by hand from a fake
    /// coordinator + receiver + miner.
    #[test]
    fn provider_full_happy_path() {
        let hub = InMemoryHub::new();
        let secret = 7;
        let provider_node = Node::new(hub.endpoint(PartyId(0)), secret);
        let coord = Node::new(hub.endpoint(PartyId(1)), secret);
        let receiver = Node::new(hub.endpoint(PartyId(2)), secret);
        let miner = Node::new(hub.endpoint(PartyId(100)), secret);
        let audit = AuditLog::new();
        let data = tiny_dataset();
        let config = quick_config();

        let audit_p = audit.clone();
        let data_p = data.clone();
        let config_p = config.clone();
        let handle = std::thread::spawn(move || {
            let mut sc = harness(config_p);
            sc.audit = audit_p;
            run_provider(&provider_node, &data_p, &sc.ctx())
        });

        // Coordinator sends setup: provider 0 relays one incoming dataset.
        let mut rng = StdRng::seed_from_u64(3);
        let target = Perturbation::random(3, &mut rng);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target,
                    slot: SlotTag(11),
                    send_data_to: PartyId(2),
                    expect_incoming: 1,
                },
            )
            .unwrap();

        // The receiver gets the provider's perturbed data stream.
        let (_, inbound) = link::recv_message(&receiver, config.timeout).unwrap();
        let Inbound::Data(stream) = inbound else {
            panic!("expected perturbed data stream");
        };
        assert_eq!(stream.header.slot, SlotTag(11));
        assert!(!stream.header.relay);
        let perturbed = stream.into_dataset().unwrap();
        assert_eq!(perturbed.len(), data.len());
        assert_eq!(perturbed.labels(), data.labels());
        // Perturbed values differ from the original.
        assert_ne!(perturbed.record(0), data.record(0));

        // Feed the provider one dataset stream to relay.
        link::send_dataset(
            &receiver,
            PartyId(0),
            false,
            SlotTag(22),
            &tiny_dataset(),
            8,
        )
        .unwrap();

        // Miner receives the relayed stream, bytes identical to the
        // original perturbed payload.
        let (from, inbound) = link::recv_message(&miner, config.timeout).unwrap();
        assert_eq!(from, PartyId(0));
        let Inbound::Data(relayed) = inbound else {
            panic!("expected relayed stream");
        };
        assert!(relayed.header.relay);
        assert_eq!(relayed.header.slot, SlotTag(22));
        assert_eq!(relayed.into_dataset().unwrap(), tiny_dataset());

        // Coordinator receives the adaptor.
        let (from, msg): (PartyId, SapMessage) = coord.recv_msg().unwrap();
        assert_eq!(from, PartyId(0));
        assert!(matches!(msg, SapMessage::Adaptor { .. }));

        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.provider, PartyId(0));
        assert!(report.rho_local >= 0.0);
        assert!(report.satisfaction >= 0.0);
        assert_eq!(report.optimizer_history.len(), config.optimizer.candidates);
    }

    #[test]
    fn provider_times_out_without_setup() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let sc = harness(SapConfig {
            timeout: Duration::from_millis(30),
            ..SapConfig::quick_test()
        });
        let err = run_provider(&provider_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(
            matches!(err, SapError::Timeout { phase: "setup", .. }),
            "{err}"
        );
    }

    #[test]
    fn provider_rejects_setup_from_impostor() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let impostor = Node::new(hub.endpoint(PartyId(5)), 7);
        let sc = harness(quick_config());

        let mut rng = StdRng::seed_from_u64(4);
        impostor
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(3, &mut rng),
                    slot: SlotTag(1),
                    send_data_to: PartyId(5),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(&provider_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(matches!(err, SapError::Protocol(_)), "{err}");
    }

    #[test]
    fn provider_rejects_dimension_mismatch() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let coord = Node::new(hub.endpoint(PartyId(1)), 7);
        let sc = harness(quick_config());

        let mut rng = StdRng::seed_from_u64(5);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(5, &mut rng), // data is 3-dim
                    slot: SlotTag(1),
                    send_data_to: PartyId(1),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(&provider_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(err.to_string().contains("dimension"), "{err}");
    }

    #[test]
    fn provider_fails_fast_when_roster_peer_dies() {
        // The provider is blocked waiting for setup on a long timeout;
        // its coordinator dies. The typed PeerFailure must arrive in
        // O(detection), not O(timeout) — and a stranger's death first
        // must be ignored.
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let _coord = hub.endpoint(PartyId(1));
        let _stranger = hub.endpoint(PartyId(77));
        let sc = harness(SapConfig {
            timeout: Duration::from_secs(60),
            ..SapConfig::quick_test()
        });
        let hub_clone = hub.clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            hub_clone.kill(PartyId(77)); // not on the roster: ignored
            hub_clone.kill(PartyId(1)); // the coordinator: fatal
        });
        let start = std::time::Instant::now();
        let err = run_provider(&provider_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        killer.join().unwrap();
        assert!(
            matches!(
                err,
                SapError::PeerFailure {
                    party: PartyId(1),
                    phase: "setup"
                }
            ),
            "{err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "peer failure must beat the 60 s receive timeout"
        );
    }

    /// A sender opening a second stream while its first still waits for
    /// the relay lane must abort with a protocol error — never corrupt
    /// the pending buffer or panic the role.
    #[test]
    fn relay_pump_rejects_second_stream_from_queued_sender() {
        use sap_net::SessionId;

        let hub = InMemoryHub::new();
        let node = Node::new(hub.endpoint(PartyId(0)), 7);
        let _miner = hub.endpoint(PartyId(100));
        let monitor = StreamMonitor::new();
        let mut pump = RelayPump::new(&node, PartyId(100), &monitor);
        let header = |slot| DataHeader {
            session: SessionId::SOLO,
            relay: false,
            slot,
            rows: 8,
            dim: 2,
            num_classes: 2,
        };
        // Party 1's stream takes the lane; party 2 queues behind it and
        // finishes its inbound stream while waiting.
        pump.start(PartyId(1), header(SlotTag(1)), false).unwrap();
        pump.start(PartyId(2), header(SlotTag(2)), false).unwrap();
        pump.block(PartyId(2), Bytes::from_static(b"\x01\x00\x00\x00"), true)
            .unwrap();
        // Party 2 opens another stream while its first is still queued.
        let err = pump
            .start(PartyId(2), header(SlotTag(3)), false)
            .unwrap_err();
        assert!(err.to_string().contains("second data stream"), "{err}");
    }

    #[test]
    fn provider_rejects_relayed_stream() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let peer = Node::new(hub.endpoint(PartyId(2)), 7);
        let sc = harness(quick_config());

        link::send_dataset(&peer, PartyId(0), true, SlotTag(2), &tiny_dataset(), 8).unwrap();
        let err = run_provider(&provider_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(err.to_string().contains("relayed-data"), "{err}");
    }
}
