//! The data-provider actor.
//!
//! Each provider runs [`run_provider`] on its own thread with its private
//! local dataset. The provider:
//!
//! 1. locally optimizes its geometric perturbation `Gᵢ` (randomized
//!    optimizer over the attack suite),
//! 2. waits for the coordinator's [`SapMessage::Setup`] (target space `G_t`,
//!    slot tag, exchange assignment),
//! 3. perturbs its data with `Gᵢ` and ships it to the assigned receiver,
//! 4. relays every dataset it receives to the miner (the anonymizing hop),
//! 5. sends its space adaptor `A_it` to the coordinator,
//! 6. evaluates its satisfaction `sᵢ = ρᵢᴳ / ρᵢ` locally.

use crate::audit::AuditLog;
use crate::error::SapError;
use crate::messages::{SapMessage, SlotTag};
use crate::session::{ProviderReport, SapConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::Dataset;
use sap_net::node::Node;
use sap_net::{PartyId, Transport};
use sap_perturb::{GeometricPerturbation, SpaceAdaptor};
use sap_privacy::optimize::{evaluate_perturbation, optimize};

/// Runs the provider role to completion.
///
/// # Errors
///
/// Returns [`SapError`] on timeout, messaging failure, or protocol
/// violation (wrong message kind, dimension mismatch).
pub fn run_provider<T: Transport>(
    node: &Node<T>,
    data: &Dataset,
    coordinator: PartyId,
    miner: PartyId,
    config: &SapConfig,
    audit: &AuditLog,
) -> Result<ProviderReport, SapError> {
    let me = node.id();
    let x = data.to_column_matrix();
    let mut rng = StdRng::seed_from_u64(config.seed ^ me.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // Phase 1: local optimization.
    let opt = optimize(&x, &config.optimizer, &mut rng);
    let g_local = opt.perturbation.clone();
    let rho_local = opt.privacy_guarantee;

    // Phase 2: setup (buffer any early data from fast peers).
    let mut pending: Vec<(PartyId, SlotTag, Dataset)> = Vec::new();
    let (target, my_slot, send_data_to, expect_incoming) = loop {
        let (from, msg): (PartyId, SapMessage) = node
            .recv_msg_timeout(config.timeout)
            .map_err(|e| timeout_or(e, me, "setup"))?;
        audit.record(from, me, &msg);
        match msg {
            SapMessage::Setup {
                target,
                slot,
                send_data_to,
                expect_incoming,
            } => {
                if from != coordinator {
                    return Err(SapError::Protocol(format!("setup from non-coordinator {from}")));
                }
                break (target, slot, send_data_to, expect_incoming);
            }
            SapMessage::PerturbedData { slot, data } => pending.push((from, slot, data)),
            other => {
                return Err(SapError::Protocol(format!(
                    "unexpected {} before setup",
                    other.kind()
                )))
            }
        }
    };
    if target.dim() != data.dim() {
        return Err(SapError::Protocol(format!(
            "target dimension {} != local dimension {}",
            target.dim(),
            data.dim()
        )));
    }

    // Phase 3: perturb and ship own data.
    let (y, _delta) = g_local.perturb(&x, &mut rng);
    let perturbed = Dataset::from_column_matrix(&y, data.labels().to_vec(), data.num_classes());
    node.send_msg(
        send_data_to,
        &SapMessage::PerturbedData {
            slot: my_slot,
            data: perturbed,
        },
    )?;

    // Phase 4: relay incoming datasets to the miner.
    let mut relayed = 0u32;
    for (_, slot, data) in pending {
        node.send_msg(miner, &SapMessage::RelayedData { slot, data })?;
        relayed += 1;
    }
    while relayed < expect_incoming {
        let (from, msg): (PartyId, SapMessage) = node
            .recv_msg_timeout(config.timeout)
            .map_err(|e| timeout_or(e, me, "data exchange"))?;
        audit.record(from, me, &msg);
        match msg {
            SapMessage::PerturbedData { slot, data } => {
                node.send_msg(miner, &SapMessage::RelayedData { slot, data })?;
                relayed += 1;
            }
            other => {
                return Err(SapError::Protocol(format!(
                    "unexpected {} during data exchange",
                    other.kind()
                )))
            }
        }
    }

    // Phase 5: space adaptor to the coordinator.
    let adaptor = SpaceAdaptor::between(g_local.base(), &target)
        .map_err(|e| SapError::Protocol(format!("adaptor construction failed: {e}")))?;
    node.send_msg(coordinator, &SapMessage::Adaptor { adaptor })?;

    // Phase 6: satisfaction — privacy of my data under the unified space
    // (target rotation/translation with the inherited noise level).
    let g_unified = GeometricPerturbation::new(target, g_local.noise());
    let rho_unified = evaluate_perturbation(&x, &g_unified, &config.optimizer, &mut rng);
    let satisfaction = if rho_local > 1e-12 {
        rho_unified / rho_local
    } else {
        1.0
    };

    Ok(ProviderReport {
        provider: me,
        rho_local,
        rho_unified,
        satisfaction,
        optimizer_history: opt.history,
    })
}

fn timeout_or(e: sap_net::node::NodeError, who: PartyId, phase: &'static str) -> SapError {
    match e {
        sap_net::node::NodeError::Transport(sap_net::TransportError::Timeout) => {
            SapError::Timeout {
                waiting: who,
                phase,
            }
        }
        other => SapError::Messaging(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_net::transport::InMemoryHub;
    use sap_perturb::Perturbation;
    use std::time::Duration;

    fn tiny_dataset() -> Dataset {
        let records: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64 / 7.0, (i % 5) as f64 / 5.0, (i % 3) as f64 / 3.0])
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        Dataset::new(records, labels)
    }

    fn quick_config() -> SapConfig {
        SapConfig {
            timeout: Duration::from_millis(500),
            ..SapConfig::quick_test()
        }
    }

    /// Drives a single provider through the protocol by hand from a fake
    /// coordinator + receiver + miner.
    #[test]
    fn provider_full_happy_path() {
        let hub = InMemoryHub::new();
        let secret = 7;
        let provider_node = Node::new(hub.endpoint(PartyId(0)), secret);
        let coord = Node::new(hub.endpoint(PartyId(1)), secret);
        let receiver = Node::new(hub.endpoint(PartyId(2)), secret);
        let miner = Node::new(hub.endpoint(PartyId(100)), secret);
        let audit = AuditLog::new();
        let data = tiny_dataset();
        let config = quick_config();

        let audit_p = audit.clone();
        let data_p = data.clone();
        let config_p = config.clone();
        let handle = std::thread::spawn(move || {
            run_provider(
                &provider_node,
                &data_p,
                PartyId(1),
                PartyId(100),
                &config_p,
                &audit_p,
            )
        });

        // Coordinator sends setup: provider 0 relays one incoming dataset.
        let mut rng = StdRng::seed_from_u64(3);
        let target = Perturbation::random(3, &mut rng);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target,
                    slot: SlotTag(11),
                    send_data_to: PartyId(2),
                    expect_incoming: 1,
                },
            )
            .unwrap();

        // The receiver gets the provider's perturbed data.
        let (_, msg): (PartyId, SapMessage) = receiver.recv_msg().unwrap();
        let SapMessage::PerturbedData { slot, data: perturbed } = msg else {
            panic!("expected perturbed data");
        };
        assert_eq!(slot, SlotTag(11));
        assert_eq!(perturbed.len(), data.len());
        assert_eq!(perturbed.labels(), data.labels());
        // Perturbed values differ from the original.
        assert_ne!(perturbed.record(0), data.record(0));

        // Feed the provider one dataset to relay.
        receiver
            .send_msg(
                PartyId(0),
                &SapMessage::PerturbedData {
                    slot: SlotTag(22),
                    data: tiny_dataset(),
                },
            )
            .unwrap();

        // Miner receives the relayed dataset.
        let (from, msg): (PartyId, SapMessage) = miner.recv_msg().unwrap();
        assert_eq!(from, PartyId(0));
        let SapMessage::RelayedData { slot, .. } = msg else {
            panic!("expected relayed data");
        };
        assert_eq!(slot, SlotTag(22));

        // Coordinator receives the adaptor.
        let (from, msg): (PartyId, SapMessage) = coord.recv_msg().unwrap();
        assert_eq!(from, PartyId(0));
        assert!(matches!(msg, SapMessage::Adaptor { .. }));

        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.provider, PartyId(0));
        assert!(report.rho_local >= 0.0);
        assert!(report.satisfaction >= 0.0);
        assert_eq!(report.optimizer_history.len(), config.optimizer.candidates);
    }

    #[test]
    fn provider_times_out_without_setup() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let audit = AuditLog::new();
        let config = SapConfig {
            timeout: Duration::from_millis(30),
            ..SapConfig::quick_test()
        };
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(matches!(err, SapError::Timeout { phase: "setup", .. }), "{err}");
    }

    #[test]
    fn provider_rejects_setup_from_impostor() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let impostor = Node::new(hub.endpoint(PartyId(5)), 7);
        let audit = AuditLog::new();
        let config = quick_config();

        let mut rng = StdRng::seed_from_u64(4);
        impostor
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(3, &mut rng),
                    slot: SlotTag(1),
                    send_data_to: PartyId(5),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(matches!(err, SapError::Protocol(_)), "{err}");
    }

    #[test]
    fn provider_rejects_dimension_mismatch() {
        let hub = InMemoryHub::new();
        let provider_node = Node::new(hub.endpoint(PartyId(0)), 7);
        let coord = Node::new(hub.endpoint(PartyId(1)), 7);
        let audit = AuditLog::new();
        let config = quick_config();

        let mut rng = StdRng::seed_from_u64(5);
        coord
            .send_msg(
                PartyId(0),
                &SapMessage::Setup {
                    target: Perturbation::random(5, &mut rng), // data is 3-dim
                    slot: SlotTag(1),
                    send_data_to: PartyId(1),
                    expect_incoming: 0,
                },
            )
            .unwrap();
        let err = run_provider(
            &provider_node,
            &tiny_dataset(),
            PartyId(1),
            PartyId(100),
            &config,
            &audit,
        )
        .unwrap_err();
        assert!(err.to_string().contains("dimension"), "{err}");
    }
}
