//! The who-saw-what audit ledger.
//!
//! SAP's privacy argument is an information-flow argument: the coordinator
//! never observes (perturbed) data, the miner never observes raw
//! perturbation parameters next to identified sources, and data reaches the
//! miner only through an anonymizing relay hop. Rather than trusting the
//! role implementations, every actor appends each message it *receives* to
//! a shared ledger (message kind and endpoints only — never payloads), and
//! tests assert the flow properties over the ledger.

use crate::messages::SapMessage;
use parking_lot::Mutex;
use sap_net::PartyId;
use std::sync::Arc;

/// One observed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Sender.
    pub from: PartyId,
    /// Receiver (the party recording the event).
    pub to: PartyId,
    /// Message kind (see [`SapMessage::kind`]).
    pub kind: &'static str,
    /// Whether the payload carried record data.
    pub carries_data: bool,
    /// Whether the payload carried perturbation parameters/adaptors.
    pub carries_parameters: bool,
}

/// A shared, append-only ledger of deliveries.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Arc<Mutex<Vec<AuditEvent>>>,
}

impl AuditLog {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the delivery of `msg` from `from` to `to`.
    pub fn record(&self, from: PartyId, to: PartyId, msg: &SapMessage) {
        self.record_kind(
            from,
            to,
            msg.kind(),
            msg.carries_data(),
            msg.carries_parameters(),
        );
    }

    /// Records a delivery by its classification alone — used for dataset
    /// streams, whose payloads are never decoded by relays (the ledger
    /// stores kind and endpoints only, never payloads, so this is the
    /// same information [`AuditLog::record`] would keep).
    pub fn record_kind(
        &self,
        from: PartyId,
        to: PartyId,
        kind: &'static str,
        carries_data: bool,
        carries_parameters: bool,
    ) {
        self.events.lock().push(AuditEvent {
            from,
            to,
            kind,
            carries_data,
            carries_parameters,
        });
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<AuditEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Information-flow check: did `party` ever receive record data?
    pub fn party_saw_data(&self, party: PartyId) -> bool {
        self.events
            .lock()
            .iter()
            .any(|e| e.to == party && e.carries_data)
    }

    /// Information-flow check: did `party` ever receive perturbation
    /// parameters or adaptors?
    pub fn party_saw_parameters(&self, party: PartyId) -> bool {
        self.events
            .lock()
            .iter()
            .any(|e| e.to == party && e.carries_parameters)
    }

    /// The distinct senders from which `party` received messages of `kind`.
    pub fn senders_of(&self, party: PartyId, kind: &str) -> Vec<PartyId> {
        let mut v: Vec<PartyId> = self
            .events
            .lock()
            .iter()
            .filter(|e| e.to == party && e.kind == kind)
            .map(|e| e.from)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Verifies SAP's core information-flow invariants for a finished
    /// session; returns a description of the first violation, if any.
    ///
    /// * The coordinator never receives data.
    /// * The miner receives data only as `relayed-data` (anonymized hop),
    ///   never as direct `perturbed-data`.
    /// * No provider other than the coordinator receives adaptors.
    pub fn verify_flow(
        &self,
        coordinator: PartyId,
        miner: PartyId,
        providers: &[PartyId],
    ) -> Result<(), String> {
        for e in self.events.lock().iter() {
            if e.to == coordinator && e.carries_data {
                return Err(format!("coordinator received data ({})", e.kind));
            }
            if e.to == miner && e.kind == "perturbed-data" {
                return Err("miner received un-relayed perturbed data".into());
            }
            if e.kind == "adaptor" && e.to != coordinator {
                return Err(format!("adaptor sent to non-coordinator {}", e.to));
            }
            if e.kind == "adaptor-table" && e.to != miner {
                return Err(format!("adaptor table sent to non-miner {}", e.to));
            }
            if e.to != miner && e.kind == "relayed-data" {
                return Err(format!("relayed data sent to non-miner {}", e.to));
            }
            if e.carries_data && e.to != miner && !providers.contains(&e.to) {
                return Err(format!("data delivered outside the provider set: {}", e.to));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::SlotTag;
    use sap_datasets::Dataset;

    fn data_msg() -> SapMessage {
        SapMessage::PerturbedData {
            slot: SlotTag(1),
            data: Dataset::new(vec![vec![1.0]], vec![0]),
        }
    }

    #[test]
    fn records_and_queries() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.record(PartyId(1), PartyId(2), &data_msg());
        assert_eq!(log.len(), 1);
        assert!(log.party_saw_data(PartyId(2)));
        assert!(!log.party_saw_data(PartyId(1)));
        assert_eq!(
            log.senders_of(PartyId(2), "perturbed-data"),
            vec![PartyId(1)]
        );
    }

    #[test]
    fn flow_verification_catches_coordinator_data() {
        let log = AuditLog::new();
        let coord = PartyId(9);
        log.record(PartyId(1), coord, &data_msg());
        let err = log
            .verify_flow(coord, PartyId(100), &[PartyId(1), PartyId(2), coord])
            .unwrap_err();
        assert!(err.contains("coordinator received data"));
    }

    #[test]
    fn flow_verification_catches_direct_to_miner() {
        let log = AuditLog::new();
        let miner = PartyId(100);
        log.record(PartyId(1), miner, &data_msg());
        let err = log
            .verify_flow(PartyId(9), miner, &[PartyId(1)])
            .unwrap_err();
        assert!(err.contains("un-relayed"));
    }

    #[test]
    fn clean_flow_passes() {
        let log = AuditLog::new();
        let coord = PartyId(2);
        let miner = PartyId(100);
        let providers = [PartyId(0), PartyId(1), coord];
        log.record(PartyId(0), PartyId(1), &data_msg());
        log.record(
            PartyId(1),
            miner,
            &SapMessage::RelayedData {
                slot: SlotTag(1),
                data: Dataset::new(vec![vec![1.0]], vec![0]),
            },
        );
        assert!(log.verify_flow(coord, miner, &providers).is_ok());
    }

    #[test]
    fn shared_across_clones() {
        let log = AuditLog::new();
        let log2 = log.clone();
        log.record(PartyId(1), PartyId(2), &data_msg());
        assert_eq!(log2.len(), 1);
    }
}
