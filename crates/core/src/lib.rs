//! The Space Adaptation Protocol (SAP).
//!
//! This crate is the primary contribution of the reproduction: the
//! multiparty protocol of *Chen & Liu, "Space Adaptation: Privacy-preserving
//! Multiparty Collaborative Mining with Geometric Perturbation", PODC 2007*.
//!
//! # Protocol summary
//!
//! `k` data providers `DP₁..DP_k` hold horizontal partitions of a dataset
//! and want a mining service provider (the *miner*) to train a model on the
//! union, without any single party being able to reconstruct anyone's raw
//! records. Geometric perturbation (`sap-perturb`) protects the values;
//! SAP's job is to let every provider keep a *locally optimized*
//! perturbation while the miner still receives data in one *unified* space:
//!
//! 1. **Local optimization** — every provider runs the randomized
//!    perturbation optimizer on its own data, obtaining `Gᵢ : (Rᵢ, tᵢ)` with
//!    privacy guarantee `ρᵢ` (all providers share the noise component
//!    specification `Δ`).
//! 2. **Target selection** — the coordinator (one of the providers,
//!    conventionally `DP_k`) randomly selects the target space
//!    `G_t : (R_t, t_t)` with **no** noise component and broadcasts it.
//! 3. **Random exchange** — the coordinator draws a random permutation `τ`
//!    and assigns each provider's perturbed dataset to a random receiver,
//!    **excluding itself as a receiver** (it will later see the space
//!    adaptors, which together with a dataset would let it undo the
//!    perturbation). Each receiver forwards the dataset it got to the miner
//!    under an opaque slot tag. The miner's view of any dataset's origin is
//!    reduced to source identifiability `πᵢ = 1/(k−1)`.
//! 4. **Space adaptation** — each provider computes its adaptor
//!    `A_it = ⟨R_it, Ψ_it⟩ = ⟨R_t·Rᵢ⁻¹, Ψ_t − R_t·Rᵢ⁻¹·Ψᵢ⟩` and sends it to
//!    the coordinator, who maps it to the right slot tag (it knows `τ`) and
//!    forwards the table to the miner — the coordinator never sees data, the
//!    miner never sees `(Rᵢ, tᵢ)`.
//! 5. **Unification & mining** — the miner applies each slot's adaptor to
//!    the slot's dataset, pools everything (now all in `G_t`'s space, each
//!    partition carrying its inherited noise `Δ_it`), and trains the model.
//!
//! Every message travels over `sap-net`'s sealed channels; an [`audit`]
//! ledger records who saw what so tests can verify the protocol's
//! information-flow claims mechanically.
//!
//! # Quick start
//!
//! ```no_run
//! use sap_core::session::{run_session, SapConfig};
//! use sap_datasets::{registry::UciDataset, partition::{partition, PartitionScheme}};
//!
//! let pooled = UciDataset::Iris.generate(42);
//! let locals = partition(&pooled, 5, PartitionScheme::Uniform, 7);
//! let outcome = run_session(locals, &SapConfig::default()).unwrap();
//! println!("unified dataset: {} records", outcome.unified.len());
//! println!("identifiability: {}", outcome.identifiability);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod audit;
pub mod coordinator;
pub mod error;
pub mod link;
pub mod liveness;
pub mod messages;
pub mod miner;
pub mod mining;
pub mod party;
pub mod permutation;
pub mod placement;
pub mod runtime;
pub mod session;
pub mod stream;

pub use error::SapError;
pub use liveness::{Deadline, Roster};
pub use runtime::{
    ActorPool, Gang, QosClass, SchedPolicy, SchedStats, SchedulerConfig, SessionHandle,
    SessionStatus, SessionTimings, ShedInfo,
};
pub use session::{
    run_session, run_session_over, run_session_over_with_codecs, spawn_session,
    spawn_session_with_codecs, DataPlane, ProviderReport, RoleCtx, SapConfig, SapOutcome,
    SessionCodecs,
};
pub use stream::{StreamMonitor, StreamStats};
