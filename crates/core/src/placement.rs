//! Placement-aware session identifiers for a sharded fleet.
//!
//! One `SapServer` mints session ids from a private counter, so two
//! servers in one fleet would both mint `SessionId(1)`. This module is
//! the tiny contract that makes ids fleet-safe and *placement-aware*:
//!
//! * [`IdMinter`] mints ids in a per-node residue class (`base`,
//!   `base + stride`, `base + 2·stride`, …) so every node of an
//!   `n`-node fleet mints from a disjoint sequence with no
//!   coordination — node `j` uses `base = j + 1`, `stride = n`.
//! * [`ring_point`] is the stable 64-bit mixing function that maps a
//!   minted id (or a node id) onto the placement ring. Every node
//!   computes the same point for the same id, so "who owns session
//!   `S`" is a pure function of the membership view — the successor
//!   of [`session_point`]`(S)` on the ring, exactly Chord's
//!   `successor(k)` ownership rule.
//!
//! The top [`CONTROL_RANGE`] ids below [`SessionId::LIVENESS`] are
//! reserved for fleet control planes (per-node inbox sessions); a
//! minter never emits them, and `SessionId::SOLO` / `LIVENESS` keep
//! their pre-fleet meanings.

use sap_net::SessionId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of ids immediately below [`SessionId::LIVENESS`] reserved for
/// fleet control sessions (node inboxes and future control planes).
/// [`IdMinter`] never mints an id at or above
/// `SessionId::LIVENESS.0 - CONTROL_RANGE`.
pub const CONTROL_RANGE: u64 = 4096;

/// First id of the reserved control range (inclusive).
pub const CONTROL_BASE: u64 = u64::MAX - CONTROL_RANGE;

/// The finalizer of `splitmix64` — a fast, well-mixed 64-bit
/// permutation. Used for every ring placement so session ids (dense
/// counters) and node indices (0, 1, 2, …) spread uniformly over the
/// ring instead of clustering at the bottom.
pub fn ring_point(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A session's point on the placement ring.
pub fn session_point(id: SessionId) -> u64 {
    ring_point(id.0)
}

/// Mints fleet-unique [`SessionId`]s from one residue class.
///
/// A standalone server uses `IdMinter::new(1, 1)` (the pre-fleet
/// sequence 1, 2, 3, …); fleet node `j` of `n` uses
/// `IdMinter::new(j as u64 + 1, n as u64)`. Minting is lock-free.
#[derive(Debug)]
pub struct IdMinter {
    next: AtomicU64,
    stride: u64,
}

impl IdMinter {
    /// A minter over the sequence `base, base + stride, …`.
    ///
    /// `base` must be nonzero (0 is [`SessionId::SOLO`]) and `stride`
    /// at least 1; both are clamped rather than rejected, since every
    /// caller passes compile-time-shaped values.
    pub fn new(base: u64, stride: u64) -> IdMinter {
        IdMinter {
            next: AtomicU64::new(base.max(1)),
            stride: stride.max(1),
        }
    }

    /// Mints the next id in the residue class.
    ///
    /// Ids are monotonically increasing. The reserved ids
    /// ([`SessionId::SOLO`], [`SessionId::LIVENESS`], and the
    /// [`CONTROL_BASE`] range) are skipped by construction: the
    /// sequence starts at ≥ 1 and reaching `CONTROL_BASE` would take
    /// ~2⁶⁴⁄stride mints — unreachable in practice, and checked in
    /// debug builds.
    pub fn mint(&self) -> SessionId {
        let raw = self.next.fetch_add(self.stride, Ordering::Relaxed);
        debug_assert!(raw < CONTROL_BASE, "session id space exhausted");
        SessionId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn residue_classes_are_disjoint() {
        let n = 4u64;
        let minters: Vec<IdMinter> = (0..n).map(|j| IdMinter::new(j + 1, n)).collect();
        let mut seen = HashSet::new();
        for minter in &minters {
            for _ in 0..1000 {
                assert!(seen.insert(minter.mint()), "fleet ids must never collide");
            }
        }
        assert_eq!(seen.len(), 4000);
        assert!(!seen.contains(&SessionId::SOLO));
        assert!(!seen.contains(&SessionId::LIVENESS));
    }

    #[test]
    fn ring_points_spread_dense_counters() {
        // Successive ids must land far apart: splitmix64's finalizer is
        // a permutation, so 10k dense inputs give 10k distinct points,
        // and the low/high halves of the ring both get hit.
        let points: Vec<u64> = (1..=10_000u64).map(ring_point).collect();
        let distinct: HashSet<&u64> = points.iter().collect();
        assert_eq!(distinct.len(), points.len());
        let low = points.iter().filter(|&&p| p < u64::MAX / 2).count();
        assert!((3000..7000).contains(&low), "lopsided spread: {low}/10000");
    }

    #[test]
    fn ring_point_is_stable() {
        // Placement must agree across nodes and releases: pin the map.
        assert_eq!(ring_point(0), 16294208416658607535);
        assert_eq!(session_point(SessionId(1)), ring_point(1));
    }
}
