//! The pooled actor scheduler and the session lifecycle it drives.
//!
//! The seed runtime spawned `k + 1` dedicated OS threads per session and
//! joined them inline — fine for one session, fatal for a server running
//! hundreds (`N × (k + 2)` threads). This module replaces that with:
//!
//! * [`ActorPool`] — a **fixed** pool of worker threads that executes role
//!   tasks. Sessions submit their roles as a *gang* ([`Gang`]): the pool
//!   admits a gang only when enough workers are free to run **every** role
//!   of the session concurrently. Gang admission is what makes a fixed
//!   pool safe for blocking protocol actors — admitting half a session
//!   would park a provider on a worker waiting for a coordinator that
//!   never gets scheduled.
//! * a **QoS scheduler** in front of admission: gangs carry a
//!   [`QosClass`] and queue per class. [`QosClass::Interactive`] gangs are
//!   admitted with strict priority over [`QosClass::Batch`] ones, so one
//!   queued batch backlog never head-of-line-blocks an interactive
//!   session. Starvation is prevented by **aging**: a batch gang that has
//!   queued longer than [`SchedulerConfig::batch_aging`] is promoted into
//!   the interactive queue. **Deadline-aware admission** sheds queued
//!   gangs whose [`Deadline`] budget provably cannot cover even the
//!   fastest gang service time the pool has observed — a typed
//!   [`SapError::AdmissionShed`] instead of burning workers on a session
//!   that will die of `DeadlineExceeded` anyway.
//!   [`SchedPolicy::Fifo`] disables all of this (single queue, no aging,
//!   no shed) and is kept as the measurable baseline for the
//!   `load_qos` bench.
//! * **work stealing** across pool workers: admitted tasks land on
//!   per-worker run queues (round-robin); a worker pops its own queue
//!   first and steals from siblings when empty, so a finished role's
//!   worker immediately picks up queued work instead of contending on one
//!   global ready list.
//! * [`SessionHandle`] — one session's lifecycle: spawn (via
//!   [`crate::session::spawn_session`]), [`SessionHandle::poll`],
//!   [`SessionHandle::abort`], and [`SessionHandle::harvest`]. Role
//!   results accumulate behind the handle; harvest assembles the
//!   [`SapOutcome`] exactly as the old inline join did — including
//!   preferring the first *role* error over panics, which are caught per
//!   task so a panicking role degrades one session, never a pool worker.
//!
//! The safety invariant is unchanged from the FIFO pool: **committed
//! tasks never exceed workers**, so every admitted role holds a worker
//! until it finishes and a gang can never deadlock on its own siblings.

use crate::audit::AuditLog;
use crate::error::SapError;
use crate::liveness::Deadline;
use crate::miner::MinerOutput;
use crate::session::{ProviderReport, SapOutcome};
use parking_lot::{Condvar, Mutex};
use sap_datasets::Dataset;
use sap_net::{PartyId, SessionId};
use sap_perturb::Perturbation;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A role task: runs one protocol actor to completion.
pub(crate) type RoleTask = Box<dyn FnOnce() + Send + 'static>;

/// Scheduling class of a session's gang. Carried on
/// [`crate::session::SapConfig::qos`] and threaded through
/// [`crate::session::spawn_session`] into the pool's per-class queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Latency-sensitive: admitted with strict priority over queued batch
    /// gangs. The default — an unconfigured client is somebody waiting.
    #[default]
    Interactive,
    /// Throughput work that tolerates queueing delay. Never starved: a
    /// batch gang older than [`SchedulerConfig::batch_aging`] is promoted
    /// into the interactive queue.
    Batch,
}

impl QosClass {
    /// Queue index of the class (interactive first — admission order).
    /// Also handy for callers keeping per-class arrays.
    pub fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
        }
    }
}

/// Which admission discipline the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// One queue, arrival order, no aging, no deadline shed — the
    /// pre-QoS behavior, kept as the benchmark baseline.
    Fifo,
    /// Per-class queues with strict priority, batch aging, and
    /// deadline-aware admission shedding. The default.
    #[default]
    Qos,
}

/// How long a batch gang may queue before aging promotes it into the
/// interactive queue (default of [`SchedulerConfig::batch_aging`]).
pub const DEFAULT_BATCH_AGING: Duration = Duration::from_secs(2);

/// Scheduler knobs of an [`ActorPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Admission discipline ([`SchedPolicy::Qos`] by default).
    pub policy: SchedPolicy,
    /// Age at which a queued batch gang is promoted to the interactive
    /// queue — the anti-starvation bound.
    pub batch_aging: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: SchedPolicy::default(),
            batch_aging: DEFAULT_BATCH_AGING,
        }
    }
}

/// Why a queued gang was shed at admission: the budget left could not
/// cover even the pool's optimistic service bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedInfo {
    /// How long the gang had queued when it was shed.
    pub waited: Duration,
    /// Deadline budget remaining at shed time (zero when the deadline had
    /// expired or was already cancelled).
    pub remaining: Duration,
    /// The optimistic service bound the budget failed: the fastest gang
    /// service time observed by the pool (zero while unobserved — then
    /// only an expired budget sheds).
    pub floor: Duration,
}

/// A session's role tasks plus their scheduling metadata, submitted to
/// [`ActorPool::submit`] as one unit. All tasks of a gang are admitted
/// together or not at all.
pub struct Gang {
    tasks: Vec<RoleTask>,
    class: QosClass,
    deadline: Option<Deadline>,
    on_admit: Option<Box<dyn FnOnce(Duration) + Send>>,
    on_shed: Option<Box<dyn FnOnce(ShedInfo) + Send>>,
}

impl Gang {
    /// An empty gang of the given class.
    pub fn new(class: QosClass) -> Self {
        Gang {
            tasks: Vec::new(),
            class,
            deadline: None,
            on_admit: None,
            on_shed: None,
        }
    }

    /// Appends one role task.
    pub fn push(&mut self, task: impl FnOnce() + Send + 'static) {
        self.tasks.push(Box::new(task));
    }

    /// Number of role tasks in the gang.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the gang holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Attaches the session deadline admission checks against. A queued
    /// gang whose remaining budget provably cannot cover the fastest
    /// observed gang service time is shed with [`ShedInfo`] instead of
    /// admitted. Gangs without a deadline are never shed.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = Some(deadline);
    }

    /// Installs the admission callback, invoked once when the gang is
    /// admitted, with the time it spent queued.
    pub fn set_on_admit(&mut self, hook: impl FnOnce(Duration) + Send + 'static) {
        self.on_admit = Some(Box::new(hook));
    }

    /// Installs the shed callback, invoked once if deadline-aware
    /// admission sheds the gang (its tasks then never run).
    pub fn set_on_shed(&mut self, hook: impl FnOnce(ShedInfo) + Send + 'static) {
        self.on_shed = Some(Box::new(hook));
    }
}

/// A point-in-time snapshot of the pool's scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Gangs admitted to workers since pool creation.
    pub gangs_admitted: u64,
    /// Gangs shed by deadline-aware admission (tasks never ran).
    pub gangs_shed: u64,
    /// Batch gangs promoted to the interactive queue by aging.
    pub gangs_promoted: u64,
    /// Tasks a worker stole from a sibling's run queue.
    pub task_steals: u64,
    /// Tasks of gangs still queued for admission.
    pub queued_tasks: usize,
    /// Tasks admitted and not yet finished (on a run queue or running).
    pub running_tasks: usize,
    /// Fastest gang service time observed — the optimistic bound
    /// deadline shedding compares budgets against.
    pub service_floor: Option<Duration>,
    /// Exponentially weighted moving average of gang service times.
    pub service_ewma: Option<Duration>,
}

struct QueuedGang {
    gang: Gang,
    enqueued: Instant,
}

/// Per-gang completion tracker: the last finishing task records the
/// gang's service time (admission → all roles done).
struct GangCtl {
    remaining: AtomicUsize,
    admitted_at: Instant,
}

struct RunTask {
    task: RoleTask,
    gang: Arc<GangCtl>,
}

/// Scheduler bookkeeping mutated only under the pool state lock.
#[derive(Default)]
struct SchedCounters {
    admitted: u64,
    shed: u64,
    promoted: u64,
    /// Fastest observed gang service, µs; `u64::MAX` = nothing observed.
    service_floor_us: u64,
    /// EWMA of gang service, µs; 0 = nothing observed.
    service_ewma_us: f64,
}

impl SchedCounters {
    fn new() -> Self {
        SchedCounters {
            service_floor_us: u64::MAX,
            ..SchedCounters::default()
        }
    }

    fn record_service(&mut self, service: Duration) {
        // Floor of 1µs so instantaneous test gangs cannot collapse the
        // optimistic bound to zero (which would disable floor-based
        // shedding entirely — it already only triggers with evidence).
        let us = (service.as_micros().min(u64::MAX as u128) as u64).max(1);
        self.service_floor_us = self.service_floor_us.min(us);
        self.service_ewma_us = if self.service_ewma_us == 0.0 {
            us as f64
        } else {
            0.9 * self.service_ewma_us + 0.1 * us as f64
        };
    }
}

struct PoolState {
    /// Admission queues, indexed by [`QosClass::index`]. Under
    /// [`SchedPolicy::Fifo`] only queue 0 is used.
    pending: [VecDeque<QueuedGang>; 2],
    /// Tasks admitted but not yet finished (queued-on-a-worker or
    /// running). The admission invariant `committed ≤ workers` guarantees
    /// every admitted task gets a worker without preempting a gang-mate.
    committed: usize,
    /// Round-robin cursor distributing admitted tasks over worker queues.
    next_worker: usize,
    sched: SchedCounters,
    shutdown: bool,
}

/// Deferred effects of an admission pass, run after the state lock is
/// released — the hooks take session and transport locks of their own.
enum PromoteEffect {
    Admit {
        hook: Box<dyn FnOnce(Duration) + Send>,
        waited: Duration,
    },
    Shed {
        hook: Option<Box<dyn FnOnce(ShedInfo) + Send>>,
        info: ShedInfo,
    },
}

fn run_effects(effects: Vec<PromoteEffect>) {
    for effect in effects {
        match effect {
            PromoteEffect::Admit { hook, waited } => hook(waited),
            PromoteEffect::Shed { hook, info } => {
                if let Some(hook) = hook {
                    hook(info);
                }
            }
        }
    }
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    workers: usize,
    /// Per-worker run queues: a worker pops its own front, steals from a
    /// sibling's back when empty.
    locals: Vec<Mutex<VecDeque<RunTask>>>,
    /// Tasks sitting on run queues, not yet picked up — the "work
    /// exists" signal idle workers check before sleeping.
    ready_count: AtomicUsize,
    steals: AtomicU64,
    cfg: SchedulerConfig,
}

impl PoolInner {
    /// One admission pass: ages queued batch gangs, sheds provably
    /// unmeetable ones, and admits from the class queues in strict
    /// priority order while gangs fit the free capacity. Called with the
    /// state lock held; the returned effects must be run after release.
    fn promote(&self, state: &mut PoolState) -> Vec<PromoteEffect> {
        let mut effects = Vec::new();
        let now = Instant::now();
        let qos = self.cfg.policy == SchedPolicy::Qos;

        if qos {
            // Aging: the batch queue is FIFO, so its front is its oldest
            // member — promote from the front until the residue is young.
            while state.pending[1]
                .front()
                .is_some_and(|q| now.duration_since(q.enqueued) >= self.cfg.batch_aging)
            {
                match state.pending[1].pop_front() {
                    Some(aged) => {
                        state.pending[0].push_back(aged);
                        state.sched.promoted += 1;
                    }
                    None => break,
                }
            }
        }

        'classes: for class in 0..2 {
            loop {
                let free = self.workers - state.committed;
                let (fits, verdict) = match state.pending[class].front() {
                    None => break,
                    Some(front) => (
                        front.gang.tasks.len() <= free,
                        if qos {
                            shed_verdict(front, now, state.sched.service_floor_us)
                        } else {
                            None
                        },
                    ),
                };
                // Shed before the fit check: a doomed gang should not
                // even wait for capacity.
                if let Some(info) = verdict {
                    if let Some(shed) = state.pending[class].pop_front() {
                        state.sched.shed += 1;
                        effects.push(PromoteEffect::Shed {
                            hook: shed.gang.on_shed,
                            info,
                        });
                    }
                    continue;
                }
                if !fits {
                    // Strict priority: while a higher-class gang waits for
                    // capacity, nothing from a lower class may jump it.
                    break 'classes;
                }
                let Some(admitted) = state.pending[class].pop_front() else {
                    break;
                };
                effects.extend(self.admit(state, admitted, now));
            }
            if !qos {
                break;
            }
        }
        effects
    }

    /// Commits one gang: distributes its tasks round-robin over the
    /// worker run queues and wakes sleepers. Called under the state lock.
    fn admit(
        &self,
        state: &mut PoolState,
        mut queued: QueuedGang,
        now: Instant,
    ) -> Option<PromoteEffect> {
        let n = queued.gang.tasks.len();
        state.committed += n;
        state.sched.admitted += 1;
        let ctl = Arc::new(GangCtl {
            remaining: AtomicUsize::new(n),
            admitted_at: now,
        });
        for task in queued.gang.tasks.drain(..) {
            let worker = state.next_worker % self.workers;
            state.next_worker = state.next_worker.wrapping_add(1);
            self.locals[worker].lock().push_back(RunTask {
                task,
                gang: Arc::clone(&ctl),
            });
            self.ready_count.fetch_add(1, Ordering::SeqCst);
        }
        self.work_ready.notify_all();
        let waited = now.duration_since(queued.enqueued);
        queued
            .gang
            .on_admit
            .take()
            .map(|hook| PromoteEffect::Admit { hook, waited })
    }

    /// Fetches the next task for `worker`: own queue front first, then a
    /// steal from a sibling's back. Never touches the pool state lock.
    fn grab(&self, worker: usize) -> Option<RunTask> {
        if let Some(task) = self.pop_local(worker) {
            return Some(task);
        }
        for offset in 1..self.workers {
            let victim = (worker + offset) % self.workers;
            // try_lock: a contended sibling queue is being drained by its
            // owner anyway; move on instead of serializing behind it.
            if let Some(mut queue) = self.locals[victim].try_lock() {
                if let Some(task) = queue.pop_back() {
                    drop(queue);
                    self.ready_count.fetch_sub(1, Ordering::SeqCst);
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(task);
                }
            }
        }
        None
    }

    fn pop_local(&self, worker: usize) -> Option<RunTask> {
        let task = self.locals[worker].lock().pop_front();
        if task.is_some() {
            self.ready_count.fetch_sub(1, Ordering::SeqCst);
        }
        task
    }
}

/// Conservative unmeetability check: shed only when the remaining budget
/// is provably insufficient — already expired/cancelled, or smaller than
/// the *fastest* gang service time the pool has ever observed. A gang
/// with no deadline (or an unbounded one) is never shed.
fn shed_verdict(queued: &QueuedGang, now: Instant, floor_us: u64) -> Option<ShedInfo> {
    let deadline = queued.gang.deadline.as_ref()?;
    let remaining = if deadline.is_cancelled() {
        Duration::ZERO
    } else {
        deadline.remaining()?
    };
    let floor = if floor_us == u64::MAX {
        Duration::ZERO
    } else {
        Duration::from_micros(floor_us)
    };
    let unmeetable = remaining.is_zero() || (!floor.is_zero() && remaining < floor);
    unmeetable.then(|| ShedInfo {
        waited: now.duration_since(queued.enqueued),
        remaining,
        floor,
    })
}

/// A fixed-size worker pool executing session role gangs under the QoS
/// admission scheduler (see the module docs for the full discipline).
///
/// Dropping the pool asks workers to finish their current task and exit;
/// queued gangs that never started are discarded (their sessions see
/// [`SapError::Aborted`] if harvested — the tasks never ran, so the
/// session reports zero finished roles forever; abort such sessions
/// before dropping their pool).
pub struct ActorPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ActorPool {
    /// Creates a pool with `workers` threads and the default
    /// [`SchedulerConfig`] (QoS policy).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        Self::with_config(workers, SchedulerConfig::default())
    }

    /// Creates a pool with `workers` threads and an explicit scheduler
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn with_config(workers: usize, cfg: SchedulerConfig) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                pending: [VecDeque::new(), VecDeque::new()],
                committed: 0,
                next_worker: 0,
                sched: SchedCounters::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            workers,
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            ready_count: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            cfg,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sap-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ActorPool { inner, handles }
    }

    /// Number of worker threads.
    pub fn capacity(&self) -> usize {
        self.inner.workers
    }

    /// Submits a gang of role tasks. The gang starts — all members
    /// together — once enough workers are free and every queued gang of a
    /// higher or equal priority ahead of it has been admitted or shed.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Capacity`] when the gang is larger than the
    /// pool and therefore could never start, and [`SapError::Aborted`]
    /// when the pool is shutting down.
    pub fn submit(&self, gang: Gang) -> Result<(), SapError> {
        if gang.tasks.len() > self.inner.workers {
            return Err(SapError::Capacity {
                needed: gang.tasks.len(),
                available: self.inner.workers,
            });
        }
        let effects = {
            let mut state = self.inner.state.lock();
            if state.shutdown {
                return Err(SapError::Aborted);
            }
            let queue = match self.inner.cfg.policy {
                SchedPolicy::Fifo => 0,
                SchedPolicy::Qos => gang.class.index(),
            };
            state.pending[queue].push_back(QueuedGang {
                gang,
                enqueued: Instant::now(),
            });
            self.inner.promote(&mut state)
        };
        run_effects(effects);
        Ok(())
    }

    /// Tasks of gangs still **queued for admission** (not yet started).
    /// The former conflation with committed tasks is gone — running work
    /// is [`ActorPool::running_tasks`].
    pub fn queued_tasks(&self) -> usize {
        let state = self.inner.state.lock();
        state
            .pending
            .iter()
            .flatten()
            .map(|q| q.gang.tasks.len())
            .sum()
    }

    /// Tasks admitted and not yet finished (on a worker's run queue or
    /// executing).
    pub fn running_tasks(&self) -> usize {
        self.inner.state.lock().committed
    }

    /// A snapshot of the scheduler's counters and gauges.
    pub fn stats(&self) -> SchedStats {
        let state = self.inner.state.lock();
        SchedStats {
            gangs_admitted: state.sched.admitted,
            gangs_shed: state.sched.shed,
            gangs_promoted: state.sched.promoted,
            task_steals: self.inner.steals.load(Ordering::Relaxed),
            queued_tasks: state
                .pending
                .iter()
                .flatten()
                .map(|q| q.gang.tasks.len())
                .sum(),
            running_tasks: state.committed,
            service_floor: (state.sched.service_floor_us != u64::MAX)
                .then(|| Duration::from_micros(state.sched.service_floor_us)),
            service_ewma: (state.sched.service_ewma_us > 0.0)
                .then(|| Duration::from_micros(state.sched.service_ewma_us as u64)),
        }
    }
}

impl Drop for ActorPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            for queue in &mut state.pending {
                queue.clear();
            }
            self.inner.work_ready.notify_all();
        }
        for local in &self.inner.locals {
            local.lock().clear();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner, me: usize) {
    loop {
        let Some(run) = inner.grab(me) else {
            // Nothing found: sleep until the admission path signals work.
            // The ready-count check under the state lock closes the
            // lost-wakeup window (pushes happen under the same lock).
            let mut state = inner.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if inner.ready_count.load(Ordering::SeqCst) > 0 {
                    break;
                }
                state = inner.work_ready.wait(state);
            }
            continue;
        };
        (run.task)();
        // Last finisher of the gang records its service time — the
        // sample feeding the admission shed bound and the EWMA.
        let service = (run.gang.remaining.fetch_sub(1, Ordering::SeqCst) == 1)
            .then(|| run.gang.admitted_at.elapsed());
        let effects = {
            let mut state = inner.state.lock();
            state.committed -= 1;
            if let Some(service) = service {
                state.sched.record_service(service);
            }
            if state.shutdown {
                Vec::new()
            } else {
                inner.promote(&mut state)
            }
        };
        run_effects(effects);
    }
}

// ---------------------------------------------------------------------------
// Session lifecycle
// ---------------------------------------------------------------------------

/// Where a session stands, as reported by [`SessionHandle::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Roles are still queued or running.
    Running {
        /// Roles that have finished (ok or err).
        finished: usize,
        /// Total roles in the session.
        total: usize,
    },
    /// Every role finished without error; the outcome awaits harvest.
    Complete,
    /// At least one role failed; harvest returns the first error.
    Failed,
    /// The session was aborted by its owner; harvest returns
    /// [`SapError::Aborted`].
    Aborted,
    /// Deadline-aware admission shed the session before any role ran;
    /// harvest returns [`SapError::AdmissionShed`].
    Shed,
    /// The outcome (or error) was already harvested.
    Harvested,
}

/// Queue-wait and service timings of one session, as observed by the
/// pool scheduler ([`SessionHandle::timings`]). A server folds these into
/// its latency histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionTimings {
    /// Submit → admission (time spent in a class queue). Also set for
    /// shed sessions (submit → shed).
    pub queue_wait: Option<Duration>,
    /// Admission → last role finished. `None` until the session ends
    /// (and forever for shed sessions — they never ran).
    pub service: Option<Duration>,
}

pub(crate) struct SessionCollect {
    pub(crate) reports: Vec<Option<ProviderReport>>,
    pub(crate) target: Option<Perturbation>,
    pub(crate) miner: Option<MinerOutput>,
    /// One slot per role, in role order (providers by position, then the
    /// coordinator, then the miner). Harvest reports the first error *in
    /// role order*, not in wall-time order — a failing role usually drags
    /// siblings down with `Disconnected` cascades, and role order keeps
    /// the root cause deterministic.
    pub(crate) role_errors: Vec<Option<SapError>>,
    pub(crate) finished_roles: usize,
    pub(crate) total_roles: usize,
    pub(crate) aborted: bool,
    /// Set by the scheduler's shed callback: the gang never ran.
    pub(crate) shed: Option<ShedInfo>,
    pub(crate) harvested: bool,
    /// Scheduler timings (set by the admission/shed callbacks and the
    /// last role's record).
    pub(crate) queue_wait: Option<Duration>,
    pub(crate) admitted_at: Option<Instant>,
    pub(crate) finished_at: Option<Instant>,
    /// Transports of finished roles, parked here until harvest or abort.
    /// A role returning must NOT drop its transport while siblings still
    /// run: over TCP that closes live sockets, and a peer's graceful
    /// completion would be indistinguishable from its death at the
    /// liveness layer (EOF ⇒ `PeerDown`). Real crashes still close
    /// sockets mid-protocol and are detected as before.
    pub(crate) retained: Vec<Box<dyn std::any::Any + Send>>,
}

impl SessionCollect {
    /// The error harvest reports, by root-cause strength:
    /// [`SapError::PeerFailure`] first (a detected peer death is the
    /// strongest signal — the dead peer's own role typically errors with
    /// a secondary `Disconnected` at the same instant, and which role
    /// records first is a wall-clock race), then the first non-cascade
    /// error, then cascades ([`SapError::Cancelled`] — roles unwound
    /// because a sibling already failed). Within each class, role order
    /// keeps the pick deterministic.
    fn first_error_mut(&mut self) -> Option<&mut Option<SapError>> {
        let peer_failure = self.role_errors.iter().position(|e| {
            e.as_ref()
                .is_some_and(|e| matches!(e, SapError::PeerFailure { .. }))
        });
        let root = peer_failure.or_else(|| {
            self.role_errors
                .iter()
                .position(|e| e.as_ref().is_some_and(|e| !e.is_cascade()))
        });
        match root {
            Some(i) => self.role_errors.get_mut(i),
            None => self.role_errors.iter_mut().find(|e| e.is_some()),
        }
    }
}

pub(crate) struct SessionShared {
    pub(crate) state: Mutex<SessionCollect>,
    pub(crate) progress: Condvar,
    pub(crate) session: SessionId,
    pub(crate) num_classes: usize,
    pub(crate) k: usize,
    pub(crate) audit: AuditLog,
    pub(crate) monitor: crate::stream::StreamMonitor,
    /// The session-wide budget/cancellation token every role's blocking
    /// receives observe. Cancelled the moment any role fails or the
    /// owner aborts, so siblings unwind cooperatively instead of waiting
    /// out their own timeouts.
    pub(crate) deadline: Deadline,
    /// Invoked once on abort — the owner's lever for tearing down the
    /// session's transport (e.g. closing its mux routes) so blocked roles
    /// fail fast instead of waiting out their timeouts.
    pub(crate) on_abort: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl SessionShared {
    pub(crate) fn record(&self, update: impl FnOnce(&mut SessionCollect)) {
        let mut state = self.state.lock();
        update(&mut state);
        state.finished_roles += 1;
        if state.finished_roles == state.total_roles {
            state.finished_at = Some(Instant::now());
        }
        self.progress.notify_all();
    }

    /// Parks a finished role's transport until harvest/abort (see
    /// [`SessionCollect::retained`]). When the session was already
    /// harvested (the final role racing a concurrent harvest), the item
    /// is simply dropped — every role is done by then.
    pub(crate) fn retain(&self, item: Box<dyn std::any::Any + Send>) {
        let mut state = self.state.lock();
        if !state.harvested {
            state.retained.push(item);
        }
    }

    /// Runs one role body, recording a panic as [`SapError::PartyPanicked`]
    /// instead of poisoning a pool worker. `role` is the gang position
    /// (providers by position, coordinator, miner last). Any failure
    /// cancels the session deadline so sibling roles stop waiting for
    /// messages that will never come.
    pub(crate) fn run_role(
        &self,
        role: usize,
        pid: PartyId,
        body: impl FnOnce() -> Result<(), SapError>,
    ) {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                self.deadline.cancel();
                self.record(|s| {
                    s.role_errors[role] = Some(e);
                });
            }
            Err(_) => {
                self.deadline.cancel();
                self.record(|s| {
                    s.role_errors[role] = Some(SapError::PartyPanicked(pid));
                });
            }
        }
    }
}

/// One running (or finished) session's lifecycle handle. Cloneable; all
/// clones observe the same session.
#[derive(Clone)]
pub struct SessionHandle {
    pub(crate) shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// The session's id.
    pub fn session(&self) -> SessionId {
        self.shared.session
    }

    /// Installs the hook [`SessionHandle::abort`] runs once (replacing any
    /// previous hook). A server points this at its transport teardown —
    /// e.g. closing the session's mux routes so blocked roles see
    /// `Disconnected` immediately instead of waiting out their timeouts.
    pub fn set_abort_hook(&self, hook: impl FnOnce() + Send + 'static) {
        *self.shared.on_abort.lock() = Some(Box::new(hook));
    }

    /// Non-blocking status check.
    pub fn poll(&self) -> SessionStatus {
        let state = self.shared.state.lock();
        if state.harvested {
            SessionStatus::Harvested
        } else if state.shed.is_some() {
            SessionStatus::Shed
        } else if state.aborted {
            SessionStatus::Aborted
        } else if state.finished_roles < state.total_roles {
            SessionStatus::Running {
                finished: state.finished_roles,
                total: state.total_roles,
            }
        } else if state.role_errors.iter().any(Option::is_some) {
            SessionStatus::Failed
        } else {
            SessionStatus::Complete
        }
    }

    /// The session's scheduler timings: queue wait (submit → admission
    /// or shed) and service time (admission → last role finished).
    pub fn timings(&self) -> SessionTimings {
        let state = self.shared.state.lock();
        SessionTimings {
            queue_wait: state.queue_wait,
            service: match (state.admitted_at, state.finished_at) {
                (Some(admitted), Some(finished)) => {
                    Some(finished.saturating_duration_since(admitted))
                }
                _ => None,
            },
        }
    }

    /// Aborts the session: cancels its deadline token (so every blocking
    /// role receive unwinds within one poll slice, on any transport),
    /// runs the owner's abort hook (tearing down the session's transport
    /// routes), and marks the session so harvest reports
    /// [`SapError::Aborted`] unless it already completed.
    pub fn abort(&self) {
        self.shared.deadline.cancel();
        let hook = self.shared.on_abort.lock().take();
        let retained = {
            let mut state = self.shared.state.lock();
            if state.finished_roles < state.total_roles {
                state.aborted = true;
            }
            self.shared.progress.notify_all();
            std::mem::take(&mut state.retained)
        };
        // Dropped outside the lock: releasing a TCP transport touches
        // sockets.
        drop(retained);
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Waits for every role to finish and assembles the outcome. Pass
    /// `None` to wait indefinitely.
    ///
    /// The outcome can be harvested exactly once; later calls (and calls
    /// after the deadline passes) return an error without consuming
    /// anything.
    ///
    /// # Errors
    ///
    /// * The first role error **in role order**, if any role failed.
    /// * [`SapError::AdmissionShed`] when the scheduler shed the session.
    /// * [`SapError::Aborted`] when aborted before completion.
    /// * [`SapError::Timeout`] when `timeout` elapsed first.
    /// * [`SapError::Protocol`] when already harvested.
    pub fn harvest(&self, timeout: Option<Duration>) -> Result<SapOutcome, SapError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.shared.state.lock();
        while state.finished_roles < state.total_roles && !state.aborted && state.shed.is_none() {
            match deadline {
                None => {
                    state = self.shared.progress.wait(state);
                }
                Some(deadline) => {
                    if Instant::now() >= deadline {
                        return Err(SapError::Timeout {
                            waiting: PartyId(u64::MAX),
                            phase: "session harvest",
                        });
                    }
                    state = self.shared.progress.wait_until(state, deadline);
                }
            }
        }
        if state.harvested {
            return Err(SapError::Protocol("session already harvested".into()));
        }
        state.harvested = true;
        // Parked role transports are released now that the session is
        // consumed — outside the lock, since dropping a TCP transport
        // touches sockets.
        let retained = std::mem::take(&mut state.retained);
        let result = self.assemble(&mut state);
        drop(state);
        drop(retained);
        result
    }

    /// Builds the harvest verdict from a finished (or aborted/shed)
    /// session's collected state. Called exactly once, under the session
    /// lock.
    fn assemble(&self, state: &mut SessionCollect) -> Result<SapOutcome, SapError> {
        // A shed verdict precedes everything: the roles never ran, so any
        // other state is vacuous.
        if let Some(info) = state.shed {
            return Err(SapError::AdmissionShed {
                waited: info.waited,
                remaining: info.remaining,
                floor: info.floor,
            });
        }
        // The abort verdict wins over role errors: aborting tears down the
        // session's transport, so the roles' Disconnected cascades are a
        // consequence, not a cause.
        if state.aborted {
            return Err(SapError::Aborted);
        }
        if let Some(slot) = state.first_error_mut() {
            return Err(slot.take().expect("found Some"));
        }
        // All roles finished cleanly: assemble, preferring loud failure
        // over silent partial results (these are invariants, not inputs).
        let miner_out = state
            .miner
            .take()
            .ok_or_else(|| SapError::Protocol("miner finished without output".into()))?;
        let target = state
            .target
            .take()
            .ok_or_else(|| SapError::Protocol("coordinator finished without target".into()))?;
        let mut reports = Vec::with_capacity(state.reports.len());
        for (pos, slot) in state.reports.iter_mut().enumerate() {
            reports.push(slot.take().ok_or_else(|| {
                SapError::Protocol(format!("provider {pos} finished without report"))
            })?);
        }
        let k = self.shared.k;
        let unified = Dataset::with_num_classes(
            miner_out.unified.records().to_vec(),
            miner_out.unified.labels().to_vec(),
            self.shared.num_classes.max(miner_out.unified.num_classes()),
        );
        Ok(SapOutcome {
            unified,
            reports,
            identifiability: 1.0 / (k - 1) as f64,
            audit: self.shared.audit.clone(),
            forwarder_of_slot: miner_out.forwarder_of_slot,
            relayed_blocks: miner_out.relayed_blocks,
            stream: self.shared.monitor.snapshot(),
            target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn gang_of(
        n: usize,
        class: QosClass,
        counter: &Arc<AtomicUsize>,
        body: impl Fn() + Send + Sync + 'static,
    ) -> Gang {
        let body = Arc::new(body);
        let mut gang = Gang::new(class);
        for _ in 0..n {
            let c = Arc::clone(counter);
            let body = Arc::clone(&body);
            gang.push(move || {
                body();
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        gang
    }

    fn wait_for(counter: &AtomicUsize, target: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while counter.load(Ordering::SeqCst) < target && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn pool_runs_tasks() {
        let pool = ActorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(gang_of(2, QosClass::Interactive, &counter, || {}))
            .unwrap();
        wait_for(&counter, 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(pool.stats().gangs_admitted, 1);
    }

    #[test]
    fn oversized_gang_is_capacity_error() {
        let pool = ActorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let gang = gang_of(3, QosClass::Interactive, &counter, || {});
        assert!(matches!(
            pool.submit(gang),
            Err(SapError::Capacity {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn gangs_are_admitted_whole_never_split() {
        // Pool of 2; a gang of 2 whose members rendezvous (each blocks
        // until the other runs). If the pool ever admitted a partial gang
        // this would deadlock; gang admission makes it finish.
        let pool = ActorPool::new(2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(gang_of(2, QosClass::Interactive, &done, move || {
            barrier.wait();
        }))
        .unwrap();
        wait_for(&done, 2);
        assert_eq!(done.load(Ordering::SeqCst), 2, "gang must run together");
    }

    #[test]
    fn queued_gang_starts_after_running_gang_finishes() {
        let pool = ActorPool::new(2);
        let release = Arc::new(std::sync::Barrier::new(3)); // 2 workers + test
        let first_ran = Arc::new(AtomicUsize::new(0));
        let second_ran = Arc::new(AtomicUsize::new(0));

        let gate = Arc::clone(&release);
        pool.submit(gang_of(2, QosClass::Interactive, &first_ran, move || {
            gate.wait();
        }))
        .unwrap();
        pool.submit(gang_of(1, QosClass::Interactive, &second_ran, || {}))
            .unwrap();
        // While the first gang occupies both workers, the second waits.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(second_ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.queued_tasks(), 1, "second gang still pending");
        assert_eq!(pool.running_tasks(), 2, "first gang occupies the pool");
        release.wait();
        wait_for(&second_ran, 1);
        assert_eq!(second_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn interactive_gang_jumps_queued_batch_backlog() {
        // One slot; a running gang holds it while a batch backlog and an
        // interactive gang queue behind. On release, the interactive gang
        // must be admitted before any batch gang.
        let pool = ActorPool::new(1);
        let release = Arc::new(std::sync::Barrier::new(2));
        let blocker_done = Arc::new(AtomicUsize::new(0));
        let batch_done = Arc::new(AtomicUsize::new(0));
        let interactive_done = Arc::new(AtomicUsize::new(0));

        let gate = Arc::clone(&release);
        pool.submit(gang_of(
            1,
            QosClass::Interactive,
            &blocker_done,
            move || {
                gate.wait();
            },
        ))
        .unwrap();
        let batch_done_seen = Arc::clone(&batch_done);
        let interactive = {
            let i = Arc::clone(&interactive_done);
            let mut gang = Gang::new(QosClass::Interactive);
            gang.push(move || {
                assert_eq!(
                    batch_done_seen.load(Ordering::SeqCst),
                    0,
                    "interactive ran after a batch gang"
                );
                i.fetch_add(1, Ordering::SeqCst);
            });
            gang
        };
        for _ in 0..3 {
            pool.submit(gang_of(1, QosClass::Batch, &batch_done, || {}))
                .unwrap();
        }
        pool.submit(interactive).unwrap();
        release.wait();
        wait_for(&batch_done, 3);
        assert_eq!(interactive_done.load(Ordering::SeqCst), 1);
        assert_eq!(batch_done.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn aged_batch_gang_is_promoted_not_starved() {
        let pool = ActorPool::with_config(
            1,
            SchedulerConfig {
                policy: SchedPolicy::Qos,
                batch_aging: Duration::from_millis(30),
            },
        );
        let release = Arc::new(std::sync::Barrier::new(2));
        let blocker = Arc::new(AtomicUsize::new(0));
        let batch_done = Arc::new(AtomicUsize::new(0));

        let gate = Arc::clone(&release);
        pool.submit(gang_of(1, QosClass::Interactive, &blocker, move || {
            gate.wait();
        }))
        .unwrap();
        pool.submit(gang_of(1, QosClass::Batch, &batch_done, || {}))
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        release.wait();
        wait_for(&batch_done, 1);
        assert_eq!(batch_done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().gangs_promoted, 1, "aged gang promoted");
    }

    #[test]
    fn expired_deadline_gang_is_shed_without_running() {
        let pool = ActorPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let mut gang = gang_of(1, QosClass::Interactive, &ran, || {});
        gang.set_deadline(Deadline::after(Duration::ZERO));
        let s = Arc::clone(&shed);
        gang.set_on_shed(move |info| {
            assert_eq!(info.remaining, Duration::ZERO);
            s.fetch_add(1, Ordering::SeqCst);
        });
        pool.submit(gang).unwrap();
        wait_for(&shed, 1);
        assert_eq!(shed.load(Ordering::SeqCst), 1);
        assert_eq!(ran.load(Ordering::SeqCst), 0, "shed gang must never run");
        let stats = pool.stats();
        assert_eq!(stats.gangs_shed, 1);
        assert_eq!(stats.gangs_admitted, 0);
    }

    #[test]
    fn unbounded_deadline_gang_is_never_shed() {
        let pool = ActorPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let mut gang = gang_of(1, QosClass::Batch, &ran, || {});
        gang.set_deadline(Deadline::unbounded());
        pool.submit(gang).unwrap();
        wait_for(&ran, 1);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().gangs_shed, 0);
    }

    #[test]
    fn idle_worker_steals_from_a_busy_workers_queue() {
        // Workers 0 and 1 take the first gang (round-robin); worker 0
        // blocks. The second gang's task lands on worker 0's queue, so
        // worker 1 — idle after its fast task — must steal it.
        let pool = ActorPool::new(2);
        let release = Arc::new(std::sync::Barrier::new(2));
        let slow = Arc::new(AtomicUsize::new(0));
        let fast = Arc::new(AtomicUsize::new(0));
        let stolen = Arc::new(AtomicUsize::new(0));

        let gate = Arc::clone(&release);
        let mut first = Gang::new(QosClass::Interactive);
        {
            let s = Arc::clone(&slow);
            first.push(move || {
                gate.wait();
                s.fetch_add(1, Ordering::SeqCst);
            });
        }
        {
            let f = Arc::clone(&fast);
            first.push(move || {
                f.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.submit(first).unwrap();
        wait_for(&fast, 1);
        // Pool full (committed 2 of 2): this queues, then lands on worker
        // 0's run queue when the fast task frees capacity.
        pool.submit(gang_of(1, QosClass::Interactive, &stolen, || {}))
            .unwrap();
        wait_for(&stolen, 1);
        assert_eq!(
            stolen.load(Ordering::SeqCst),
            1,
            "queued task must run while worker 0 is still blocked"
        );
        assert_eq!(slow.load(Ordering::SeqCst), 0, "worker 0 still blocked");
        release.wait();
        wait_for(&slow, 1);
        assert!(pool.stats().task_steals >= 1, "{:?}", pool.stats());
    }

    #[test]
    fn fifo_policy_ignores_classes() {
        let pool = ActorPool::with_config(
            1,
            SchedulerConfig {
                policy: SchedPolicy::Fifo,
                batch_aging: DEFAULT_BATCH_AGING,
            },
        );
        let release = Arc::new(std::sync::Barrier::new(2));
        let blocker = Arc::new(AtomicUsize::new(0));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicUsize::new(0));

        let gate = Arc::clone(&release);
        pool.submit(gang_of(1, QosClass::Interactive, &blocker, move || {
            gate.wait();
        }))
        .unwrap();
        for (class, tag) in [
            (QosClass::Batch, "batch"),
            (QosClass::Interactive, "interactive"),
        ] {
            let o = Arc::clone(&order);
            let d = Arc::clone(&done);
            let mut gang = Gang::new(class);
            gang.push(move || {
                o.lock().push(tag);
                d.fetch_add(1, Ordering::SeqCst);
            });
            pool.submit(gang).unwrap();
        }
        release.wait();
        wait_for(&done, 2);
        assert_eq!(
            *order.lock(),
            vec!["batch", "interactive"],
            "FIFO must run in arrival order"
        );
    }
}
