//! The pooled actor scheduler and the session lifecycle it drives.
//!
//! The seed runtime spawned `k + 1` dedicated OS threads per session and
//! joined them inline — fine for one session, fatal for a server running
//! hundreds (`N × (k + 2)` threads). This module replaces that with:
//!
//! * [`ActorPool`] — a **fixed** pool of worker threads that executes role
//!   tasks. Sessions submit their roles as a *gang*: the pool admits a
//!   gang only when enough workers are free to run **every** role of the
//!   session concurrently. Gang admission is what makes a fixed pool safe
//!   for blocking protocol actors — admitting half a session would park a
//!   provider on a worker waiting for a coordinator that never gets
//!   scheduled. Queued gangs start in FIFO order as workers free up, so
//!   `N` sessions share `W` workers instead of owning `N × (k + 1)`
//!   threads.
//! * [`SessionHandle`] — one session's lifecycle: spawn (via
//!   [`crate::session::spawn_session`]), [`SessionHandle::poll`],
//!   [`SessionHandle::abort`], and [`SessionHandle::harvest`]. Role
//!   results accumulate behind the handle; harvest assembles the
//!   [`SapOutcome`] exactly as the old inline join did — including
//!   preferring the first *role* error over panics, which are caught per
//!   task so a panicking role degrades one session, never a pool worker.

use crate::audit::AuditLog;
use crate::error::SapError;
use crate::liveness::Deadline;
use crate::miner::MinerOutput;
use crate::session::{ProviderReport, SapOutcome};
use parking_lot::{Condvar, Mutex};
use sap_datasets::Dataset;
use sap_net::{PartyId, SessionId};
use sap_perturb::Perturbation;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A role task: runs one protocol actor to completion.
pub(crate) type RoleTask = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    pending_gangs: VecDeque<Vec<RoleTask>>,
    ready: VecDeque<RoleTask>,
    /// Tasks admitted but not yet finished (`ready` + running). The
    /// admission invariant `committed ≤ workers` guarantees every admitted
    /// task gets a worker without preempting a gang-mate.
    committed: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    workers: usize,
}

impl PoolInner {
    /// Admits pending gangs (FIFO) while they fit the free capacity.
    /// Called with the state lock held.
    fn promote(&self, state: &mut PoolState) {
        while let Some(front) = state.pending_gangs.front() {
            if self.workers - state.committed < front.len() {
                break;
            }
            let gang = state.pending_gangs.pop_front().expect("front exists");
            state.committed += gang.len();
            state.ready.extend(gang);
            self.work_ready.notify_all();
        }
    }
}

/// A fixed-size worker pool executing session role gangs.
///
/// Dropping the pool asks workers to finish their current task and exit;
/// queued gangs that never started are discarded (their sessions see
/// [`SapError::Aborted`] if harvested — the tasks never ran, so the
/// session reports zero finished roles forever; abort such sessions
/// before dropping their pool).
pub struct ActorPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ActorPool {
    /// Creates a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                pending_gangs: VecDeque::new(),
                ready: VecDeque::new(),
                committed: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sap-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        ActorPool { inner, handles }
    }

    /// Number of worker threads.
    pub fn capacity(&self) -> usize {
        self.inner.workers
    }

    /// Submits a gang of role tasks. The gang starts — all members
    /// together — once enough workers are free; until then it queues FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Capacity`] when the gang is larger than the
    /// pool and therefore could never start.
    pub(crate) fn submit_gang(&self, gang: Vec<RoleTask>) -> Result<(), SapError> {
        if gang.len() > self.inner.workers {
            return Err(SapError::Capacity {
                needed: gang.len(),
                available: self.inner.workers,
            });
        }
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return Err(SapError::Aborted);
        }
        state.pending_gangs.push_back(gang);
        self.inner.promote(&mut state);
        Ok(())
    }

    /// Sessions currently admitted or queued (in units of tasks).
    pub fn queued_tasks(&self) -> usize {
        let state = self.inner.state.lock();
        state.pending_gangs.iter().map(Vec::len).sum::<usize>() + state.committed
    }
}

impl Drop for ActorPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            state.pending_gangs.clear();
            state.ready.clear();
            self.inner.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let task = {
            let mut state = inner.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(task) = state.ready.pop_front() {
                    break task;
                }
                state = inner.work_ready.wait(state);
            }
        };
        task();
        let mut state = inner.state.lock();
        state.committed -= 1;
        inner.promote(&mut state);
    }
}

// ---------------------------------------------------------------------------
// Session lifecycle
// ---------------------------------------------------------------------------

/// Where a session stands, as reported by [`SessionHandle::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Roles are still queued or running.
    Running {
        /// Roles that have finished (ok or err).
        finished: usize,
        /// Total roles in the session.
        total: usize,
    },
    /// Every role finished without error; the outcome awaits harvest.
    Complete,
    /// At least one role failed; harvest returns the first error.
    Failed,
    /// The session was aborted by its owner; harvest returns
    /// [`SapError::Aborted`].
    Aborted,
    /// The outcome (or error) was already harvested.
    Harvested,
}

pub(crate) struct SessionCollect {
    pub(crate) reports: Vec<Option<ProviderReport>>,
    pub(crate) target: Option<Perturbation>,
    pub(crate) miner: Option<MinerOutput>,
    /// One slot per role, in role order (providers by position, then the
    /// coordinator, then the miner). Harvest reports the first error *in
    /// role order*, not in wall-time order — a failing role usually drags
    /// siblings down with `Disconnected` cascades, and role order keeps
    /// the root cause deterministic.
    pub(crate) role_errors: Vec<Option<SapError>>,
    pub(crate) finished_roles: usize,
    pub(crate) total_roles: usize,
    pub(crate) aborted: bool,
    pub(crate) harvested: bool,
    /// Transports of finished roles, parked here until harvest or abort.
    /// A role returning must NOT drop its transport while siblings still
    /// run: over TCP that closes live sockets, and a peer's graceful
    /// completion would be indistinguishable from its death at the
    /// liveness layer (EOF ⇒ `PeerDown`). Real crashes still close
    /// sockets mid-protocol and are detected as before.
    pub(crate) retained: Vec<Box<dyn std::any::Any + Send>>,
}

impl SessionCollect {
    /// The error harvest reports, by root-cause strength:
    /// [`SapError::PeerFailure`] first (a detected peer death is the
    /// strongest signal — the dead peer's own role typically errors with
    /// a secondary `Disconnected` at the same instant, and which role
    /// records first is a wall-clock race), then the first non-cascade
    /// error, then cascades ([`SapError::Cancelled`] — roles unwound
    /// because a sibling already failed). Within each class, role order
    /// keeps the pick deterministic.
    fn first_error_mut(&mut self) -> Option<&mut Option<SapError>> {
        let peer_failure = self.role_errors.iter().position(|e| {
            e.as_ref()
                .is_some_and(|e| matches!(e, SapError::PeerFailure { .. }))
        });
        let root = peer_failure.or_else(|| {
            self.role_errors
                .iter()
                .position(|e| e.as_ref().is_some_and(|e| !e.is_cascade()))
        });
        match root {
            Some(i) => self.role_errors.get_mut(i),
            None => self.role_errors.iter_mut().find(|e| e.is_some()),
        }
    }
}

pub(crate) struct SessionShared {
    pub(crate) state: Mutex<SessionCollect>,
    pub(crate) progress: Condvar,
    pub(crate) session: SessionId,
    pub(crate) num_classes: usize,
    pub(crate) k: usize,
    pub(crate) audit: AuditLog,
    pub(crate) monitor: crate::stream::StreamMonitor,
    /// The session-wide budget/cancellation token every role's blocking
    /// receives observe. Cancelled the moment any role fails or the
    /// owner aborts, so siblings unwind cooperatively instead of waiting
    /// out their own timeouts.
    pub(crate) deadline: Deadline,
    /// Invoked once on abort — the owner's lever for tearing down the
    /// session's transport (e.g. closing its mux routes) so blocked roles
    /// fail fast instead of waiting out their timeouts.
    pub(crate) on_abort: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl SessionShared {
    pub(crate) fn record(&self, update: impl FnOnce(&mut SessionCollect)) {
        let mut state = self.state.lock();
        update(&mut state);
        state.finished_roles += 1;
        self.progress.notify_all();
    }

    /// Parks a finished role's transport until harvest/abort (see
    /// [`SessionCollect::retained`]). When the session was already
    /// harvested (the final role racing a concurrent harvest), the item
    /// is simply dropped — every role is done by then.
    pub(crate) fn retain(&self, item: Box<dyn std::any::Any + Send>) {
        let mut state = self.state.lock();
        if !state.harvested {
            state.retained.push(item);
        }
    }

    /// Runs one role body, recording a panic as [`SapError::PartyPanicked`]
    /// instead of poisoning a pool worker. `role` is the gang position
    /// (providers by position, coordinator, miner last). Any failure
    /// cancels the session deadline so sibling roles stop waiting for
    /// messages that will never come.
    pub(crate) fn run_role(
        &self,
        role: usize,
        pid: PartyId,
        body: impl FnOnce() -> Result<(), SapError>,
    ) {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                self.deadline.cancel();
                self.record(|s| {
                    s.role_errors[role] = Some(e);
                });
            }
            Err(_) => {
                self.deadline.cancel();
                self.record(|s| {
                    s.role_errors[role] = Some(SapError::PartyPanicked(pid));
                });
            }
        }
    }
}

/// One running (or finished) session's lifecycle handle. Cloneable; all
/// clones observe the same session.
#[derive(Clone)]
pub struct SessionHandle {
    pub(crate) shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// The session's id.
    pub fn session(&self) -> SessionId {
        self.shared.session
    }

    /// Installs the hook [`SessionHandle::abort`] runs once (replacing any
    /// previous hook). A server points this at its transport teardown —
    /// e.g. closing the session's mux routes so blocked roles see
    /// `Disconnected` immediately instead of waiting out their timeouts.
    pub fn set_abort_hook(&self, hook: impl FnOnce() + Send + 'static) {
        *self.shared.on_abort.lock() = Some(Box::new(hook));
    }

    /// Non-blocking status check.
    pub fn poll(&self) -> SessionStatus {
        let state = self.shared.state.lock();
        if state.harvested {
            SessionStatus::Harvested
        } else if state.aborted {
            SessionStatus::Aborted
        } else if state.finished_roles < state.total_roles {
            SessionStatus::Running {
                finished: state.finished_roles,
                total: state.total_roles,
            }
        } else if state.role_errors.iter().any(Option::is_some) {
            SessionStatus::Failed
        } else {
            SessionStatus::Complete
        }
    }

    /// Aborts the session: cancels its deadline token (so every blocking
    /// role receive unwinds within one poll slice, on any transport),
    /// runs the owner's abort hook (tearing down the session's transport
    /// routes), and marks the session so harvest reports
    /// [`SapError::Aborted`] unless it already completed.
    pub fn abort(&self) {
        self.shared.deadline.cancel();
        let hook = self.shared.on_abort.lock().take();
        let retained = {
            let mut state = self.shared.state.lock();
            if state.finished_roles < state.total_roles {
                state.aborted = true;
            }
            self.shared.progress.notify_all();
            std::mem::take(&mut state.retained)
        };
        // Dropped outside the lock: releasing a TCP transport touches
        // sockets.
        drop(retained);
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Waits for every role to finish and assembles the outcome. Pass
    /// `None` to wait indefinitely.
    ///
    /// The outcome can be harvested exactly once; later calls (and calls
    /// after the deadline passes) return an error without consuming
    /// anything.
    ///
    /// # Errors
    ///
    /// * The first role error **in role order**, if any role failed.
    /// * [`SapError::Aborted`] when aborted before completion.
    /// * [`SapError::Timeout`] when `timeout` elapsed first.
    /// * [`SapError::Protocol`] when already harvested.
    pub fn harvest(&self, timeout: Option<Duration>) -> Result<SapOutcome, SapError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.shared.state.lock();
        while state.finished_roles < state.total_roles && !state.aborted {
            match deadline {
                None => {
                    state = self.shared.progress.wait(state);
                }
                Some(deadline) => {
                    if Instant::now() >= deadline {
                        return Err(SapError::Timeout {
                            waiting: PartyId(u64::MAX),
                            phase: "session harvest",
                        });
                    }
                    state = self.shared.progress.wait_until(state, deadline);
                }
            }
        }
        if state.harvested {
            return Err(SapError::Protocol("session already harvested".into()));
        }
        state.harvested = true;
        // Parked role transports are released now that the session is
        // consumed — outside the lock, since dropping a TCP transport
        // touches sockets.
        let retained = std::mem::take(&mut state.retained);
        let result = self.assemble(&mut state);
        drop(state);
        drop(retained);
        result
    }

    /// Builds the harvest verdict from a finished (or aborted) session's
    /// collected state. Called exactly once, under the session lock.
    fn assemble(&self, state: &mut SessionCollect) -> Result<SapOutcome, SapError> {
        // The abort verdict wins over role errors: aborting tears down the
        // session's transport, so the roles' Disconnected cascades are a
        // consequence, not a cause.
        if state.aborted {
            return Err(SapError::Aborted);
        }
        if let Some(slot) = state.first_error_mut() {
            return Err(slot.take().expect("found Some"));
        }
        // All roles finished cleanly: assemble, preferring loud failure
        // over silent partial results (these are invariants, not inputs).
        let miner_out = state
            .miner
            .take()
            .ok_or_else(|| SapError::Protocol("miner finished without output".into()))?;
        let target = state
            .target
            .take()
            .ok_or_else(|| SapError::Protocol("coordinator finished without target".into()))?;
        let mut reports = Vec::with_capacity(state.reports.len());
        for (pos, slot) in state.reports.iter_mut().enumerate() {
            reports.push(slot.take().ok_or_else(|| {
                SapError::Protocol(format!("provider {pos} finished without report"))
            })?);
        }
        let k = self.shared.k;
        let unified = Dataset::with_num_classes(
            miner_out.unified.records().to_vec(),
            miner_out.unified.labels().to_vec(),
            self.shared.num_classes.max(miner_out.unified.num_classes()),
        );
        Ok(SapOutcome {
            unified,
            reports,
            identifiability: 1.0 / (k - 1) as f64,
            audit: self.shared.audit.clone(),
            forwarder_of_slot: miner_out.forwarder_of_slot,
            relayed_blocks: miner_out.relayed_blocks,
            stream: self.shared.monitor.snapshot(),
            target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_tasks() {
        let pool = ActorPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let gang: Vec<RoleTask> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as RoleTask
            })
            .collect();
        pool.submit_gang(gang).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn oversized_gang_is_capacity_error() {
        let pool = ActorPool::new(2);
        let gang: Vec<RoleTask> = (0..3).map(|_| Box::new(|| {}) as RoleTask).collect();
        assert!(matches!(
            pool.submit_gang(gang),
            Err(SapError::Capacity {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn gangs_are_admitted_whole_never_split() {
        // Pool of 2; a gang of 2 whose members rendezvous (each blocks
        // until the other runs). If the pool ever admitted a partial gang
        // this would deadlock; gang admission makes it finish.
        let pool = ActorPool::new(2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        let gang: Vec<RoleTask> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let d = Arc::clone(&done);
                Box::new(move || {
                    b.wait();
                    d.fetch_add(1, Ordering::SeqCst);
                }) as RoleTask
            })
            .collect();
        pool.submit_gang(gang).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 2, "gang must run together");
    }

    #[test]
    fn queued_gang_starts_after_running_gang_finishes() {
        let pool = ActorPool::new(2);
        let release = Arc::new(std::sync::Barrier::new(3)); // 2 workers + test
        let second_ran = Arc::new(AtomicUsize::new(0));

        let first: Vec<RoleTask> = (0..2)
            .map(|_| {
                let r = Arc::clone(&release);
                Box::new(move || {
                    r.wait();
                }) as RoleTask
            })
            .collect();
        let second: Vec<RoleTask> = {
            let s = Arc::clone(&second_ran);
            vec![Box::new(move || {
                s.fetch_add(1, Ordering::SeqCst);
            }) as RoleTask]
        };
        pool.submit_gang(first).unwrap();
        pool.submit_gang(second).unwrap();
        // While the first gang occupies both workers, the second waits.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(second_ran.load(Ordering::SeqCst), 0);
        release.wait();
        let deadline = Instant::now() + Duration::from_secs(5);
        while second_ran.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(second_ran.load(Ordering::SeqCst), 1);
    }
}
