//! The mining-service layer: closing the loop of the paper's Figure 1.
//!
//! In the service-oriented framework, the service provider does not just
//! *receive* unified data — it trains the "commonly interested models" and
//! serves them back to the providers, who then classify new records by
//! perturbing them into the unified space first. This module packages that
//! flow:
//!
//! * [`MiningService`] — the miner's side: train a model on the unified
//!   dataset, answer classification requests posed in the unified space.
//! * [`ClassificationClient`] — a provider's side: holds the target
//!   perturbation `G_t` and maps raw records into the unified space before
//!   querying the service (the service never sees raw records).

use crate::session::SapOutcome;
use sap_classify::perceptron::{Perceptron, PerceptronConfig};
use sap_classify::{KnnClassifier, Model, SvmClassifier, SvmConfig};
use sap_datasets::Dataset;
use sap_linalg::Matrix;
use sap_perturb::Perturbation;

/// Which model family the service trains.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// k-nearest neighbours with the given `k`.
    Knn(usize),
    /// SVM with RBF kernel (`γ = 1/d`).
    SvmRbf,
    /// Averaged perceptron (the linear-classifier representative).
    Perceptron,
}

/// The miner's trained model over the unified dataset.
pub struct MiningService {
    model: Box<dyn Model + Send + Sync>,
    dim: usize,
}

impl MiningService {
    /// Trains a model of `kind` on a unified dataset (typically
    /// [`SapOutcome::unified`]).
    ///
    /// # Panics
    ///
    /// Panics when `kind` is `Knn(0)` or `k` exceeds the dataset size.
    pub fn train(unified: &Dataset, kind: &ModelKind) -> Self {
        let model: Box<dyn Model + Send + Sync> = match kind {
            ModelKind::Knn(k) => Box::new(KnnClassifier::fit(unified, *k)),
            ModelKind::SvmRbf => Box::new(SvmClassifier::fit(
                unified,
                &SvmConfig::rbf_for_dim(unified.dim()),
            )),
            ModelKind::Perceptron => {
                Box::new(Perceptron::fit(unified, &PerceptronConfig::default()))
            }
        };
        MiningService {
            model,
            dim: unified.dim(),
        }
    }

    /// Convenience: trains directly from a session outcome.
    pub fn from_outcome(outcome: &SapOutcome, kind: &ModelKind) -> Self {
        Self::train(&outcome.unified, kind)
    }

    /// Feature dimensionality the service expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Classifies a record already expressed in the unified space.
    ///
    /// # Panics
    ///
    /// Panics when the record dimensionality disagrees.
    pub fn classify_unified(&self, record: &[f64]) -> usize {
        assert_eq!(record.len(), self.dim, "record dimensionality mismatch");
        self.model.predict(record)
    }

    /// Accuracy over a dataset already in the unified space.
    pub fn accuracy_unified(&self, data: &Dataset) -> f64 {
        self.model.accuracy(data)
    }
}

/// A provider-side client: perturbs raw records into the unified space and
/// queries the service. Keeps `G_t` private to the provider side.
#[derive(Debug, Clone)]
pub struct ClassificationClient {
    target: Perturbation,
}

impl ClassificationClient {
    /// Creates a client around the session's target perturbation.
    pub fn new(target: Perturbation) -> Self {
        ClassificationClient { target }
    }

    /// Maps a raw (normalized) record into the unified space.
    ///
    /// # Panics
    ///
    /// Panics when the record dimensionality disagrees with the target
    /// space.
    pub fn perturb_query(&self, record: &[f64]) -> Vec<f64> {
        assert_eq!(record.len(), self.target.dim(), "record dim mismatch");
        let x = Matrix::column_vector(record);
        self.target.apply_clean(&x).column(0)
    }

    /// Classifies a *raw* record through the service: perturb, then query.
    pub fn classify(&self, service: &MiningService, record: &[f64]) -> usize {
        service.classify_unified(&self.perturb_query(record))
    }

    /// Accuracy of the service on a *raw* test set submitted through this
    /// client.
    pub fn accuracy(&self, service: &MiningService, test: &Dataset) -> f64 {
        let correct = test
            .iter()
            .filter(|(rec, lab)| self.classify(service, rec) == *lab)
            .count();
        correct as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{run_session, SapConfig};
    use sap_datasets::normalize::min_max_normalize;
    use sap_datasets::partition::{partition, PartitionScheme};
    use sap_datasets::registry::UciDataset;
    use sap_datasets::split::stratified_split;

    fn outcome_and_test() -> (SapOutcome, Dataset, f64) {
        let (data, _) = min_max_normalize(&UciDataset::Iris.generate(10));
        let tt = stratified_split(&data, 0.7, 11);
        let baseline = KnnClassifier::fit(&tt.train, 5).accuracy(&tt.test);
        let locals = partition(&tt.train, 4, PartitionScheme::Uniform, 12);
        let outcome = run_session(locals, &SapConfig::quick_test()).unwrap();
        (outcome, tt.test, baseline)
    }

    #[test]
    fn end_to_end_query_flow_preserves_accuracy() {
        let (outcome, test, baseline) = outcome_and_test();
        let service = MiningService::from_outcome(&outcome, &ModelKind::Knn(5));
        let client = ClassificationClient::new(outcome.target.clone());
        let acc = client.accuracy(&service, &test);
        assert!(
            (acc - baseline).abs() < 0.12,
            "service accuracy {acc:.3} vs baseline {baseline:.3}"
        );
    }

    #[test]
    fn all_model_kinds_train_and_answer() {
        let (outcome, test, _) = outcome_and_test();
        let client = ClassificationClient::new(outcome.target.clone());
        for kind in [ModelKind::Knn(3), ModelKind::SvmRbf, ModelKind::Perceptron] {
            let service = MiningService::from_outcome(&outcome, &kind);
            assert_eq!(service.dim(), test.dim());
            let pred = client.classify(&service, test.record(0));
            assert!(pred < test.num_classes());
            let acc = client.accuracy(&service, &test);
            assert!(acc > 0.5, "{kind:?} accuracy {acc}");
        }
    }

    #[test]
    fn query_perturbation_matches_target_space() {
        let (outcome, test, _) = outcome_and_test();
        let client = ClassificationClient::new(outcome.target.clone());
        let q = client.perturb_query(test.record(0));
        let direct = outcome
            .target
            .apply_clean(&Matrix::column_vector(test.record(0)))
            .column(0);
        assert_eq!(q, direct);
        // The perturbed query is not the raw record.
        assert_ne!(q, test.record(0).to_vec());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_query_panics() {
        let (outcome, _, _) = outcome_and_test();
        let service = MiningService::from_outcome(&outcome, &ModelKind::Knn(3));
        let _ = service.classify_unified(&[0.0; 17]);
    }
}
