//! Wire messages of the SAP protocol.
//!
//! All variants are serialized with `sap-net`'s binary codec and sealed per
//! channel. Slot tags are opaque random identifiers: they let the miner join
//! datasets with adaptors without learning which provider owns what (only
//! the coordinator holds the `slot → owner` table, and it never sees data).

use sap_datasets::Dataset;
use sap_net::PartyId;
use sap_perturb::{Perturbation, SpaceAdaptor};
use serde::{Deserialize, Serialize};

/// An opaque identifier for one exchanged dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotTag(pub u64);

/// Messages exchanged during a SAP session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SapMessage {
    /// Coordinator → provider: the target perturbation space `G_t` (no
    /// noise component) plus this provider's exchange assignment.
    Setup {
        /// The unified target space.
        target: Perturbation,
        /// Slot tag under which this provider's dataset will travel.
        slot: SlotTag,
        /// The provider that should receive this provider's perturbed data.
        send_data_to: PartyId,
        /// Number of datasets this provider will receive and must relay to
        /// the miner (0, 1, or 2 — the coordinator's redirect can double up).
        expect_incoming: u32,
    },
    /// Provider → provider: a locally perturbed dataset under its slot tag.
    PerturbedData {
        /// Slot tag assigned by the coordinator.
        slot: SlotTag,
        /// The perturbed dataset (`G_i(X_i)` reshaped to records + labels).
        data: Dataset,
    },
    /// Provider → miner: relay of a received dataset (unchanged payload;
    /// the relay hop is what anonymizes the source).
    RelayedData {
        /// Slot tag.
        slot: SlotTag,
        /// The relayed perturbed dataset.
        data: Dataset,
    },
    /// Provider → coordinator: the provider's space adaptor into `G_t`.
    Adaptor {
        /// `A_it = ⟨R_it, Ψ_it⟩`.
        adaptor: SpaceAdaptor,
    },
    /// Coordinator → miner: the slot-indexed adaptor table.
    AdaptorTable {
        /// `(slot, adaptor)` pairs covering every exchanged dataset.
        entries: Vec<(SlotTag, SpaceAdaptor)>,
    },
    /// Miner → coordinator: acknowledgement that mining completed, with the
    /// number of records unified (lets the session close cleanly).
    MiningComplete {
        /// Records in the unified dataset.
        unified_records: u64,
    },
}

impl SapMessage {
    /// Message kind label used by the audit ledger.
    pub fn kind(&self) -> &'static str {
        match self {
            SapMessage::Setup { .. } => "setup",
            SapMessage::PerturbedData { .. } => "perturbed-data",
            SapMessage::RelayedData { .. } => "relayed-data",
            SapMessage::Adaptor { .. } => "adaptor",
            SapMessage::AdaptorTable { .. } => "adaptor-table",
            SapMessage::MiningComplete { .. } => "mining-complete",
        }
    }

    /// `true` when the message carries (perturbed) record data — the payload
    /// class the coordinator must never receive.
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            SapMessage::PerturbedData { .. } | SapMessage::RelayedData { .. }
        )
    }

    /// `true` when the message carries perturbation parameters or adaptors —
    /// the payload class that must never meet identified data at one party.
    pub fn carries_parameters(&self) -> bool {
        matches!(
            self,
            SapMessage::Setup { .. } | SapMessage::Adaptor { .. } | SapMessage::AdaptorTable { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_net::wire;

    #[test]
    fn messages_roundtrip_on_the_wire() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = Perturbation::random(3, &mut rng);
        let other = Perturbation::random(3, &mut rng);
        let adaptor = SpaceAdaptor::between(&other, &target).unwrap();
        let data = Dataset::new(vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]], vec![0, 1]);

        let msgs = vec![
            SapMessage::Setup {
                target: target.clone(),
                slot: SlotTag(42),
                send_data_to: PartyId(2),
                expect_incoming: 1,
            },
            SapMessage::PerturbedData {
                slot: SlotTag(42),
                data: data.clone(),
            },
            SapMessage::RelayedData {
                slot: SlotTag(42),
                data,
            },
            SapMessage::Adaptor {
                adaptor: adaptor.clone(),
            },
            SapMessage::AdaptorTable {
                entries: vec![(SlotTag(1), adaptor)],
            },
            SapMessage::MiningComplete {
                unified_records: 150,
            },
        ];
        for msg in msgs {
            let bytes = wire::to_bytes(&msg).unwrap();
            let back: SapMessage = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back.kind(), msg.kind());
        }
    }

    #[test]
    fn payload_classification() {
        let data = Dataset::new(vec![vec![1.0]], vec![0]);
        let m = SapMessage::PerturbedData {
            slot: SlotTag(1),
            data,
        };
        assert!(m.carries_data());
        assert!(!m.carries_parameters());
        let m = SapMessage::MiningComplete { unified_records: 1 };
        assert!(!m.carries_data());
        assert!(!m.carries_parameters());
    }
}
