//! Session-wide liveness: one deadline/cancellation token per session,
//! and the roster every role filters peer-failure events against.
//!
//! Before this module, every blocking `recv_*` in the role loops had its
//! own independent [`crate::session::SapConfig::timeout`] and nothing
//! else: a hung role held its pool worker until the server's age-based GC
//! swept the session minutes later, and a role whose *sibling* had
//! already failed kept waiting out its own timeout for messages that
//! would never come. The [`Deadline`] token fixes both:
//!
//! * it carries the **session budget** — one wall-clock allowance shared
//!   by every role of the session ([`crate::session::SapConfig::session_budget`]);
//! * it is **cancelled** the moment any sibling role fails (or the owner
//!   aborts), and every blocking receive polls it on a short slice, so
//!   the whole gang unwinds cooperatively in O(poll slice), freeing its
//!   workers for the next queued session.
//!
//! The [`Roster`] names the parties of one session. When a shared
//! transport reports a dead peer ([`sap_net::TransportError::PeerDown`]),
//! every session multiplexed over it hears about the death — the roster
//! is how a role decides whether the dead party is *its* problem
//! (fail with [`crate::error::SapError::PeerFailure`]) or a stranger's
//! (keep receiving).

use sap_net::PartyId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocking receive re-checks cancellation while waiting.
/// Bounds the latency of cooperative session unwind.
pub const CANCEL_POLL: Duration = Duration::from_millis(50);

struct DeadlineInner {
    expires: Option<Instant>,
    cancelled: AtomicBool,
}

/// A cloneable session-wide budget and cancellation token.
///
/// All clones observe the same state; cancelling any clone cancels the
/// session for every role polling it.
#[derive(Clone)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                expires: Instant::now().checked_add(budget),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A token with no time budget — it only ever trips via
    /// [`Deadline::cancel`]. The default for standalone role drivers and
    /// tests.
    pub fn unbounded() -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                expires: None,
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Cancels the session: every blocking receive observing this token
    /// returns [`crate::error::SapError::Cancelled`] within one
    /// [`CANCEL_POLL`] slice. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Time left in the session budget: `None` for an unbounded token,
    /// `Some(Duration::ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .expires
            .map(|e| e.saturating_duration_since(Instant::now()))
    }

    /// Whether the time budget ran out (never true for unbounded tokens).
    pub fn is_expired(&self) -> bool {
        self.remaining().is_some_and(|d| d.is_zero())
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("remaining", &self.remaining())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// The parties of one session: every provider (coordinator last, the
/// brief's `DP_k` convention) plus the miner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roster {
    /// Provider ids in position order; the last doubles as coordinator.
    pub providers: Vec<PartyId>,
    /// The mining service provider.
    pub miner: PartyId,
}

impl Roster {
    /// Builds a roster. `providers` must list the coordinator last.
    pub fn new(providers: Vec<PartyId>, miner: PartyId) -> Self {
        Roster { providers, miner }
    }

    /// Number of providers `k`.
    pub fn k(&self) -> usize {
        self.providers.len()
    }

    /// The coordinator (the last provider).
    ///
    /// # Panics
    ///
    /// Panics on an empty roster (a construction bug, not a runtime
    /// condition — sessions validate `k ≥ 3` before any roster exists).
    pub fn coordinator(&self) -> PartyId {
        *self.providers.last().expect("roster has providers")
    }

    /// Whether `party` plays any role in this session — the filter that
    /// keeps a shared-transport peer-death broadcast from aborting
    /// sessions the dead party was never part of.
    pub fn contains(&self, party: PartyId) -> bool {
        party == self.miner || self.providers.contains(&party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_budget_counts_down() {
        let d = Deadline::after(Duration::from_millis(40));
        assert!(!d.is_expired());
        assert!(d.remaining().unwrap() <= Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(60));
        assert!(d.is_expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(!d.is_cancelled(), "expiry is not cancellation");
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let d = Deadline::unbounded();
        let clone = d.clone();
        assert!(!clone.is_cancelled());
        assert_eq!(d.remaining(), None);
        assert!(!d.is_expired());
        d.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn roster_membership() {
        let r = Roster::new(vec![PartyId(0), PartyId(1), PartyId(2)], PartyId(100));
        assert_eq!(r.k(), 3);
        assert_eq!(r.coordinator(), PartyId(2));
        assert!(r.contains(PartyId(0)));
        assert!(r.contains(PartyId(100)));
        assert!(!r.contains(PartyId(7)));
    }
}
