//! The coordinator actor.
//!
//! The coordinator is itself a data provider (`DP_k` in the brief) with two
//! extra duties: it selects the unified target space and orchestrates the
//! anonymizing exchange. Crucially it **never receives a dataset** — it will
//! hold every space adaptor, and an adaptor plus a dataset would let it
//! rebase the data into a space whose parameters it knows, undoing the
//! owner's perturbation. A dataset stream arriving here is a hard protocol
//! error, detected from the stream header alone (the payload is never
//! decoded).

use crate::error::SapError;
use crate::link::{self, Inbound};
use crate::messages::{SapMessage, SlotTag};
use crate::permutation::ExchangePlan;
use crate::session::{ProviderReport, RoleCtx};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_datasets::Dataset;
use sap_net::node::Node;
use sap_net::{Codec, PartyId, Transport};
use sap_perturb::{GeometricPerturbation, Perturbation, SpaceAdaptor};
use sap_privacy::engine;
use sap_privacy::optimize::evaluate_perturbation;
use std::collections::HashMap;

/// Runs the coordinator role (provider duties included) to completion.
///
/// `ctx.roster.providers` lists every provider id in position order; the
/// coordinator must be the **last** entry (the brief's `DP_k`
/// convention). Every blocking receive observes the session's liveness
/// regime (deadline token, roster-filtered peer failures).
///
/// # Errors
///
/// Returns [`SapError`] on timeout, peer failure, cancellation,
/// messaging failure, or protocol violations (duplicate/unknown adaptor
/// senders, dimension mismatch).
#[allow(clippy::too_many_lines)]
pub fn run_coordinator<T: Transport, C: Codec>(
    node: &Node<T, C>,
    data: &Dataset,
    ctx: &RoleCtx<'_>,
) -> Result<(ProviderReport, Perturbation), SapError> {
    let me = node.id();
    let config = ctx.config;
    let audit = ctx.audit;
    let providers = ctx.roster.providers.as_slice();
    let miner = ctx.roster.miner;
    let k = providers.len();
    if k < 3 {
        return Err(SapError::TooFewProviders { got: k });
    }
    if providers.last() != Some(&me) {
        return Err(SapError::Protocol(format!(
            "coordinator {me} must be the last provider"
        )));
    }
    let coord_pos = k - 1;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC00D);

    // Provider duty: local optimization on own data, through the staged
    // parallel engine.
    let x = data.to_column_matrix();
    let engine_out = engine::run(&x, &config.optimizer, &mut rng)?;
    let opt = engine_out.result;
    let g_local = opt.perturbation.clone();
    let rho_local = opt.privacy_guarantee;

    // Coordination: target space (no noise), exchange plan, slot tags.
    let target = Perturbation::random(data.dim(), &mut rng);
    let plan = ExchangePlan::random(k, coord_pos, &mut rng);
    let mut slot_of: Vec<SlotTag> = Vec::with_capacity(k);
    let mut used = std::collections::HashSet::new();
    for _ in 0..k {
        loop {
            let tag = SlotTag(rng.random_range(0..u64::MAX));
            if used.insert(tag) {
                slot_of.push(tag);
                break;
            }
        }
    }

    // Send setup to every other provider.
    for (pos, &pid) in providers.iter().enumerate() {
        if pos == coord_pos {
            continue;
        }
        link::send_message(
            node,
            pid,
            &SapMessage::Setup {
                target: target.clone(),
                slot: slot_of[pos],
                send_data_to: providers[plan.receiver_of(pos)],
                expect_incoming: plan.incoming_count(pos) as u32,
            },
            config.block_rows,
        )?;
    }

    // Provider duty: perturb own data and stream it to the assigned
    // receiver. On the streaming plane each block's math overlaps the
    // previous block's transmission; the noise draw (and therefore every
    // byte on the wire) is identical either way.
    match config.data_plane {
        crate::session::DataPlane::Buffered => {
            let (y, _delta) = g_local.perturb(&x, &mut rng);
            let perturbed =
                Dataset::from_column_matrix(&y, data.labels().to_vec(), data.num_classes());
            link::send_dataset(
                node,
                providers[plan.receiver_of(coord_pos)],
                false,
                slot_of[coord_pos],
                &perturbed,
                config.block_rows,
            )?;
        }
        crate::session::DataPlane::Streaming => {
            let delta = g_local.noise().sample(x.rows(), x.cols(), &mut rng);
            link::send_perturbed_dataset(
                node,
                providers[plan.receiver_of(coord_pos)],
                slot_of[coord_pos],
                &g_local,
                &x,
                &delta,
                data.labels(),
                data.num_classes(),
                config.block_rows,
            )?;
        }
    }

    // Collect adaptors from the other k−1 providers; add our own.
    let mut adaptor_of: HashMap<PartyId, SpaceAdaptor> = HashMap::new();
    let own_adaptor = SpaceAdaptor::between(g_local.base(), &target)
        .map_err(|e| SapError::Protocol(format!("own adaptor failed: {e}")))?;
    adaptor_of.insert(me, own_adaptor);
    while adaptor_of.len() < k {
        let (from, inbound) = link::recv_message_ctx(node, ctx, "adaptor collection")?;
        match inbound {
            Inbound::Msg(msg) => {
                audit.record(from, me, &msg);
                match msg {
                    SapMessage::Adaptor { adaptor } => {
                        if !providers.contains(&from) {
                            return Err(SapError::Protocol(format!("adaptor from unknown {from}")));
                        }
                        if adaptor_of.insert(from, adaptor).is_some() {
                            return Err(SapError::Protocol(format!(
                                "duplicate adaptor from {from}"
                            )));
                        }
                    }
                    other => {
                        return Err(SapError::Protocol(format!(
                            "coordinator received unexpected {}",
                            other.kind()
                        )))
                    }
                }
            }
            // The information-flow invariant: data must never reach the
            // coordinator. The header is enough to know — and to abort.
            Inbound::Data(stream) => {
                audit.record_kind(from, me, stream.kind(), true, false);
                return Err(SapError::Protocol(format!(
                    "coordinator received unexpected {}",
                    stream.kind()
                )));
            }
        }
    }

    // Map adaptors to slot tags and forward to the miner. The miner joins
    // (slot → dataset) with (slot → adaptor) without learning owners.
    let entries: Vec<(SlotTag, SpaceAdaptor)> = providers
        .iter()
        .enumerate()
        .map(|(pos, pid)| (slot_of[pos], adaptor_of[pid].clone()))
        .collect();
    link::send_message(
        node,
        miner,
        &SapMessage::AdaptorTable { entries },
        config.block_rows,
    )?;

    // Wait for the miner's completion ack so the session has a clean end.
    let (from, inbound) = link::recv_message_ctx(node, ctx, "mining completion")?;
    match inbound {
        Inbound::Msg(msg) => {
            audit.record(from, me, &msg);
            match msg {
                SapMessage::MiningComplete { .. } if from == miner => {}
                other => {
                    return Err(SapError::Protocol(format!(
                        "expected mining-complete from miner, got {} from {from}",
                        other.kind()
                    )))
                }
            }
        }
        Inbound::Data(stream) => {
            audit.record_kind(from, me, stream.kind(), true, false);
            return Err(SapError::Protocol(format!(
                "coordinator received unexpected {}",
                stream.kind()
            )));
        }
    }

    // Satisfaction for the coordinator's own data.
    let g_unified = GeometricPerturbation::new(target.clone(), g_local.noise());
    let rho_unified = evaluate_perturbation(&x, &g_unified, &config.optimizer, &mut rng);
    let satisfaction = if rho_local > 1e-12 {
        rho_unified / rho_local
    } else {
        1.0
    };

    Ok((
        ProviderReport {
            provider: me,
            rho_local,
            rho_unified,
            satisfaction,
            optimizer_history: opt.history,
            optimizer: engine_out.stats,
        },
        target,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Roster;
    use crate::session::{SapConfig, StandaloneCtx};
    use sap_net::transport::InMemoryHub;
    use std::time::Duration;

    fn tiny_dataset() -> Dataset {
        let records: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 6) as f64 / 6.0, (i % 4) as f64 / 4.0])
            .collect();
        let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
        Dataset::new(records, labels)
    }

    fn harness(providers: Vec<PartyId>, config: SapConfig) -> StandaloneCtx {
        StandaloneCtx::new(Roster::new(providers, PartyId(100)), config)
    }

    #[test]
    fn rejects_too_few_providers() {
        let hub = InMemoryHub::new();
        let node = Node::new(hub.endpoint(PartyId(1)), 7);
        let sc = harness(vec![PartyId(0), PartyId(1)], SapConfig::quick_test());
        let err = run_coordinator(&node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(matches!(err, SapError::TooFewProviders { got: 2 }));
    }

    #[test]
    fn rejects_coordinator_not_last() {
        let hub = InMemoryHub::new();
        let node = Node::new(hub.endpoint(PartyId(0)), 7);
        let sc = harness(
            vec![PartyId(0), PartyId(1), PartyId(2)],
            SapConfig::quick_test(),
        );
        let err = run_coordinator(&node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(matches!(err, SapError::Protocol(_)), "{err}");
    }

    #[test]
    fn coordinator_rejects_incoming_data() {
        // A confused/malicious provider streams data to the coordinator:
        // the coordinator must abort with a protocol error, never decode it.
        let hub = InMemoryHub::new();
        let coord_node = Node::new(hub.endpoint(PartyId(2)), 7);
        let p0 = Node::new(hub.endpoint(PartyId(0)), 7);
        let _p1 = hub.endpoint(PartyId(1));
        let _miner = hub.endpoint(PartyId(100));
        let sc = harness(
            vec![PartyId(0), PartyId(1), PartyId(2)],
            SapConfig {
                timeout: Duration::from_millis(500),
                ..SapConfig::quick_test()
            },
        );

        link::send_dataset(&p0, PartyId(2), false, SlotTag(9), &tiny_dataset(), 8).unwrap();

        let err = run_coordinator(&coord_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(
            err.to_string().contains("unexpected perturbed-data"),
            "{err}"
        );
    }

    #[test]
    fn times_out_when_adaptors_missing() {
        let hub = InMemoryHub::new();
        let coord_node = Node::new(hub.endpoint(PartyId(2)), 7);
        let _p0 = hub.endpoint(PartyId(0));
        let _p1 = hub.endpoint(PartyId(1));
        let _miner = hub.endpoint(PartyId(100));
        let sc = harness(
            vec![PartyId(0), PartyId(1), PartyId(2)],
            SapConfig {
                timeout: Duration::from_millis(50),
                ..SapConfig::quick_test()
            },
        );
        let err = run_coordinator(&coord_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        assert!(
            matches!(
                err,
                SapError::Timeout {
                    phase: "adaptor collection",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn cancellation_unwinds_waiting_coordinator() {
        // A coordinator blocked in adaptor collection observes the
        // session token's cancellation within a poll slice — long before
        // its own 30 s receive timeout.
        let hub = InMemoryHub::new();
        let coord_node = Node::new(hub.endpoint(PartyId(2)), 7);
        let _p0 = hub.endpoint(PartyId(0));
        let _p1 = hub.endpoint(PartyId(1));
        let _miner = hub.endpoint(PartyId(100));
        let sc = harness(
            vec![PartyId(0), PartyId(1), PartyId(2)],
            SapConfig {
                timeout: Duration::from_secs(30),
                ..SapConfig::quick_test()
            },
        );
        let deadline = sc.deadline.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            deadline.cancel();
        });
        let start = std::time::Instant::now();
        let err = run_coordinator(&coord_node, &tiny_dataset(), &sc.ctx()).unwrap_err();
        canceller.join().unwrap();
        assert!(matches!(err, SapError::Cancelled { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancellation must beat the 30 s receive timeout"
        );
    }
}
