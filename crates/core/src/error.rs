//! Protocol-level errors.

use sap_net::node::NodeError;
use sap_net::PartyId;
use sap_privacy::optimize::OptimizeError;
use std::fmt;

/// Failures of a SAP session.
#[derive(Debug)]
pub enum SapError {
    /// A role timed out waiting for a message — a party crashed or the
    /// network lost the message for good.
    Timeout {
        /// The role that was waiting.
        waiting: PartyId,
        /// Human-readable phase description.
        phase: &'static str,
    },
    /// The messaging layer failed (transport, crypto, or codec).
    Messaging(NodeError),
    /// A protocol invariant was violated (unexpected message, wrong
    /// dimensionality, duplicate slot, …).
    Protocol(String),
    /// A party thread panicked.
    PartyPanicked(PartyId),
    /// The session was configured with too few providers (SAP needs ≥ 3:
    /// with 2, the only non-coordinator receiver identifies every source).
    TooFewProviders {
        /// Providers supplied.
        got: usize,
    },
    /// Provider datasets disagree on dimensionality or class count.
    InconsistentInputs(String),
    /// The session's optimizer configuration is malformed (zero
    /// candidates, empty dataset). A typed error instead of a panic so a
    /// bad client config fails *its* session instead of killing a
    /// server-side role thread.
    Optimizer(OptimizeError),
    /// The session was aborted by its owner (server shutdown, GC of an
    /// overdue session, or an explicit
    /// [`crate::runtime::SessionHandle::abort`]).
    Aborted,
    /// The session's role gang does not fit the worker pool — a sizing
    /// error caught at spawn, before any role runs.
    Capacity {
        /// Workers the session needs (one per role).
        needed: usize,
        /// Workers the pool has in total.
        available: usize,
    },
}

impl fmt::Display for SapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SapError::Timeout { waiting, phase } => {
                write!(f, "{waiting} timed out during {phase}")
            }
            SapError::Messaging(e) => write!(f, "messaging failure: {e}"),
            SapError::Protocol(what) => write!(f, "protocol violation: {what}"),
            SapError::PartyPanicked(p) => write!(f, "{p} panicked"),
            SapError::TooFewProviders { got } => {
                write!(f, "SAP needs at least 3 providers, got {got}")
            }
            SapError::InconsistentInputs(what) => write!(f, "inconsistent inputs: {what}"),
            SapError::Optimizer(e) => write!(f, "optimizer rejected the configuration: {e}"),
            SapError::Aborted => write!(f, "session aborted by its owner"),
            SapError::Capacity { needed, available } => {
                write!(
                    f,
                    "session needs {needed} workers but the pool has {available}"
                )
            }
        }
    }
}

impl std::error::Error for SapError {}

impl From<OptimizeError> for SapError {
    fn from(e: OptimizeError) -> Self {
        SapError::Optimizer(e)
    }
}

impl From<NodeError> for SapError {
    fn from(e: NodeError) -> Self {
        match e {
            // Framing violations (duplicate/reordered/orphan frames) are
            // protocol violations: SAP has no retransmission and must
            // abort loudly rather than guess.
            NodeError::Frame(frame) => SapError::Protocol(format!("framing violation: {frame}")),
            other => SapError::Messaging(other),
        }
    }
}

impl SapError {
    /// Rewrites a receive-path timeout into [`SapError::Timeout`] carrying
    /// the waiting actor and phase; every other error passes through. The
    /// actors call this on every blocking receive so timeout reports name
    /// the protocol phase that starved.
    #[must_use]
    pub fn or_timeout(self, who: PartyId, phase: &'static str) -> Self {
        match self {
            SapError::Messaging(NodeError::Transport(sap_net::TransportError::Timeout)) => {
                SapError::Timeout {
                    waiting: who,
                    phase,
                }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errs: Vec<SapError> = vec![
            SapError::Timeout {
                waiting: PartyId(3),
                phase: "adaptor collection",
            },
            SapError::Protocol("duplicate slot".into()),
            SapError::PartyPanicked(PartyId(1)),
            SapError::TooFewProviders { got: 2 },
            SapError::InconsistentInputs("dim 3 vs 4".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
        }
        assert!(SapError::TooFewProviders { got: 2 }
            .to_string()
            .contains("at least 3"));
    }
}
