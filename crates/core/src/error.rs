//! Protocol-level errors.

use sap_net::node::NodeError;
use sap_net::PartyId;
use sap_privacy::optimize::OptimizeError;
use std::fmt;
use std::time::Duration;

/// Failures of a SAP session.
#[derive(Debug)]
pub enum SapError {
    /// A role timed out waiting for a message — a party crashed silently
    /// or the network lost the message for good. When the transport can
    /// *name* the dead party, sessions fail with the faster, more precise
    /// [`SapError::PeerFailure`] instead.
    Timeout {
        /// The role that was waiting.
        waiting: PartyId,
        /// Human-readable phase description.
        phase: &'static str,
    },
    /// A peer of this session was detected dead (socket closed, process
    /// gone, or heartbeats stopped) while a role was waiting on it — the
    /// typed fast-failure the liveness layer converts hang-forever bugs
    /// into. Detected in O(heartbeat budget), not O(session timeout).
    PeerFailure {
        /// The dead party.
        party: PartyId,
        /// The protocol phase the observing role was in.
        phase: &'static str,
    },
    /// The role was cancelled cooperatively because a sibling role of the
    /// same session already failed (or the owner aborted) — a *cascade*
    /// error, never the root cause. Harvest reports the first
    /// non-cascade error of the session in role order.
    Cancelled {
        /// The protocol phase the cancelled role was in.
        phase: &'static str,
    },
    /// The session-wide wall-clock budget
    /// ([`crate::session::SapConfig::session_budget`]) ran out — the
    /// cooperative replacement for being reclaimed by a server's
    /// age-based GC sweep minutes later.
    DeadlineExceeded {
        /// The protocol phase that exhausted the budget.
        phase: &'static str,
    },
    /// The messaging layer failed (transport, crypto, or codec).
    Messaging(NodeError),
    /// A protocol invariant was violated (unexpected message, wrong
    /// dimensionality, duplicate slot, …).
    Protocol(String),
    /// A party thread panicked.
    PartyPanicked(PartyId),
    /// The session was configured with too few providers (SAP needs ≥ 3:
    /// with 2, the only non-coordinator receiver identifies every source).
    TooFewProviders {
        /// Providers supplied.
        got: usize,
    },
    /// Provider datasets disagree on dimensionality or class count.
    InconsistentInputs(String),
    /// The session's optimizer configuration is malformed (zero
    /// candidates, empty dataset). A typed error instead of a panic so a
    /// bad client config fails *its* session instead of killing a
    /// server-side role thread.
    Optimizer(OptimizeError),
    /// The session was aborted by its owner (server shutdown, GC of an
    /// overdue session, or an explicit
    /// [`crate::runtime::SessionHandle::abort`]).
    Aborted,
    /// Deadline-aware admission shed the session while it was still
    /// queued: its remaining [`crate::session::SapConfig::session_budget`]
    /// provably could not cover even the fastest gang service time the
    /// pool has observed, so running it would only burn a gang slot on a
    /// guaranteed [`SapError::DeadlineExceeded`]. No role ever ran.
    AdmissionShed {
        /// Time the session spent queued before being shed.
        waited: Duration,
        /// Deadline budget remaining at shed time (zero when expired).
        remaining: Duration,
        /// The optimistic service bound the budget could not cover.
        floor: Duration,
    },
    /// The session's role gang does not fit the worker pool — a sizing
    /// error caught at spawn, before any role runs.
    Capacity {
        /// Workers the session needs (one per role).
        needed: usize,
        /// Workers the pool has in total.
        available: usize,
    },
}

impl fmt::Display for SapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SapError::Timeout { waiting, phase } => {
                write!(f, "{waiting} timed out during {phase}")
            }
            SapError::PeerFailure { party, phase } => {
                write!(f, "{party} failed during {phase}")
            }
            SapError::Cancelled { phase } => {
                write!(
                    f,
                    "role cancelled during {phase} (sibling failed or owner aborted)"
                )
            }
            SapError::DeadlineExceeded { phase } => {
                write!(f, "session budget exhausted during {phase}")
            }
            SapError::Messaging(e) => write!(f, "messaging failure: {e}"),
            SapError::Protocol(what) => write!(f, "protocol violation: {what}"),
            SapError::PartyPanicked(p) => write!(f, "{p} panicked"),
            SapError::TooFewProviders { got } => {
                write!(f, "SAP needs at least 3 providers, got {got}")
            }
            SapError::InconsistentInputs(what) => write!(f, "inconsistent inputs: {what}"),
            SapError::Optimizer(e) => write!(f, "optimizer rejected the configuration: {e}"),
            SapError::Aborted => write!(f, "session aborted by its owner"),
            SapError::AdmissionShed {
                waited,
                remaining,
                floor,
            } => {
                write!(
                    f,
                    "session shed at admission after queueing {waited:?}: \
                     {remaining:?} budget left vs {floor:?} observed service floor"
                )
            }
            SapError::Capacity { needed, available } => {
                write!(
                    f,
                    "session needs {needed} workers but the pool has {available}"
                )
            }
        }
    }
}

impl std::error::Error for SapError {}

impl From<OptimizeError> for SapError {
    fn from(e: OptimizeError) -> Self {
        SapError::Optimizer(e)
    }
}

impl From<NodeError> for SapError {
    fn from(e: NodeError) -> Self {
        match e {
            // Framing violations (duplicate/reordered/orphan frames) are
            // protocol violations: SAP has no retransmission and must
            // abort loudly rather than guess.
            NodeError::Frame(frame) => SapError::Protocol(format!("framing violation: {frame}")),
            other => SapError::Messaging(other),
        }
    }
}

impl SapError {
    // `or_timeout` (the old per-call-site starvation rewriter) is gone:
    // every blocking role receive now goes through the governed path
    // (`crate::link::recv_message_ctx` / `recv_flow_ctx`), which owns the
    // Timeout/PeerDown conversions *and* the roster filtering a bare
    // rewriter could not apply.

    /// Whether this error is a *cascade* — a consequence of another
    /// role's failure rather than a root cause. Harvest skips cascades
    /// when picking the error to report for a failed session.
    #[must_use]
    pub fn is_cascade(&self) -> bool {
        matches!(self, SapError::Cancelled { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errs: Vec<SapError> = vec![
            SapError::Timeout {
                waiting: PartyId(3),
                phase: "adaptor collection",
            },
            SapError::Protocol("duplicate slot".into()),
            SapError::PartyPanicked(PartyId(1)),
            SapError::TooFewProviders { got: 2 },
            SapError::InconsistentInputs("dim 3 vs 4".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
        }
        assert!(SapError::TooFewProviders { got: 2 }
            .to_string()
            .contains("at least 3"));
    }
}
