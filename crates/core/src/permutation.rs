//! The coordinator's random-exchange plan.
//!
//! Section 3 of the brief: the coordinator `DP_k` generates a random
//! permutation `τ` of the `k` providers and lets `DPᵢ` receive the dataset
//! of `DP_{τ(i)}`. Because the coordinator later holds every space adaptor —
//! enough to undo any perturbation it could also see — it must not receive
//! any dataset, so its receiving slot is redirected to a uniformly random
//! non-coordinator `j`: the mapping becomes
//! `(1, …, k−1, j) ← (τ(1), …, τ(k))`. Every dataset then lands on one of
//! the `k−1` non-coordinator providers, giving the miner's-view source
//! identifiability `πᵢ = 1/(k−1)`.

use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// The exchange plan: who receives (and therefore relays) each provider's
/// perturbed dataset. Indices are provider positions `0..k`; the coordinator
/// is a position in that range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    /// `receiver_of[owner]` = the provider that receives `owner`'s dataset.
    receiver_of: Vec<usize>,
    /// Position of the coordinator.
    coordinator: usize,
}

impl ExchangePlan {
    /// Draws a random exchange plan for `k` providers with the coordinator
    /// at position `coordinator`.
    ///
    /// # Panics
    ///
    /// Panics when `k < 3` (with `k = 2` the single non-coordinator receiver
    /// would identify every source) or `coordinator >= k`.
    pub fn random<R: Rng + ?Sized>(k: usize, coordinator: usize, rng: &mut R) -> Self {
        assert!(k >= 3, "exchange requires at least 3 providers");
        assert!(coordinator < k, "coordinator index out of range");

        // τ: receiver position i receives from owner τ(i). Draw τ as a
        // uniform permutation of owners.
        let mut owners: Vec<usize> = (0..k).collect();
        owners.shuffle(rng);
        // receiver_of[owner] = position i with τ(i) = owner.
        let mut receiver_of = vec![0usize; k];
        for (receiver, &owner) in owners.iter().enumerate() {
            receiver_of[owner] = receiver;
        }
        // Redirect the coordinator's receiving slot to a random
        // non-coordinator j.
        let coordinator_gets = owners[coordinator];
        let mut j = rng.random_range(0..k - 1);
        if j >= coordinator {
            j += 1;
        }
        receiver_of[coordinator_gets] = j;

        ExchangePlan {
            receiver_of,
            coordinator,
        }
    }

    /// Number of providers.
    pub fn k(&self) -> usize {
        self.receiver_of.len()
    }

    /// The coordinator's position.
    pub fn coordinator(&self) -> usize {
        self.coordinator
    }

    /// Receiver of `owner`'s dataset.
    ///
    /// # Panics
    ///
    /// Panics when `owner >= k`.
    pub fn receiver_of(&self, owner: usize) -> usize {
        self.receiver_of[owner]
    }

    /// How many datasets `receiver` will be handed (0 for the coordinator,
    /// 1 for most providers, 2 for the redirect target).
    pub fn incoming_count(&self, receiver: usize) -> usize {
        self.receiver_of.iter().filter(|&&r| r == receiver).count()
    }

    /// Checks the structural invariants: the coordinator receives nothing
    /// and every dataset has a receiver among the `k−1` others.
    pub fn is_valid(&self) -> bool {
        let k = self.k();
        self.receiver_of
            .iter()
            .all(|&r| r < k && r != self.coordinator)
            && self.incoming_count(self.coordinator) == 0
    }

    /// The miner's-view source identifiability `1/(k−1)` this plan achieves.
    pub fn identifiability(&self) -> f64 {
        1.0 / (self.k() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_is_valid_for_many_draws() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 3..12 {
            for coord in 0..k {
                for _ in 0..20 {
                    let plan = ExchangePlan::random(k, coord, &mut rng);
                    assert!(plan.is_valid(), "invalid plan k={k} coord={coord}");
                    assert_eq!(plan.k(), k);
                }
            }
        }
    }

    #[test]
    fn coordinator_never_receives() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let plan = ExchangePlan::random(6, 5, &mut rng);
            assert_eq!(plan.incoming_count(5), 0);
            for owner in 0..6 {
                assert_ne!(plan.receiver_of(owner), 5);
            }
        }
    }

    #[test]
    fn every_dataset_is_received_and_counts_sum() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = ExchangePlan::random(7, 6, &mut rng);
        let total: usize = (0..7).map(|r| plan.incoming_count(r)).sum();
        assert_eq!(total, 7, "all 7 datasets must land somewhere");
        // Exactly one receiver got doubled (the redirect).
        let doubled = (0..7).filter(|&r| plan.incoming_count(r) == 2).count();
        assert_eq!(doubled, 1);
    }

    #[test]
    fn receivers_are_roughly_uniform() {
        // Over many draws, each non-coordinator should receive owner 0's
        // dataset about equally often: identifiability ≈ 1/(k−1).
        let mut rng = StdRng::seed_from_u64(4);
        let k = 5;
        let draws = 20_000;
        let mut counts = vec![0usize; k];
        for _ in 0..draws {
            let plan = ExchangePlan::random(k, k - 1, &mut rng);
            counts[plan.receiver_of(0)] += 1;
        }
        assert_eq!(counts[k - 1], 0, "coordinator never receives");
        let expected = draws as f64 / (k - 1) as f64;
        for (r, &c) in counts.iter().enumerate().take(k - 1) {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "receiver {r}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn identifiability_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = ExchangePlan::random(9, 8, &mut rng);
        assert!((plan.identifiability() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn two_providers_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = ExchangePlan::random(2, 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coordinator_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = ExchangePlan::random(4, 4, &mut rng);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ExchangePlan::random(6, 5, &mut StdRng::seed_from_u64(8));
        let b = ExchangePlan::random(6, 5, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }
}
