//! The streaming data plane: block sinks, block stages, and the stream
//! monitor.
//!
//! PR 1 made datasets travel as row-block *frames*; PR 2 multiplexed many
//! sessions onto one mesh. Until this module, every role still buffered a
//! complete stream before touching a single row — the transport was
//! pipelined, the compute was not. The data plane closes that gap: row
//! blocks coming off [`crate::link`] flow through a chain of
//! [`BlockStage`]s into a [`BlockSink`] **as they arrive**, overlapping
//! seal/unseal and TCP I/O with perturbation, space adaptation, and
//! classification inside each session (and across sessions on the shared
//! [`crate::runtime::ActorPool`]).
//!
//! ```text
//!   wire block (Bytes) ──decode──► BlockBuf (reused scratch)
//!        │                            │
//!        │                   BlockStage × N  (e.g. AdaptStage)
//!        │                            │
//!        ▼                            ▼
//!   relay pump (zero-decode)     BlockSink  (DatasetSink, ClassifierSink)
//! ```
//!
//! Every kernel the stages call accumulates in the same element order as
//! the monolithic path, so a pipeline fed block by block produces results
//! **bit-identical** to buffering the whole stream first — the invariant
//! `tests/stream_equivalence.rs` pins down.

use crate::error::SapError;
use crate::link::DataHeader;
use bytes::Bytes;
use sap_classify::Model;
use sap_datasets::Dataset;
use sap_linalg::MatrixView;
use sap_perturb::SpaceAdaptor;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A decoded row-block in reusable scratch buffers.
///
/// `values` holds the block **record-major** (`rows × dim`, one record
/// per row — the wire layout's order), `labels` one class label per
/// record. A pipeline owns one `BlockBuf` and refills it for every
/// block, so steady-state streaming performs no per-block allocation;
/// stages read the values through a zero-copy [`MatrixView`].
#[derive(Debug, Default)]
pub struct BlockBuf {
    rows: usize,
    dim: usize,
    /// Class labels, one per record.
    pub labels: Vec<usize>,
    /// Record-major values, `rows × dim`.
    pub values: Vec<f64>,
}

impl BlockBuf {
    /// Records in the block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The values as a zero-copy `rows × dim` view.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.rows, self.dim, &self.values)
    }

    /// Decodes one wire block (`[rows:u32] [labels] [values]`, see
    /// [`crate::link`]) into this buffer, reusing its allocations.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Protocol`] on truncation, size mismatch, or an
    /// out-of-range label — the same violations the buffered
    /// [`crate::link::DataStream::into_dataset`] path rejects.
    pub fn decode(
        &mut self,
        bytes: &Bytes,
        dim: usize,
        num_classes: usize,
    ) -> Result<(), SapError> {
        if bytes.len() < 4 {
            return Err(SapError::Protocol(
                "row block shorter than its count".into(),
            ));
        }
        let (count, rest) = bytes.split_at(4);
        let rows = u32::from_le_bytes(count.try_into().expect("4 bytes")) as usize;
        let row_size = 4 + dim * 8;
        let expect = rows
            .checked_mul(row_size)
            .ok_or_else(|| SapError::Protocol("row block size overflows".into()))?;
        if rest.len() != expect {
            return Err(SapError::Protocol(format!(
                "row block size {} != expected {expect} for {rows} rows × {dim} dims",
                rest.len()
            )));
        }
        let (label_bytes, value_bytes) = rest.split_at(rows * 4);
        self.rows = rows;
        self.dim = dim;
        self.labels.clear();
        for chunk in label_bytes.chunks_exact(4) {
            let label = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) as usize;
            if label >= num_classes {
                return Err(SapError::Protocol(format!(
                    "label {label} out of range for {num_classes} classes"
                )));
            }
            self.labels.push(label);
        }
        self.values.clear();
        self.values.reserve(rows * dim);
        for v in value_bytes.chunks_exact(8) {
            self.values
                .push(f64::from_le_bytes(v.try_into().expect("8 bytes")));
        }
        Ok(())
    }
}

/// A transformation applied to each row-block in flight (values in,
/// values out — labels pass through untouched).
pub trait BlockStage: Send {
    /// Transforms one decoded block in place.
    ///
    /// # Errors
    ///
    /// Returns [`SapError`] when the block violates the stage's
    /// invariants (dimension mismatch, …).
    fn process(&mut self, block: &mut BlockBuf) -> Result<(), SapError>;
}

/// A terminal consumer of a dataset's row-blocks.
pub trait BlockSink: Send {
    /// Called once, with the stream header, before any block.
    ///
    /// # Errors
    ///
    /// Returns [`SapError`] when the header is unacceptable.
    fn start(&mut self, header: &DataHeader) -> Result<(), SapError> {
        let _ = header;
        Ok(())
    }

    /// Consumes one (decoded, staged) block.
    ///
    /// # Errors
    ///
    /// Returns [`SapError`] when the block violates the sink's invariants.
    fn block(&mut self, block: &BlockBuf) -> Result<(), SapError>;

    /// Called once after the final block.
    ///
    /// # Errors
    ///
    /// Returns [`SapError`] when the completed stream is invalid.
    fn finish(&mut self) -> Result<(), SapError> {
        Ok(())
    }
}

/// Drives wire blocks through decode → stages → sink, enforcing the
/// stream header's declared row count exactly like the buffered decoder.
pub struct StreamPipeline<S: BlockSink> {
    header: DataHeader,
    stages: Vec<Box<dyn BlockStage>>,
    sink: S,
    buf: BlockBuf,
    seen_rows: usize,
}

impl<S: BlockSink> StreamPipeline<S> {
    /// Opens a pipeline for one stream.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Protocol`] on a degenerate header (zero rows
    /// or dimensions — the buffered path's first check) or when the sink
    /// rejects the header.
    pub fn open(
        header: DataHeader,
        stages: Vec<Box<dyn BlockStage>>,
        mut sink: S,
    ) -> Result<Self, SapError> {
        if header.rows == 0 || header.dim == 0 {
            return Err(SapError::Protocol(
                "dataset stream with zero rows or dimensions".into(),
            ));
        }
        sink.start(&header)?;
        Ok(StreamPipeline {
            header,
            stages,
            sink,
            buf: BlockBuf::default(),
            seen_rows: 0,
        })
    }

    /// The stream's header.
    pub fn header(&self) -> &DataHeader {
        &self.header
    }

    /// Rows consumed so far.
    pub fn seen_rows(&self) -> usize {
        self.seen_rows
    }

    /// Decodes and processes one wire block.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Protocol`] on malformed blocks or when the
    /// stream exceeds its declared row count, plus anything the stages or
    /// sink reject.
    pub fn push(&mut self, bytes: &Bytes) -> Result<(), SapError> {
        let total = usize::try_from(self.header.rows)
            .map_err(|_| SapError::Protocol("row count overflows usize".into()))?;
        self.buf.decode(
            bytes,
            self.header.dim as usize,
            self.header.num_classes as usize,
        )?;
        self.seen_rows += self.buf.rows();
        if self.seen_rows > total {
            return Err(SapError::Protocol(format!(
                "stream delivered more than the declared {total} rows"
            )));
        }
        for stage in &mut self.stages {
            stage.process(&mut self.buf)?;
        }
        self.sink.block(&self.buf)
    }

    /// Closes the stream and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`SapError::Protocol`] when fewer rows arrived than the
    /// header declared, plus anything the sink's finish rejects.
    pub fn finish(mut self) -> Result<S, SapError> {
        let total = usize::try_from(self.header.rows)
            .map_err(|_| SapError::Protocol("row count overflows usize".into()))?;
        if self.seen_rows != total {
            return Err(SapError::Protocol(format!(
                "stream delivered {} of {total} declared rows",
                self.seen_rows
            )));
        }
        self.sink.finish()?;
        Ok(self.sink)
    }
}

/// A [`BlockStage`] applying a [`SpaceAdaptor`] to every block — space
/// adaptation consuming row-blocks incrementally. Bit-identical to
/// adapting the assembled dataset afterwards (see
/// [`SpaceAdaptor::adapt_records`]).
pub struct AdaptStage {
    adaptor: SpaceAdaptor,
    scratch: Vec<f64>,
}

impl AdaptStage {
    /// Wraps an adaptor as a stage.
    pub fn new(adaptor: SpaceAdaptor) -> Self {
        AdaptStage {
            adaptor,
            scratch: Vec::new(),
        }
    }
}

impl BlockStage for AdaptStage {
    fn process(&mut self, block: &mut BlockBuf) -> Result<(), SapError> {
        if block.dim() != self.adaptor.dim() {
            return Err(SapError::Protocol(format!(
                "adaptor dim {} != block dim {}",
                self.adaptor.dim(),
                block.dim()
            )));
        }
        self.scratch.clear();
        self.scratch.resize(block.values.len(), 0.0);
        self.adaptor.adapt_records(&block.values, &mut self.scratch);
        std::mem::swap(&mut block.values, &mut self.scratch);
        Ok(())
    }
}

/// A [`BlockSink`] accumulating blocks into one flat record-major buffer
/// — the streaming replacement for collecting a monolithic [`Dataset`]
/// (which it can still produce at the end).
#[derive(Debug, Default)]
pub struct DatasetSink {
    dim: usize,
    num_classes: usize,
    /// Record-major values of every record so far.
    pub values: Vec<f64>,
    /// Labels of every record so far.
    pub labels: Vec<usize>,
}

impl DatasetSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        DatasetSink::default()
    }

    /// Records accumulated so far.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Builds the accumulated records into a [`Dataset`].
    ///
    /// # Panics
    ///
    /// Panics when no blocks were consumed (datasets are non-empty).
    pub fn into_dataset(self) -> Dataset {
        let records: Vec<Vec<f64>> = self
            .values
            .chunks_exact(self.dim.max(1))
            .map(<[f64]>::to_vec)
            .collect();
        Dataset::with_num_classes(records, self.labels, self.num_classes)
    }
}

impl BlockSink for DatasetSink {
    fn start(&mut self, header: &DataHeader) -> Result<(), SapError> {
        self.dim = header.dim as usize;
        self.num_classes = header.num_classes as usize;
        Ok(())
    }

    fn block(&mut self, block: &BlockBuf) -> Result<(), SapError> {
        self.values.extend_from_slice(&block.values);
        self.labels.extend_from_slice(&block.labels);
        Ok(())
    }
}

/// A [`BlockSink`] scoring each block against a trained classifier as it
/// arrives — classification consuming row-blocks incrementally, without
/// ever assembling a [`Dataset`].
pub struct ClassifierSink<M: Model + Send> {
    model: M,
    predictions: Vec<usize>,
    correct: u64,
    total: u64,
}

impl<M: Model + Send> ClassifierSink<M> {
    /// Wraps a trained model.
    pub fn new(model: M) -> Self {
        ClassifierSink {
            model,
            predictions: Vec::new(),
            correct: 0,
            total: 0,
        }
    }

    /// Records scored so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records whose predicted label matched the block's label.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Running accuracy over every block so far (0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

impl<M: Model + Send> BlockSink for ClassifierSink<M> {
    fn block(&mut self, block: &BlockBuf) -> Result<(), SapError> {
        self.model
            .predict_block(block.view(), &mut self.predictions);
        self.total += block.rows() as u64;
        self.correct += self
            .predictions
            .iter()
            .zip(&block.labels)
            .filter(|(p, l)| p == l)
            .count() as u64;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stream monitor
// ---------------------------------------------------------------------------

/// Shared per-session observability for the streaming data plane. Every
/// role of a session holds a clone; the harvested
/// [`crate::session::SapOutcome`] carries the final [`StreamStats`]
/// snapshot, and `sap-server` aggregates them across sessions.
#[derive(Clone, Debug, Default)]
pub struct StreamMonitor {
    inner: Arc<MonitorInner>,
}

#[derive(Debug, Default)]
struct MonitorInner {
    blocks_streamed: AtomicU64,
    pipelined_blocks: AtomicU64,
    streams_open: AtomicU32,
    max_streams_open: AtomicU32,
    compute_nanos: AtomicU64,
    overlapped_nanos: AtomicU64,
}

impl StreamMonitor {
    /// Creates a fresh monitor.
    pub fn new() -> Self {
        StreamMonitor::default()
    }

    /// An inbound stream opened somewhere in the session.
    pub fn stream_opened(&self) {
        let now = self.inner.streams_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner
            .max_streams_open
            .fetch_max(now, Ordering::Relaxed);
    }

    /// An inbound stream finished.
    pub fn stream_closed(&self) {
        self.inner.streams_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Inbound streams currently open ("blocks in flight" gauge).
    pub fn streams_open(&self) -> u32 {
        self.inner.streams_open.load(Ordering::Relaxed)
    }

    /// A stream block was received by some role.
    pub fn block_received(&self) {
        self.inner.blocks_streamed.fetch_add(1, Ordering::Relaxed);
    }

    /// A block was forwarded onward *while its stream was still
    /// arriving* — the pipelining the data plane exists for.
    pub fn block_pipelined(&self) {
        self.inner.pipelined_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts `spent` of data-plane compute; `overlapped` marks work
    /// done while stream data was still in flight (compute/I-O overlap).
    pub fn compute(&self, spent: Duration, overlapped: bool) {
        let nanos = u64::try_from(spent.as_nanos()).unwrap_or(u64::MAX);
        self.inner.compute_nanos.fetch_add(nanos, Ordering::Relaxed);
        if overlapped {
            self.inner
                .overlapped_nanos
                .fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// The current counters as a stats snapshot.
    pub fn snapshot(&self) -> StreamStats {
        StreamStats {
            blocks_streamed: self.inner.blocks_streamed.load(Ordering::Relaxed),
            pipelined_blocks: self.inner.pipelined_blocks.load(Ordering::Relaxed),
            max_streams_in_flight: self.inner.max_streams_open.load(Ordering::Relaxed),
            compute_s: self.inner.compute_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            overlapped_compute_s: self.inner.overlapped_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }
}

/// Streaming data-plane statistics of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Stream blocks received across the session's roles.
    pub blocks_streamed: u64,
    /// Blocks forwarded by the relay hop before their inbound stream had
    /// finished (zero on the buffered data plane).
    pub pipelined_blocks: u64,
    /// Maximum inbound streams simultaneously in flight.
    pub max_streams_in_flight: u32,
    /// Total data-plane compute (decode + adapt) in seconds.
    pub compute_s: f64,
    /// The share of [`StreamStats::compute_s`] spent while stream data
    /// was still arriving — compute the session hid under I/O.
    pub overlapped_compute_s: f64,
}

impl StreamStats {
    /// Fraction of data-plane compute overlapped with I/O (0 when no
    /// compute was recorded).
    pub fn overlap_ratio(&self) -> f64 {
        if self.compute_s <= 0.0 {
            0.0
        } else {
            self.overlapped_compute_s / self.compute_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link;
    use crate::messages::SlotTag;
    use sap_classify::KnnClassifier;
    use sap_net::SessionId;

    fn dataset(rows: usize, dim: usize) -> Dataset {
        let records: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) % 17) as f64 / 17.0)
                    .collect()
            })
            .collect();
        Dataset::new(records, (0..rows).map(|i| i % 2).collect())
    }

    fn wire_blocks(data: &Dataset, block_rows: usize) -> (DataHeader, Vec<Bytes>) {
        let header = DataHeader {
            session: SessionId::SOLO,
            relay: false,
            slot: SlotTag(1),
            rows: data.len() as u64,
            dim: data.dim() as u32,
            num_classes: data.num_classes() as u32,
        };
        let blocks = (0..data.len())
            .step_by(block_rows)
            .map(|start| link::encode_block(data, start, (start + block_rows).min(data.len())))
            .collect();
        (header, blocks)
    }

    #[test]
    fn dataset_sink_reassembles_exactly() {
        let data = dataset(53, 3);
        for block_rows in [1usize, 8, 53, 100] {
            let (header, blocks) = wire_blocks(&data, block_rows);
            let mut pipe = StreamPipeline::open(header, Vec::new(), DatasetSink::new()).unwrap();
            for b in &blocks {
                pipe.push(b).unwrap();
            }
            let back = pipe.finish().unwrap().into_dataset();
            assert_eq!(back, data, "block_rows={block_rows}");
        }
    }

    #[test]
    fn adapt_stage_equals_post_hoc_adaptation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sap_perturb::Perturbation;

        let mut rng = StdRng::seed_from_u64(5);
        let data = dataset(40, 4);
        let gi = Perturbation::random(4, &mut rng);
        let gt = Perturbation::random(4, &mut rng);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();

        // Streaming: adapt block by block as the stream arrives.
        let (header, blocks) = wire_blocks(&data, 7);
        let mut pipe = StreamPipeline::open(
            header,
            vec![Box::new(AdaptStage::new(adaptor.clone()))],
            DatasetSink::new(),
        )
        .unwrap();
        for b in &blocks {
            pipe.push(b).unwrap();
        }
        let streamed = pipe.finish().unwrap().into_dataset();

        // Buffered: assemble, then one monolithic apply.
        let y = data.to_column_matrix();
        let adapted = adaptor.apply(&y);
        let buffered =
            Dataset::from_column_matrix(&adapted, data.labels().to_vec(), data.num_classes());
        assert_eq!(streamed, buffered, "must be bit-identical");
    }

    #[test]
    fn classifier_sink_scores_blocks_incrementally() {
        let train = dataset(60, 3);
        let model = KnnClassifier::fit(&train, 3);
        let test = dataset(31, 3);
        let expected = model.accuracy(&test);

        let (header, blocks) = wire_blocks(&test, 5);
        let mut pipe =
            StreamPipeline::open(header, Vec::new(), ClassifierSink::new(model)).unwrap();
        for b in &blocks {
            pipe.push(b).unwrap();
        }
        let sink = pipe.finish().unwrap();
        assert_eq!(sink.total(), 31);
        assert!((sink.accuracy() - expected).abs() < 1e-12);
    }

    #[test]
    fn pipeline_enforces_declared_rows() {
        let data = dataset(20, 2);
        let (mut header, blocks) = wire_blocks(&data, 8);
        header.rows = 25; // declare more than will arrive
        let mut pipe = StreamPipeline::open(header, Vec::new(), DatasetSink::new()).unwrap();
        for b in &blocks {
            pipe.push(b).unwrap();
        }
        assert!(matches!(pipe.finish(), Err(SapError::Protocol(_))));

        let (mut header, blocks) = wire_blocks(&data, 8);
        header.rows = 10; // declare fewer
        let mut pipe = StreamPipeline::open(header, Vec::new(), DatasetSink::new()).unwrap();
        let mut failed = false;
        for b in &blocks {
            if pipe.push(b).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "over-delivery must be rejected mid-stream");
    }

    #[test]
    fn block_buf_rejects_malformed_blocks() {
        let mut buf = BlockBuf::default();
        // Truncated.
        assert!(buf
            .decode(&Bytes::from_static(b"\x02\x00\x00\x00"), 2, 2)
            .is_err());
        // Label out of range.
        let data = dataset(4, 2);
        let block = link::encode_block(&data, 0, 4);
        assert!(buf.decode(&block, 2, 1).is_err());
        // Valid.
        assert!(buf.decode(&block, 2, 2).is_ok());
        assert_eq!(buf.rows(), 4);
        assert_eq!(buf.view().cols(), 2);
    }

    #[test]
    fn monitor_tracks_overlap_and_flight() {
        let m = StreamMonitor::new();
        m.stream_opened();
        m.stream_opened();
        m.block_received();
        m.block_pipelined();
        m.stream_closed();
        m.compute(Duration::from_millis(30), true);
        m.compute(Duration::from_millis(10), false);
        m.stream_closed();
        let s = m.snapshot();
        assert_eq!(s.blocks_streamed, 1);
        assert_eq!(s.pipelined_blocks, 1);
        assert_eq!(s.max_streams_in_flight, 2);
        assert!((s.overlap_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(m.streams_open(), 0);
    }
}
