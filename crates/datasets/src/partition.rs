//! Splitting a pooled dataset across `k` data providers.
//!
//! The paper evaluates two *partition distributions*:
//!
//! * **Uniform** — each local dataset is (approximately) a uniform random
//!   sample of the pooled data, so every provider sees the global class mix.
//! * **Class-skewed** — providers receive class-correlated slices, so local
//!   class distributions deviate from the pooled one. (The figures label
//!   this "Class".)
//!
//! Both schemes produce *randomly sized* sub-datasets, as in the paper's
//! setup ("split into several randomly sized sub-datasets"). Sizes are drawn
//! from a symmetric Dirichlet-like allocation with a floor so no provider is
//! starved.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// How records are distributed across providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionScheme {
    /// Each provider is a near-uniform random sample of the pooled dataset.
    Uniform,
    /// Providers receive class-correlated slices (skewed local label
    /// distributions) — the paper's "Class" partition distribution.
    ClassSkewed,
}

impl PartitionScheme {
    /// Label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PartitionScheme::Uniform => "Uniform",
            PartitionScheme::ClassSkewed => "Class",
        }
    }
}

/// Minimum number of records per provider.
pub const MIN_PART_SIZE: usize = 8;

/// Draws `k` random part sizes summing to `n`, each at least
/// [`MIN_PART_SIZE`] (or `n / (2k)` when `n` is small).
fn random_sizes(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k >= 1);
    let floor = MIN_PART_SIZE.min((n / (2 * k)).max(1));
    assert!(
        n >= floor * k,
        "cannot split {n} records across {k} providers"
    );
    // Random positive weights, then largest-remainder allocation over the
    // budget that remains after the floor.
    let weights: Vec<f64> = (0..k).map(|_| rng.random_range(0.5..1.5)).collect();
    let total: f64 = weights.iter().sum();
    let budget = n - floor * k;
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| floor + (w / total * budget as f64).floor() as usize)
        .collect();
    let mut assigned: usize = sizes.iter().sum();
    let mut i = 0;
    while assigned < n {
        sizes[i % k] += 1;
        assigned += 1;
        i += 1;
    }
    sizes
}

/// Splits `data` into `k` randomly sized sub-datasets under `scheme`,
/// deterministically in `seed`. The union of the parts is exactly the input
/// (no overlap, no loss).
///
/// # Panics
///
/// Panics when `k == 0` or the dataset is too small to give every provider
/// at least one record.
pub fn partition(data: &Dataset, k: usize, scheme: PartitionScheme, seed: u64) -> Vec<Dataset> {
    assert!(k >= 1, "need at least one provider");
    let n = data.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = random_sizes(n, k, &mut rng);

    let mut order: Vec<usize> = (0..n).collect();
    match scheme {
        PartitionScheme::Uniform => {
            order.shuffle(&mut rng);
        }
        PartitionScheme::ClassSkewed => {
            // Sort by class with random tie-breaking, then carve contiguous
            // chunks: each provider sees a class-correlated slice.
            order.shuffle(&mut rng);
            order.sort_by_key(|&i| data.label(i));
        }
    }

    let mut parts = Vec::with_capacity(k);
    let mut offset = 0;
    for &size in &sizes {
        let idx = &order[offset..offset + size];
        parts.push(data.subset(idx));
        offset += size;
    }
    parts
}

/// Measures how far a partition's local class distributions deviate from the
/// pooled distribution: the mean total-variation distance across parts.
/// `0` means perfectly uniform sampling; larger is more skewed.
pub fn partition_skew(pooled: &Dataset, parts: &[Dataset]) -> f64 {
    let n = pooled.len() as f64;
    let global: Vec<f64> = pooled
        .class_counts()
        .iter()
        .map(|&c| c as f64 / n)
        .collect();
    let mut total = 0.0;
    for p in parts {
        let pn = p.len() as f64;
        let local: Vec<f64> = p.class_counts().iter().map(|&c| c as f64 / pn).collect();
        let tv: f64 = global
            .iter()
            .zip(local.iter().chain(std::iter::repeat(&0.0)))
            .map(|(g, l)| (g - l).abs())
            .sum::<f64>()
            / 2.0;
        total += tv;
    }
    total / parts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::UciDataset;

    #[test]
    fn partition_is_exact_cover() {
        let data = UciDataset::Iris.generate(1);
        for scheme in [PartitionScheme::Uniform, PartitionScheme::ClassSkewed] {
            let parts = partition(&data, 5, scheme, 3);
            assert_eq!(parts.len(), 5);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, data.len());
            for p in &parts {
                assert_eq!(p.dim(), data.dim());
                assert_eq!(p.num_classes(), data.num_classes());
            }
        }
    }

    #[test]
    fn sizes_are_random_but_bounded() {
        let data = UciDataset::Diabetes.generate(2);
        let parts = partition(&data, 6, PartitionScheme::Uniform, 11);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().all(|&s| s >= MIN_PART_SIZE));
        // Random sizing: parts should not all be equal.
        assert!(sizes.iter().any(|&s| s != sizes[0]), "sizes {sizes:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let data = UciDataset::Wine.generate(3);
        let a = partition(&data, 4, PartitionScheme::Uniform, 9);
        let b = partition(&data, 4, PartitionScheme::Uniform, 9);
        assert_eq!(a, b);
        let c = partition(&data, 4, PartitionScheme::Uniform, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn class_skewed_is_more_skewed_than_uniform() {
        let data = UciDataset::Votes.generate(4);
        let uni = partition(&data, 5, PartitionScheme::Uniform, 5);
        let skew = partition(&data, 5, PartitionScheme::ClassSkewed, 5);
        let s_uni = partition_skew(&data, &uni);
        let s_skew = partition_skew(&data, &skew);
        assert!(
            s_skew > s_uni + 0.1,
            "skewed {s_skew:.3} should exceed uniform {s_uni:.3}"
        );
    }

    #[test]
    fn single_provider_gets_everything() {
        let data = UciDataset::Iris.generate(5);
        let parts = partition(&data, 1, PartitionScheme::Uniform, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), data.len());
    }

    #[test]
    fn labels_travel_with_records() {
        let data = UciDataset::Iris.generate(6);
        let parts = partition(&data, 3, PartitionScheme::Uniform, 2);
        // Re-pool and compare class counts.
        let pooled = Dataset::concat(&parts);
        assert_eq!(pooled.class_counts(), data.class_counts());
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(PartitionScheme::Uniform.label(), "Uniform");
        assert_eq!(PartitionScheme::ClassSkewed.label(), "Class");
    }

    #[test]
    #[should_panic(expected = "at least one provider")]
    fn zero_providers_panics() {
        let data = UciDataset::Iris.generate(7);
        let _ = partition(&data, 0, PartitionScheme::Uniform, 0);
    }
}
