//! Per-column summary statistics, used by privacy metrics and reports.

use crate::dataset::Dataset;
use sap_linalg::vecops;

/// Summary statistics of one feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

/// Computes [`ColumnStats`] for every feature of a dataset.
pub fn column_stats(data: &Dataset) -> Vec<ColumnStats> {
    (0..data.dim())
        .map(|j| {
            let col: Vec<f64> = data.records().iter().map(|r| r[j]).collect();
            ColumnStats {
                min: vecops::min(&col),
                max: vecops::max(&col),
                mean: vecops::mean(&col),
                std_dev: vecops::std_dev(&col),
            }
        })
        .collect()
}

/// Centroid of each class: `num_classes` vectors of dimension `d`. Classes
/// absent from the dataset yield `None`.
pub fn class_centroids(data: &Dataset) -> Vec<Option<Vec<f64>>> {
    let mut sums = vec![vec![0.0; data.dim()]; data.num_classes()];
    let mut counts = vec![0usize; data.num_classes()];
    for (rec, lab) in data.iter() {
        counts[lab] += 1;
        for (j, &v) in rec.iter().enumerate() {
            sums[lab][j] += v;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| {
            if c == 0 {
                None
            } else {
                Some(s.into_iter().map(|x| x / c as f64).collect())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_stats_basic() {
        let data = Dataset::new(
            vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]],
            vec![0, 0, 1],
        );
        let stats = column_stats(&data);
        assert_eq!(stats[0].min, 1.0);
        assert_eq!(stats[0].max, 5.0);
        assert!((stats[0].mean - 3.0).abs() < 1e-12);
        assert!((stats[1].mean - 20.0).abs() < 1e-12);
        assert!((stats[0].std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn centroids_per_class() {
        let data = Dataset::new(
            vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![10.0, 10.0]],
            vec![0, 0, 1],
        );
        let cents = class_centroids(&data);
        assert_eq!(cents[0].as_ref().unwrap(), &vec![1.0, 1.0]);
        assert_eq!(cents[1].as_ref().unwrap(), &vec![10.0, 10.0]);
    }

    #[test]
    fn missing_class_yields_none() {
        let data = Dataset::with_num_classes(vec![vec![1.0]], vec![0], 3);
        let cents = class_centroids(&data);
        assert!(cents[0].is_some());
        assert!(cents[1].is_none());
        assert!(cents[2].is_none());
    }
}
