//! Synthetic UCI-like datasets and multiparty data handling for the SAP
//! reproduction.
//!
//! The PODC'07 evaluation runs on twelve UCI machine-learning datasets, each
//! "split into several randomly sized sub-datasets, simulating the
//! distributed datasets from the data providers". The original UCI files are
//! not redistributable inside this offline reproduction, so this crate
//! provides **deterministic synthetic stand-ins**: for each of the twelve
//! datasets, a Gaussian-mixture generator calibrated to the published shape
//! (record count, dimensionality, class count, class balance, and a
//! per-dataset separability setting chosen so the clean classifier accuracy
//! lands in the ballpark reported for that dataset in the classifier
//! literature). The SAP experiments measure *relative* quantities — accuracy
//! deviation against the clean baseline, optimality rates of perturbations —
//! which this preserves; see DESIGN.md §2 for the substitution argument.
//!
//! # Layout
//!
//! * [`Dataset`] — records (rows) + integer labels, with the `d × N`
//!   column-matrix view the perturbation code expects.
//! * [`registry::UciDataset`] — the twelve named datasets and their specs.
//! * [`generator`] — the Gaussian-mixture engine behind the registry.
//! * [`normalize`] — min–max normalization to `[0, 1]` (the paper perturbs
//!   *normalized* data).
//! * [`partition`] — uniform and class-skewed splits into `k` providers.
//! * [`split`] — train/test and k-fold helpers.
//!
//! # Example
//!
//! ```
//! use sap_datasets::registry::UciDataset;
//! use sap_datasets::partition::{partition, PartitionScheme};
//!
//! let data = UciDataset::Iris.generate(42);
//! assert_eq!(data.dim(), 4);
//! let parts = partition(&data, 5, PartitionScheme::Uniform, 7);
//! assert_eq!(parts.len(), 5);
//! let total: usize = parts.iter().map(|p| p.len()).sum();
//! assert_eq!(total, data.len());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod generator;
pub mod normalize;
pub mod partition;
pub mod registry;
pub mod split;
pub mod stats;

pub use dataset::Dataset;
pub use registry::UciDataset;
