//! The labeled-dataset container shared by every crate in the workspace.

use sap_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A labeled numeric dataset: `N` records of `d` features plus a class label
/// per record.
///
/// Records are stored row-major (one record per row). The perturbation code
/// follows the paper's `d × N` convention (one record per *column*); use
/// [`Dataset::to_column_matrix`] / [`Dataset::from_column_matrix`] to cross
/// between the two views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    records: Vec<Vec<f64>>,
    labels: Vec<usize>,
    dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from records and labels.
    ///
    /// `num_classes` is inferred as `max(label) + 1`.
    ///
    /// # Panics
    ///
    /// Panics when `records` and `labels` lengths differ, when records are
    /// ragged, or when `records` is empty.
    pub fn new(records: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(
            records.len(),
            labels.len(),
            "records/labels length mismatch"
        );
        assert!(!records.is_empty(), "dataset must be non-empty");
        let dim = records[0].len();
        assert!(
            records.iter().all(|r| r.len() == dim),
            "ragged records in dataset"
        );
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Dataset {
            records,
            labels,
            dim,
            num_classes,
        }
    }

    /// Creates a dataset with an explicit class count (useful when a subset
    /// does not contain every class).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Dataset::new`], plus any label `>= num_classes`.
    pub fn with_num_classes(
        records: Vec<Vec<f64>>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let mut d = Self::new(records, labels);
        assert!(
            d.labels.iter().all(|&l| l < num_classes),
            "label exceeds num_classes"
        );
        d.num_classes = num_classes;
        d
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the dataset holds no records. Kept for API completeness;
    /// constructors reject empty datasets.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Feature dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow record `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn record(&self, i: usize) -> &[f64] {
        &self.records[i]
    }

    /// Label of record `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All records.
    pub fn records(&self) -> &[Vec<f64>] {
        &self.records
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates over `(record, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.records
            .iter()
            .map(|r| r.as_slice())
            .zip(self.labels.iter().copied())
    }

    /// Per-class record counts (length [`Dataset::num_classes`]).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The `d × N` matrix whose columns are the records — the orientation the
    /// paper's `G(X) = R·X + Ψ + Δ` acts on.
    pub fn to_column_matrix(&self) -> Matrix {
        Matrix::from_fn(self.dim, self.len(), |r, c| self.records[c][r])
    }

    /// Rebuilds a dataset from a `d × N` column matrix and labels (the
    /// inverse of [`Dataset::to_column_matrix`]).
    ///
    /// # Panics
    ///
    /// Panics when `x.cols() != labels.len()`.
    pub fn from_column_matrix(x: &Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(x.cols(), labels.len(), "column count != label count");
        let records: Vec<Vec<f64>> = (0..x.cols()).map(|c| x.column(c)).collect();
        Self::with_num_classes(records, labels, num_classes)
    }

    /// Returns the sub-dataset selected by `indices` (class count is
    /// preserved from `self`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let records: Vec<Vec<f64>> = indices.iter().map(|&i| self.records[i].clone()).collect();
        let labels: Vec<usize> = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset::with_num_classes(records, labels, self.num_classes)
    }

    /// Concatenates several datasets (all must agree on `dim`; the class
    /// count is the maximum of the parts').
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or dimensions disagree.
    pub fn concat(parts: &[Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let dim = parts[0].dim;
        assert!(parts.iter().all(|p| p.dim == dim), "dim mismatch in concat");
        let num_classes = parts.iter().map(|p| p.num_classes).max().unwrap_or(1);
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for p in parts {
            records.extend(p.records.iter().cloned());
            labels.extend(p.labels.iter().copied());
        }
        Dataset::with_num_classes(records, labels, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]],
            vec![0, 1, 0],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.record(1), &[1.0, 0.0]);
        assert_eq!(d.label(1), 1);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn column_matrix_roundtrip() {
        let d = toy();
        let x = d.to_column_matrix();
        assert_eq!(x.shape(), (2, 3));
        assert_eq!(x.column(0), vec![0.0, 1.0]);
        let back = Dataset::from_column_matrix(&x, d.labels().to_vec(), d.num_classes());
        assert_eq!(back, d);
    }

    #[test]
    fn subset_selects() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.record(0), &[0.5, 0.5]);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.num_classes(), 2, "class count preserved");
    }

    #[test]
    fn concat_rebuilds() {
        let d = toy();
        let a = d.subset(&[0]);
        let b = d.subset(&[1, 2]);
        let c = Dataset::concat(&[a, b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.num_classes(), 2);
    }

    #[test]
    fn with_num_classes_override() {
        let d = Dataset::with_num_classes(vec![vec![1.0]], vec![0], 5);
        assert_eq!(d.num_classes(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_records_panic() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "label exceeds")]
    fn label_out_of_range_panics() {
        let _ = Dataset::with_num_classes(vec![vec![1.0]], vec![3], 2);
    }

    #[test]
    fn iter_pairs() {
        let d = toy();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2], (&[0.5, 0.5][..], 0));
    }
}
