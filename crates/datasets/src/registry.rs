//! The twelve named datasets of the paper's evaluation.
//!
//! Figures 5 and 6 of the brief run over `Breast_w, Credit_a, Credit_g,
//! Diabetes, Ecoli, Hepatitis, Heart, Ionosphere, Iris, Shuttle, Votes,
//! Wine`. Each entry here records the published shape of the UCI original
//! (records, features, classes, class balance) and a separability setting
//! calibrated so the synthetic stand-in's clean accuracy is in the
//! neighborhood reported for that dataset in the classifier literature.
//!
//! Shuttle's 58 000 records are subsampled to 2 000 (documented substitution:
//! the experiments are ratio-of-accuracy measurements, and 2 000 records keep
//! the whole twelve-dataset sweep laptop-scale).

use crate::dataset::Dataset;
use crate::generator::{generate, MixtureSpec};

/// The twelve UCI datasets used in the paper's Figures 3–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciDataset {
    /// Wisconsin breast cancer: 699 × 9, 2 classes, highly separable.
    BreastW,
    /// Australian credit approval: 690 × 14, 2 classes.
    CreditA,
    /// German credit: 1000 × 24, 2 classes, hard.
    CreditG,
    /// Pima Indians diabetes: 768 × 8, 2 classes, hard.
    Diabetes,
    /// Ecoli protein localization: 336 × 7, 8 classes, skewed.
    Ecoli,
    /// Hepatitis: 155 × 19, 2 classes, skewed.
    Hepatitis,
    /// Statlog heart: 270 × 13, 2 classes.
    Heart,
    /// Ionosphere radar: 351 × 34, 2 classes, separable.
    Ionosphere,
    /// Iris: 150 × 4, 3 classes, very separable.
    Iris,
    /// Statlog shuttle (subsampled to 2000): 9 features, 7 skewed classes.
    Shuttle,
    /// Congressional votes: 435 × 16 binary features, 2 classes.
    Votes,
    /// Wine cultivars: 178 × 13, 3 classes, very separable.
    Wine,
}

impl UciDataset {
    /// All twelve datasets in the order the paper's figures list them.
    pub const ALL: [UciDataset; 12] = [
        UciDataset::BreastW,
        UciDataset::CreditA,
        UciDataset::CreditG,
        UciDataset::Diabetes,
        UciDataset::Ecoli,
        UciDataset::Hepatitis,
        UciDataset::Heart,
        UciDataset::Ionosphere,
        UciDataset::Iris,
        UciDataset::Shuttle,
        UciDataset::Votes,
        UciDataset::Wine,
    ];

    /// The three datasets the paper singles out for Figures 3–4.
    pub const FIGURE3: [UciDataset; 3] =
        [UciDataset::Diabetes, UciDataset::Shuttle, UciDataset::Votes];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            UciDataset::BreastW => "Breast_w",
            UciDataset::CreditA => "Credit_a",
            UciDataset::CreditG => "Credit_g",
            UciDataset::Diabetes => "Diabetes",
            UciDataset::Ecoli => "Ecoli",
            UciDataset::Hepatitis => "Hepatitis",
            UciDataset::Heart => "Heart",
            UciDataset::Ionosphere => "Ionosphere",
            UciDataset::Iris => "Iris",
            UciDataset::Shuttle => "Shuttle",
            UciDataset::Votes => "Votes",
            UciDataset::Wine => "Wine",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<UciDataset> {
        Self::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// The mixture spec that generates this dataset's synthetic stand-in.
    pub fn spec(self) -> MixtureSpec {
        // (records, dim, weights, separation, binary)
        let (num_records, dim, class_weights, separation, binary_features) = match self {
            // 458 benign / 241 malignant; KNN accuracy ~96-97%.
            UciDataset::BreastW => (699, 9, vec![0.655, 0.345], 3.2, 0),
            // 307 + / 383 -; accuracy ~85%.
            UciDataset::CreditA => (690, 14, vec![0.445, 0.555], 2.1, 0),
            // 700 good / 300 bad; accuracy ~74%.
            UciDataset::CreditG => (1000, 24, vec![0.7, 0.3], 1.3, 0),
            // 500 neg / 268 pos; accuracy ~75%.
            UciDataset::Diabetes => (768, 8, vec![0.651, 0.349], 1.35, 0),
            // 8 localization sites, heavy skew; accuracy ~85%.
            UciDataset::Ecoli => (
                336,
                7,
                vec![0.426, 0.229, 0.155, 0.104, 0.059, 0.015, 0.006, 0.006],
                2.4,
                0,
            ),
            // 32 die / 123 live; accuracy ~83%.
            UciDataset::Hepatitis => (155, 19, vec![0.206, 0.794], 1.9, 0),
            // 150 absent / 120 present; accuracy ~82%.
            UciDataset::Heart => (270, 13, vec![0.556, 0.444], 1.85, 0),
            // 225 good / 126 bad; accuracy ~90%.
            UciDataset::Ionosphere => (351, 34, vec![0.641, 0.359], 2.5, 0),
            // 3 balanced cultivars; accuracy ~96%.
            UciDataset::Iris => (150, 4, vec![1.0, 1.0, 1.0], 3.1, 0),
            // 7 classes, class 1 dominates; accuracy ~99%. Subsampled.
            UciDataset::Shuttle => (
                2000,
                9,
                vec![0.786, 0.0008, 0.003, 0.155, 0.054, 0.0007, 0.0002],
                4.0,
                0,
            ),
            // 267 dem / 168 rep, 16 yes/no votes; accuracy ~95%.
            UciDataset::Votes => (435, 16, vec![0.614, 0.386], 2.9, 16),
            // 59/71/48 cultivars; accuracy ~97%.
            UciDataset::Wine => (178, 13, vec![0.331, 0.399, 0.270], 3.3, 0),
        };
        MixtureSpec {
            dim,
            num_records,
            class_weights,
            separation,
            spread: 0.12,
            binary_features,
        }
    }

    /// Generates the synthetic stand-in, deterministically in `seed`.
    ///
    /// The dataset identity is folded into the seed so that, e.g., Iris and
    /// Wine generated with the same user seed still differ.
    pub fn generate(self, seed: u64) -> Dataset {
        let tag = Self::ALL
            .iter()
            .position(|&d| d == self)
            .expect("dataset in ALL") as u64;
        generate(
            &self.spec(),
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (tag << 32) ^ tag,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generate_with_published_shapes() {
        for ds in UciDataset::ALL {
            let spec = ds.spec();
            let data = ds.generate(1);
            assert_eq!(data.len(), spec.num_records, "{}", ds.name());
            assert_eq!(data.dim(), spec.dim, "{}", ds.name());
            assert_eq!(data.num_classes(), spec.num_classes(), "{}", ds.name());
        }
    }

    #[test]
    fn shapes_match_uci_catalog() {
        assert_eq!(UciDataset::Iris.spec().dim, 4);
        assert_eq!(UciDataset::Iris.spec().num_records, 150);
        assert_eq!(UciDataset::Ionosphere.spec().dim, 34);
        assert_eq!(UciDataset::Ecoli.spec().num_classes(), 8);
        assert_eq!(UciDataset::Shuttle.spec().num_classes(), 7);
        assert_eq!(UciDataset::Votes.spec().binary_features, 16);
    }

    #[test]
    fn names_roundtrip() {
        for ds in UciDataset::ALL {
            assert_eq!(UciDataset::from_name(ds.name()), Some(ds));
            assert_eq!(UciDataset::from_name(&ds.name().to_lowercase()), Some(ds));
        }
        assert_eq!(UciDataset::from_name("nope"), None);
    }

    #[test]
    fn datasets_differ_under_same_seed() {
        let a = UciDataset::Iris.generate(7);
        let b = UciDataset::Wine.generate(7);
        assert_ne!(a.dim(), 0);
        assert!(a.dim() != b.dim() || a.records()[0] != b.records()[0]);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(UciDataset::Heart.generate(3), UciDataset::Heart.generate(3));
        assert_ne!(UciDataset::Heart.generate(3), UciDataset::Heart.generate(4));
    }

    #[test]
    fn votes_is_all_binary() {
        let v = UciDataset::Votes.generate(2);
        for (rec, _) in v.iter() {
            assert!(rec.iter().all(|&x| x == 0.0 || x == 1.0));
        }
    }

    #[test]
    fn figure3_subset_is_subset_of_all() {
        for d in UciDataset::FIGURE3 {
            assert!(UciDataset::ALL.contains(&d));
        }
    }
}
