//! Gaussian-mixture dataset generation engine.
//!
//! Each class is a (possibly anisotropic) Gaussian cluster: a random unit
//! direction places the class mean around the center of the unit box, a
//! randomly rotated diagonal covariance shapes the cluster, and a
//! `separation` knob controls how far apart the class means sit relative to
//! the cluster spread — which is what ultimately calibrates the clean
//! classifier accuracy of the synthetic stand-in to its UCI counterpart.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use sap_linalg::orthogonal::random_orthogonal;
use sap_linalg::{randn, randn_vec, vecops};

/// Specification of a Gaussian-mixture dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureSpec {
    /// Feature dimensionality `d`.
    pub dim: usize,
    /// Total number of records `N`.
    pub num_records: usize,
    /// Relative class weights (need not sum to 1; normalized internally).
    pub class_weights: Vec<f64>,
    /// Distance between class means, in units of `spread`. Larger values
    /// mean more separable classes and higher clean accuracy.
    pub separation: f64,
    /// Standard-deviation scale of each class cluster.
    pub spread: f64,
    /// The first `binary_features` coordinates are thresholded to `{0, 1}`
    /// (used to mimic the all-categorical Votes dataset).
    pub binary_features: usize,
}

/// Every class receives at least this many records regardless of its weight,
/// so stratified splitting and per-class evaluation stay well-defined even
/// for the heavily skewed Shuttle/Ecoli class priors.
pub const MIN_PER_CLASS: usize = 4;

impl MixtureSpec {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions/records/classes, non-positive weights, or
    /// `binary_features > dim`.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(!self.class_weights.is_empty(), "need at least one class");
        assert!(
            self.class_weights.iter().all(|&w| w > 0.0),
            "class weights must be positive"
        );
        assert!(self.binary_features <= self.dim, "binary_features > dim");
        assert!(
            self.num_records >= MIN_PER_CLASS * self.class_weights.len(),
            "num_records too small for {} classes",
            self.class_weights.len()
        );
        assert!(self.spread > 0.0, "spread must be positive");
        assert!(self.separation >= 0.0, "separation must be non-negative");
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_weights.len()
    }
}

/// Allocates `n` records to classes proportionally to `weights` using the
/// largest-remainder method, with every class clamped to at least
/// `min_per_class` records.
pub fn allocate_counts(n: usize, weights: &[f64], min_per_class: usize) -> Vec<usize> {
    assert!(!weights.is_empty());
    assert!(n >= min_per_class * weights.len());
    let total: f64 = weights.iter().sum();
    let ideal: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
    let mut counts: Vec<usize> = ideal
        .iter()
        .map(|&x| (x.floor() as usize).max(min_per_class))
        .collect();
    // Distribute the remainder (or claw back the clamp surplus) by largest
    // fractional part, never dipping below the clamp.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.total_cmp(&fa)
    });
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned < n {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    // Claw back from the largest classes when the clamp overshot.
    while assigned > n {
        let max_c = (0..counts.len())
            .max_by_key(|&c| counts[c])
            .expect("non-empty");
        assert!(
            counts[max_c] > min_per_class,
            "cannot satisfy min_per_class with n={n}"
        );
        counts[max_c] -= 1;
        assigned -= 1;
    }
    counts
}

/// Generates a dataset from the spec, deterministically in `seed`.
///
/// # Panics
///
/// Panics when the spec fails [`MixtureSpec::validate`].
pub fn generate(spec: &MixtureSpec, seed: u64) -> Dataset {
    spec.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let k = spec.num_classes();
    let d = spec.dim;
    let counts = allocate_counts(spec.num_records, &spec.class_weights, MIN_PER_CLASS);

    // Class means: center of the box plus `separation · spread` along a
    // random unit direction per class. Directions are drawn best-of-8 by
    // maximum minimum angle to the means already placed, so two classes
    // never collapse onto nearly the same direction by bad luck — the
    // separability (and therefore clean classifier accuracy) of the
    // synthetic stand-ins stays calibrated across RNG streams.
    let mut means: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut dirs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(f64, Vec<f64>)> = None;
        for _ in 0..8 {
            let mut u = randn_vec(d, &mut rng);
            vecops::normalize_in_place(&mut u);
            let min_dist = dirs
                .iter()
                .map(|v| vecops::dist2(v, &u))
                .fold(f64::INFINITY, f64::min);
            if best.as_ref().is_none_or(|(b, _)| min_dist > *b) {
                best = Some((min_dist, u));
            }
        }
        let u = best.expect("eight candidates drawn").1;
        let mean: Vec<f64> = u
            .iter()
            .map(|&x| 0.5 + spec.separation * spec.spread * x)
            .collect();
        dirs.push(u);
        means.push(mean);
    }

    // Class shapes: randomly rotated diagonal covariances with eigen-stds
    // uniform in [0.6, 1.4] · spread.
    let mut shapes = Vec::with_capacity(k);
    for _ in 0..k {
        let q = random_orthogonal(d, &mut rng);
        let stds: Vec<f64> = (0..d)
            .map(|_| spec.spread * rng.random_range(0.6..1.4))
            .collect();
        shapes.push((q, stds));
    }

    let mut records = Vec::with_capacity(spec.num_records);
    let mut labels = Vec::with_capacity(spec.num_records);
    for (class, &count) in counts.iter().enumerate() {
        let (q, stds) = &shapes[class];
        for _ in 0..count {
            let z: Vec<f64> = stds.iter().map(|&s| s * randn(&mut rng)).collect();
            let rotated = q.matvec(&z).expect("dim matches");
            let mut x = vecops::add(&means[class], &rotated);
            for v in x.iter_mut().take(spec.binary_features) {
                *v = if *v > 0.5 { 1.0 } else { 0.0 };
            }
            records.push(x);
            labels.push(class);
        }
    }

    // Shuffle so record order carries no class signal.
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut rng);
    let records: Vec<Vec<f64>> = idx.iter().map(|&i| records[i].clone()).collect();
    let labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();

    Dataset::with_num_classes(records, labels, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2() -> MixtureSpec {
        MixtureSpec {
            dim: 3,
            num_records: 100,
            class_weights: vec![0.7, 0.3],
            separation: 3.0,
            spread: 0.1,
            binary_features: 0,
        }
    }

    #[test]
    fn generate_shape_and_determinism() {
        let s = spec2();
        let a = generate(&s, 9);
        let b = generate(&s, 9);
        assert_eq!(a, b, "same seed, same data");
        assert_eq!(a.len(), 100);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.num_classes(), 2);
        let c = generate(&s, 10);
        assert_ne!(a, c, "different seed, different data");
    }

    #[test]
    fn class_weights_respected() {
        let a = generate(&spec2(), 1);
        let counts = a.class_counts();
        assert!((counts[0] as f64 - 70.0).abs() <= 1.0, "counts {counts:?}");
        assert!((counts[1] as f64 - 30.0).abs() <= 1.0);
    }

    #[test]
    fn allocate_counts_exact_and_clamped() {
        let c = allocate_counts(100, &[0.7, 0.3], 4);
        assert_eq!(c.iter().sum::<usize>(), 100);
        // Extreme skew: tiny class still gets the clamp.
        let c = allocate_counts(100, &[0.999, 0.001], 4);
        assert_eq!(c.iter().sum::<usize>(), 100);
        assert!(c[1] >= 4);
        // Many classes with skewed weights, all clamped.
        let c = allocate_counts(50, &[0.9, 0.02, 0.02, 0.02, 0.02, 0.02], 4);
        assert_eq!(c.iter().sum::<usize>(), 50);
        assert!(c.iter().all(|&x| x >= 4));
    }

    #[test]
    fn separated_classes_are_far_apart() {
        let mut s = spec2();
        s.separation = 6.0;
        let a = generate(&s, 3);
        // Compute class centroids and check they are further apart than the
        // typical spread.
        let mut cents = vec![vec![0.0; 3]; 2];
        let counts = a.class_counts();
        for (rec, lab) in a.iter() {
            for (j, &v) in rec.iter().enumerate() {
                cents[lab][j] += v;
            }
        }
        for (c, cent) in cents.iter_mut().enumerate() {
            for v in cent.iter_mut() {
                *v /= counts[c] as f64;
            }
        }
        let dist = vecops::dist2(&cents[0], &cents[1]);
        assert!(dist > 3.0 * s.spread, "centroid distance {dist} too small");
    }

    #[test]
    fn binary_features_thresholded() {
        let s = MixtureSpec {
            dim: 5,
            num_records: 60,
            class_weights: vec![0.5, 0.5],
            separation: 2.0,
            spread: 0.3,
            binary_features: 3,
        };
        let a = generate(&s, 5);
        for (rec, _) in a.iter() {
            for &v in rec.iter().take(3) {
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }

    #[test]
    fn shuffled_labels_not_sorted() {
        let a = generate(&spec2(), 2);
        let sorted = a.labels().windows(2).all(|w| w[0] <= w[1]);
        assert!(!sorted, "labels should be shuffled");
    }

    #[test]
    #[should_panic(expected = "binary_features > dim")]
    fn invalid_spec_panics() {
        let mut s = spec2();
        s.binary_features = 10;
        let _ = generate(&s, 0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_few_records_panics() {
        let mut s = spec2();
        s.num_records = 5;
        s.validate();
    }
}
