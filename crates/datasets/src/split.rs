//! Train/test and k-fold splitting.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test split of a dataset.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

/// Stratified train/test split: each class is split independently with the
/// same ratio, so both sides keep the class mix.
///
/// # Panics
///
/// Panics unless `0 < train_fraction < 1`, or if some class has fewer than
/// two records (each side must receive at least one record per class).
pub fn stratified_split(data: &Dataset, train_fraction: f64, seed: u64) -> TrainTest {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..data.num_classes() {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        assert!(
            members.len() >= 2,
            "class {class} has fewer than 2 records; cannot stratify"
        );
        members.shuffle(&mut rng);
        let n_train =
            ((members.len() as f64 * train_fraction).round() as usize).clamp(1, members.len() - 1);
        train_idx.extend_from_slice(&members[..n_train]);
        test_idx.extend_from_slice(&members[n_train..]);
    }
    train_idx.shuffle(&mut rng);
    test_idx.shuffle(&mut rng);
    TrainTest {
        train: data.subset(&train_idx),
        test: data.subset(&test_idx),
    }
}

/// Yields `k` cross-validation folds as `(train, test)` pairs. Records are
/// shuffled once, then fold `i` tests on slice `i`.
///
/// # Panics
///
/// Panics when `k < 2` or `k > data.len()`.
pub fn k_fold(data: &Dataset, k: usize, seed: u64) -> Vec<TrainTest> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= data.len(), "more folds than records");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut rng);

    let base = data.len() / k;
    let extra = data.len() % k;
    let mut folds = Vec::with_capacity(k);
    let mut offset = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test_idx: Vec<usize> = order[offset..offset + size].to_vec();
        let train_idx: Vec<usize> = order[..offset]
            .iter()
            .chain(&order[offset + size..])
            .copied()
            .collect();
        folds.push(TrainTest {
            train: data.subset(&train_idx),
            test: data.subset(&test_idx),
        });
        offset += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::UciDataset;

    #[test]
    fn stratified_preserves_class_mix() {
        let data = UciDataset::Iris.generate(1);
        let tt = stratified_split(&data, 0.7, 3);
        assert_eq!(tt.train.len() + tt.test.len(), data.len());
        // Iris is balanced; both sides should be balanced within 10%.
        let tc = tt.train.class_counts();
        for &c in &tc {
            assert!((c as f64 - tt.train.len() as f64 / 3.0).abs() <= 2.0);
        }
        // Every class appears in the test set.
        assert!(tt.test.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn stratified_is_deterministic() {
        let data = UciDataset::Heart.generate(2);
        let a = stratified_split(&data, 0.8, 7);
        let b = stratified_split(&data, 0.8, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn skewed_classes_survive_split() {
        // Shuttle has classes clamped to 4 records; both sides get >= 1.
        let data = UciDataset::Shuttle.generate(3);
        let tt = stratified_split(&data, 0.75, 1);
        assert!(tt.train.class_counts().iter().all(|&c| c > 0));
        assert!(tt.test.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn k_fold_covers_everything_once() {
        let data = UciDataset::Wine.generate(4);
        let folds = k_fold(&data, 5, 2);
        assert_eq!(folds.len(), 5);
        let total_test: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total_test, data.len());
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), data.len());
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn bad_fraction_panics() {
        let data = UciDataset::Iris.generate(5);
        let _ = stratified_split(&data, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn one_fold_panics() {
        let data = UciDataset::Iris.generate(6);
        let _ = k_fold(&data, 1, 0);
    }
}
