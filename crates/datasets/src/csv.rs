//! CSV import/export.
//!
//! The synthetic registry stands in for the UCI datasets in this offline
//! reproduction, but a downstream user who *has* the real files (or any
//! labeled numeric CSV) should be able to run the protocol on them. Format:
//! one record per line, comma-separated feature values, the **last column
//! is the integer class label**. An optional header line is skipped when it
//! does not parse as numbers. This covers the standard distribution format
//! of the paper's twelve datasets after categorical encoding.

use crate::dataset::Dataset;
use std::fmt::Write as _;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input contained no data rows.
    Empty,
    /// A row had a different number of columns than the first data row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
    /// A value failed to parse as a number.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A label was negative or non-integer.
    BadLabel {
        /// 1-based line number.
        line: usize,
    },
    /// Rows have fewer than two columns (need ≥1 feature + label).
    TooFewColumns,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::RaggedRow { line } => write!(f, "line {line}: inconsistent column count"),
            CsvError::BadValue { line, token } => {
                write!(f, "line {line}: cannot parse {token:?} as a number")
            }
            CsvError::BadLabel { line } => {
                write!(f, "line {line}: label must be a non-negative integer")
            }
            CsvError::TooFewColumns => write!(f, "need at least one feature column plus a label"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a labeled CSV (last column = integer label). A first line that
/// fails numeric parsing entirely is treated as a header and skipped.
///
/// # Errors
///
/// Returns [`CsvError`] on empty, ragged, or non-numeric input.
pub fn from_csv_str(input: &str) -> Result<Dataset, CsvError> {
    let mut records = Vec::new();
    let mut labels = Vec::new();
    let mut width: Option<usize> = None;

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split(',').map(str::trim).collect();
        if tokens.len() < 2 {
            return Err(CsvError::TooFewColumns);
        }
        let parsed: Result<Vec<f64>, usize> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| t.parse::<f64>().map_err(|_| i))
            .collect();
        let values = match parsed {
            Ok(v) => v,
            Err(_) if records.is_empty() && width.is_none() => continue, // header
            Err(col) => {
                return Err(CsvError::BadValue {
                    line: line_no,
                    token: tokens[col].to_string(),
                })
            }
        };
        if let Some(w) = width {
            if values.len() != w {
                return Err(CsvError::RaggedRow { line: line_no });
            }
        } else {
            width = Some(values.len());
        }
        let label_value = values[values.len() - 1];
        if label_value < 0.0 || label_value.fract() != 0.0 || label_value > u32::MAX as f64 {
            return Err(CsvError::BadLabel { line: line_no });
        }
        records.push(values[..values.len() - 1].to_vec());
        labels.push(label_value as usize);
    }

    if records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(Dataset::new(records, labels))
}

/// Serializes a dataset to CSV with a generated header
/// (`f0,…,f{d−1},label`); the inverse of [`from_csv_str`].
pub fn to_csv_string(data: &Dataset) -> String {
    let mut out = String::new();
    for j in 0..data.dim() {
        let _ = write!(out, "f{j},");
    }
    out.push_str("label\n");
    for (rec, lab) in data.iter() {
        for v in rec {
            let _ = write!(out, "{v},");
        }
        let _ = writeln!(out, "{lab}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::UciDataset;

    #[test]
    fn roundtrip_preserves_dataset() {
        let data = UciDataset::Iris.generate(1);
        let csv = to_csv_string(&data);
        let back = from_csv_str(&csv).unwrap();
        assert_eq!(back.len(), data.len());
        assert_eq!(back.dim(), data.dim());
        assert_eq!(back.labels(), data.labels());
        for i in 0..data.len() {
            for (a, b) in back.record(i).iter().zip(data.record(i)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parses_headerless_and_headered() {
        let headerless = "1.0,2.0,0\n3.0,4.0,1\n";
        let d = from_csv_str(headerless).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
        let headered = "sepal,petal,label\n1.0,2.0,0\n3.0,4.0,1\n";
        let d2 = from_csv_str(headered).unwrap();
        assert_eq!(d2.records(), d.records());
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let input = "# UCI-style export\n\n1.0,0\n\n2.0,1\n";
        let d = from_csv_str(input).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 1);
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_csv_str("").unwrap_err(), CsvError::Empty);
        assert_eq!(from_csv_str("h1,h2\n").unwrap_err(), CsvError::Empty);
        assert_eq!(
            from_csv_str("1.0,0\n2.0,3.0,1\n").unwrap_err(),
            CsvError::RaggedRow { line: 2 }
        );
        assert!(matches!(
            from_csv_str("1.0,0\nx,1\n").unwrap_err(),
            CsvError::BadValue { line: 2, .. }
        ));
        assert_eq!(
            from_csv_str("1.0,-1\n").unwrap_err(),
            CsvError::BadLabel { line: 1 }
        );
        assert_eq!(
            from_csv_str("1.0,0.5\n").unwrap_err(),
            CsvError::BadLabel { line: 1 }
        );
        assert_eq!(from_csv_str("5\n").unwrap_err(), CsvError::TooFewColumns);
    }

    #[test]
    fn display_messages() {
        assert!(CsvError::RaggedRow { line: 3 }
            .to_string()
            .contains("line 3"));
        assert!(CsvError::BadValue {
            line: 1,
            token: "x".into()
        }
        .to_string()
        .contains('x'));
    }
}
