//! Min–max normalization.
//!
//! The paper defines the perturbation on "the *normalized* original dataset";
//! both the translation component (`t ~ U[-1,1]`) and the privacy metric's
//! column normalization assume features live in a common `[0, 1]` range.
//! The parameters are captured in a [`Normalizer`] so the same affine map can
//! be applied to held-out test records.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A fitted per-column min–max normalizer mapping each feature to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Fits column minima/maxima on a dataset.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.dim();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for (rec, _) in data.iter() {
            for (j, &v) in rec.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Normalizer { mins, maxs }
    }

    /// Feature dimensionality this normalizer was fitted on.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Normalizes one record (constant columns map to `0.5`).
    ///
    /// # Panics
    ///
    /// Panics if `record.len() != self.dim()`.
    pub fn transform_record(&self, record: &[f64]) -> Vec<f64> {
        assert_eq!(record.len(), self.dim(), "record dim mismatch");
        record
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let range = self.maxs[j] - self.mins[j];
                if range > 0.0 {
                    (v - self.mins[j]) / range
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Normalizes a whole dataset.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let records: Vec<Vec<f64>> = data
            .records()
            .iter()
            .map(|r| self.transform_record(r))
            .collect();
        Dataset::with_num_classes(records, data.labels().to_vec(), data.num_classes())
    }

    /// Inverts the normalization of one record.
    ///
    /// # Panics
    ///
    /// Panics if `record.len() != self.dim()`.
    pub fn inverse_record(&self, record: &[f64]) -> Vec<f64> {
        assert_eq!(record.len(), self.dim(), "record dim mismatch");
        record
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let range = self.maxs[j] - self.mins[j];
                if range > 0.0 {
                    v * range + self.mins[j]
                } else {
                    self.mins[j]
                }
            })
            .collect()
    }
}

/// Fits on `data` and transforms it in one call.
pub fn min_max_normalize(data: &Dataset) -> (Dataset, Normalizer) {
    let norm = Normalizer::fit(data);
    (norm.transform(data), norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]],
            vec![0, 1, 0],
        )
    }

    #[test]
    fn normalizes_to_unit_range() {
        let (norm, _) = min_max_normalize(&toy());
        for (rec, _) in norm.iter() {
            for &v in rec {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(norm.record(0), &[0.0, 0.0]);
        assert_eq!(norm.record(2), &[1.0, 1.0]);
        assert_eq!(norm.record(1), &[0.5, 0.5]);
    }

    #[test]
    fn constant_column_maps_to_half() {
        let data = Dataset::new(vec![vec![3.0, 1.0], vec![3.0, 2.0]], vec![0, 1]);
        let (norm, _) = min_max_normalize(&data);
        assert_eq!(norm.record(0)[0], 0.5);
        assert_eq!(norm.record(1)[0], 0.5);
    }

    #[test]
    fn transform_applies_train_params_to_test() {
        let n = Normalizer::fit(&toy());
        // A point outside the fitted range extrapolates linearly.
        let t = n.transform_record(&[20.0, 40.0]);
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let n = Normalizer::fit(&toy());
        let rec = vec![7.0, 13.0];
        let back = n.inverse_record(&n.transform_record(&rec));
        for (a, b) in rec.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_preserved() {
        let (norm, _) = min_max_normalize(&toy());
        assert_eq!(norm.labels(), toy().labels());
        assert_eq!(norm.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_panics() {
        let n = Normalizer::fit(&toy());
        let _ = n.transform_record(&[1.0]);
    }
}
