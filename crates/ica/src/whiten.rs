//! Whitening: the zero-mean, unit-covariance transform that precedes ICA.

use crate::center_columns;
use sap_linalg::eigen::SymmetricEigen;
use sap_linalg::{LinalgError, Matrix, Result};

/// A fitted whitening transform `z = W·(x − μ)` with `Cov(z) = I`.
///
/// `W = Λ^{-1/2}·Eᵀ` from the eigendecomposition `Cov(x) = E·Λ·Eᵀ`;
/// components with eigenvalues below `eps` are dropped (rank-deficient
/// data whitens into its effective subspace).
#[derive(Debug, Clone)]
pub struct Whitener {
    mean: Vec<f64>,
    /// `k × d` whitening matrix.
    w: Matrix,
    /// `d × k` de-whitening matrix (pseudo-inverse of `w`).
    dewhiten: Matrix,
}

impl Whitener {
    /// Fits a whitener on `d × N` data, keeping eigendirections with
    /// eigenvalue above `eps`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimension`] with fewer than two records or if
    ///   every eigenvalue falls below `eps` (constant data).
    /// * Propagates eigendecomposition failures.
    pub fn fit(x: &Matrix, eps: f64) -> Result<Self> {
        if x.cols() < 2 {
            return Err(LinalgError::InvalidDimension {
                reason: "whitening needs at least two records",
            });
        }
        let (_, mean) = center_columns(x);
        let cov = x.column_covariance();
        let eig = SymmetricEigen::new(&cov)?;
        let kept: Vec<usize> = (0..eig.eigenvalues().len())
            .filter(|&i| eig.eigenvalues()[i] > eps)
            .collect();
        if kept.is_empty() {
            return Err(LinalgError::InvalidDimension {
                reason: "all variance below eps; cannot whiten constant data",
            });
        }
        let d = x.rows();
        let k = kept.len();
        let mut w = Matrix::zeros(k, d);
        let mut dewhiten = Matrix::zeros(d, k);
        for (row, &i) in kept.iter().enumerate() {
            let lam = eig.eigenvalues()[i];
            let e = eig.eigenvectors().column(i);
            let s = lam.sqrt();
            for c in 0..d {
                w[(row, c)] = e[c] / s;
                dewhiten[(c, row)] = e[c] * s;
            }
        }
        Ok(Whitener { mean, w, dewhiten })
    }

    /// Assembles a whitener from precomputed parts: the mean record, the
    /// `k × d` whitening matrix, and the `d × k` de-whitening matrix.
    ///
    /// This is the constructor behind [`crate::workspace::WhiteningWorkspace`]:
    /// when the eigendecomposition a whitener is built from is already
    /// known (e.g. shared across many rotations of the same base data),
    /// the caller supplies the matrices directly instead of paying
    /// [`Whitener::fit`]'s eigen solve again.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when the three parts disagree on
    /// `d` or `k`.
    pub fn from_parts(mean: Vec<f64>, w: Matrix, dewhiten: Matrix) -> Result<Self> {
        if w.cols() != mean.len() || dewhiten.rows() != mean.len() || dewhiten.cols() != w.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "whitener from parts",
                lhs: w.shape(),
                rhs: dewhiten.shape(),
            });
        }
        Ok(Whitener { mean, w, dewhiten })
    }

    /// The mean record subtracted before whitening.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Number of retained components `k`.
    pub fn rank(&self) -> usize {
        self.w.rows()
    }

    /// The `k × d` whitening matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.w
    }

    /// Whitens `d × N` data into `k × N` scores.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the dimensionality disagrees.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.rows() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "whiten transform",
                lhs: (self.mean.len(), 0),
                rhs: x.shape(),
            });
        }
        let centered = Matrix::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] - self.mean[r]);
        self.w.matmul(&centered)
    }

    /// Maps whitened `k × N` scores back to the original `d × N` space
    /// (adding the mean back).
    ///
    /// # Errors
    ///
    /// Returns a shape error when the score dimensionality disagrees.
    pub fn inverse(&self, z: &Matrix) -> Result<Matrix> {
        if z.rows() != self.rank() {
            return Err(LinalgError::ShapeMismatch {
                op: "dewhiten",
                lhs: (self.rank(), 0),
                rhs: z.shape(),
            });
        }
        let x = self.dewhiten.matmul(z)?;
        Ok(Matrix::from_fn(x.rows(), x.cols(), |r, c| {
            x[(r, c)] + self.mean[r]
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;

    #[test]
    fn whitened_data_has_identity_covariance() {
        let mut rng = StdRng::seed_from_u64(3);
        // Correlated data: x2 = x1 + noise.
        let base = randn_matrix(1, 2000, &mut rng);
        let noise = randn_matrix(1, 2000, &mut rng);
        let x = Matrix::from_fn(2, 2000, |r, c| {
            if r == 0 {
                base[(0, c)]
            } else {
                base[(0, c)] + 0.3 * noise[(0, c)]
            }
        });
        let w = Whitener::fit(&x, 1e-12).unwrap();
        let z = w.transform(&x).unwrap();
        let cov = z.column_covariance();
        assert!(cov.approx_eq(&Matrix::identity(2), 0.05), "{cov:?}");
    }

    #[test]
    fn inverse_roundtrips_full_rank() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = randn_matrix(4, 300, &mut rng);
        let w = Whitener::fit(&x, 1e-12).unwrap();
        let z = w.transform(&x).unwrap();
        let back = w.inverse(&z).unwrap();
        assert!(back.approx_eq(&x, 1e-8));
    }

    #[test]
    fn rank_deficient_drops_components() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = randn_matrix(2, 500, &mut rng);
        // Third coordinate is an exact linear combination.
        let x = Matrix::from_fn(3, 500, |r, c| match r {
            0 | 1 => base[(r, c)],
            _ => base[(0, c)] + base[(1, c)],
        });
        let w = Whitener::fit(&x, 1e-8).unwrap();
        assert_eq!(w.rank(), 2);
    }

    #[test]
    fn constant_data_rejected() {
        let x = Matrix::filled(2, 10, 1.0);
        assert!(Whitener::fit(&x, 1e-8).is_err());
    }

    #[test]
    fn shape_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = randn_matrix(3, 50, &mut rng);
        let w = Whitener::fit(&x, 1e-12).unwrap();
        assert!(w.transform(&Matrix::zeros(2, 5)).is_err());
        assert!(w.inverse(&Matrix::zeros(5, 5)).is_err());
    }
}
