//! FastICA with symmetric decorrelation.
//!
//! Hyvärinen's fixed-point iteration with the `tanh` (log-cosh) contrast:
//! given whitened data `Z` (`k × N`), find an orthogonal unmixing matrix `W`
//! such that the rows of `W·Z` are maximally non-Gaussian. Components are
//! recovered up to permutation and sign — which is exactly the ambiguity the
//! ICA attack on geometric perturbation has to live with, and why the attack
//! matches recovered components to known column statistics afterwards.

use crate::whiten::Whitener;
use sap_linalg::eigen::SymmetricEigen;
use sap_linalg::orthogonal::random_orthogonal;
use sap_linalg::{LinalgError, Matrix, Result};

/// Configuration for [`FastIca`].
#[derive(Debug, Clone)]
pub struct FastIcaConfig {
    /// Maximum fixed-point iterations.
    pub max_iter: usize,
    /// Convergence tolerance on `|1 − |diag(W·W_oldᵀ)||`.
    pub tol: f64,
    /// Eigenvalue cutoff handed to the internal [`Whitener`].
    pub whiten_eps: f64,
}

impl Default for FastIcaConfig {
    fn default() -> Self {
        FastIcaConfig {
            max_iter: 200,
            tol: 1e-6,
            whiten_eps: 1e-10,
        }
    }
}

/// A fitted FastICA model.
#[derive(Debug, Clone)]
pub struct FastIca {
    whitener: Whitener,
    /// Orthogonal unmixing matrix in whitened space (`k × k`).
    w: Matrix,
    iterations: usize,
}

impl FastIca {
    /// Runs FastICA on `d × N` data (records are columns).
    ///
    /// `rng` seeds the initial unmixing matrix; the fixed point is otherwise
    /// deterministic.
    ///
    /// # Errors
    ///
    /// * Propagates whitening failures (constant or too-small data).
    /// * [`LinalgError::NoConvergence`] if the fixed-point iteration does not
    ///   converge within `config.max_iter` sweeps.
    pub fn fit<R: rand::Rng + ?Sized>(
        x: &Matrix,
        config: &FastIcaConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let whitener = Whitener::fit(x, config.whiten_eps)?;
        Self::fit_with_whitener(whitener, x, config, rng)
    }

    /// Runs FastICA with a caller-supplied whitener instead of fitting one
    /// from `x` — the reuse hook for evaluating many rotations of the same
    /// base data, where the whitener comes from a shared
    /// [`crate::workspace::WhiteningWorkspace`] instead of a per-call
    /// eigen solve.
    ///
    /// # Errors
    ///
    /// * Shape errors when `whitener` and `x` disagree on dimensionality.
    /// * [`LinalgError::NoConvergence`] if the fixed-point iteration does
    ///   not converge within `config.max_iter` sweeps.
    pub fn fit_with_whitener<R: rand::Rng + ?Sized>(
        whitener: Whitener,
        x: &Matrix,
        config: &FastIcaConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let z = whitener.transform(x)?;
        let k = whitener.rank();
        let n = z.cols() as f64;

        let mut w = random_orthogonal(k, rng);
        let mut iterations = 0;
        loop {
            iterations += 1;
            if iterations > config.max_iter {
                return Err(LinalgError::NoConvergence {
                    algorithm: "fastica",
                    iterations: config.max_iter,
                });
            }
            let w_old = w.clone();

            // One fixed-point step for all components:
            //   W⁺ = E[g(W·z)·zᵀ] − diag(E[g'(W·z)])·W,  g = tanh.
            let wz = w.matmul(&z)?;
            let g = wz.map(f64::tanh);
            let g_prime_mean: Vec<f64> = (0..k)
                .map(|r| {
                    (0..g.cols())
                        .map(|c| 1.0 - g[(r, c)] * g[(r, c)])
                        .sum::<f64>()
                        / n
                })
                .collect();
            let ezg = g.mul_transpose(&z)?.scale(1.0 / n);
            let mut w_new = ezg;
            for r in 0..k {
                for c in 0..k {
                    w_new[(r, c)] -= g_prime_mean[r] * w[(r, c)];
                }
            }

            w = symmetric_decorrelate(&w_new)?;

            // Convergence: every updated row stays (anti-)parallel to the
            // previous one.
            let overlap = w.mul_transpose(&w_old)?;
            let worst = (0..k)
                .map(|i| (overlap[(i, i)].abs() - 1.0).abs())
                .fold(0.0_f64, f64::max);
            if worst < config.tol {
                break;
            }
        }

        Ok(FastIca {
            whitener,
            w,
            iterations,
        })
    }

    /// Number of fixed-point iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of recovered components.
    pub fn num_components(&self) -> usize {
        self.w.rows()
    }

    /// The orthogonal unmixing matrix in whitened space.
    pub fn unmixing(&self) -> &Matrix {
        &self.w
    }

    /// Recovers the source matrix (`k × N`) from `d × N` data.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the dimensionality disagrees with the fit.
    pub fn sources(&self, x: &Matrix) -> Result<Matrix> {
        let z = self.whitener.transform(x)?;
        self.w.matmul(&z)
    }

    /// The estimated mixing map from sources back to data space:
    /// a `d × k` matrix `A` with `x ≈ A·s + μ`.
    ///
    /// # Errors
    ///
    /// Propagates matrix-shape errors (internally consistent fits cannot
    /// fail).
    pub fn mixing(&self) -> Result<Matrix> {
        // dewhiten ∘ Wᵀ (W is orthogonal in whitened space).
        let wt = self.w.transpose();
        let id = Matrix::identity(self.w.rows());
        // dewhiten is embedded in Whitener::inverse; reconstruct A by mapping
        // the canonical basis of source space through inverse() minus mean.
        let cols = self.w.rows();
        let basis = wt.matmul(&id)?;
        let lifted = self.whitener.inverse(&basis)?;
        let mu = self.whitener.mean();
        Ok(Matrix::from_fn(lifted.rows(), cols, |r, c| {
            lifted[(r, c)] - mu[r]
        }))
    }
}

/// Symmetric decorrelation: `W ← (W·Wᵀ)^{-1/2}·W`, which re-orthogonalizes
/// all rows simultaneously (no deflation order bias).
fn symmetric_decorrelate(w: &Matrix) -> Result<Matrix> {
    let wwt = w.mul_transpose(w)?;
    let eig = SymmetricEigen::new(&wwt)?;
    let k = w.rows();
    let mut inv_sqrt = Matrix::zeros(k, k);
    for i in 0..k {
        let lam = eig.eigenvalues()[i];
        if lam <= 1e-12 {
            return Err(LinalgError::Singular);
        }
        let s = 1.0 / lam.sqrt();
        let e = eig.eigenvectors().column(i);
        for a in 0..k {
            for b in 0..k {
                inv_sqrt[(a, b)] += s * e[a] * e[b];
            }
        }
    }
    inv_sqrt.matmul(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sap_linalg::vecops;

    /// Builds d×N data from independent non-Gaussian sources mixed by a
    /// random rotation, then checks FastICA recovers the sources up to
    /// permutation/sign (correlation |r| > 0.95 with some true source).
    #[test]
    fn separates_uniform_sources() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 3000;
        let d = 3;
        let sources = Matrix::from_fn(d, n, |_, _| rng.random_range(-1.732..1.732));
        let mixing = random_orthogonal(d, &mut rng);
        let x = &mixing * &sources;

        let ica = FastIca::fit(&x, &FastIcaConfig::default(), &mut rng).unwrap();
        let rec = ica.sources(&x).unwrap();
        assert_eq!(rec.rows(), d);

        for true_idx in 0..d {
            let t = sources.row(true_idx);
            let best = (0..d)
                .map(|r| correlation(t, rec.row(r)).abs())
                .fold(0.0_f64, f64::max);
            assert!(best > 0.95, "source {true_idx} recovered with |r|={best}");
        }
    }

    #[test]
    fn unmixing_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(12);
        let sources = Matrix::from_fn(2, 1500, |_, _| rng.random_range(-1.0..1.0));
        let mixing = random_orthogonal(2, &mut rng);
        let x = &mixing * &sources;
        let ica = FastIca::fit(&x, &FastIcaConfig::default(), &mut rng).unwrap();
        assert!(ica.unmixing().is_orthogonal(1e-6));
        assert!(ica.iterations() >= 1);
    }

    #[test]
    fn sources_are_unit_variance() {
        let mut rng = StdRng::seed_from_u64(13);
        let sources = Matrix::from_fn(2, 2000, |_, _| rng.random_range(-2.0..2.0));
        let mixing = random_orthogonal(2, &mut rng);
        let x = &mixing * &sources;
        let ica = FastIca::fit(&x, &FastIcaConfig::default(), &mut rng).unwrap();
        let rec = ica.sources(&x).unwrap();
        for r in 0..2 {
            let v = vecops::variance(rec.row(r));
            assert!((v - 1.0).abs() < 0.1, "component {r} variance {v}");
        }
    }

    #[test]
    fn gaussian_sources_often_fail_or_arbitrary() {
        // ICA cannot separate Gaussian sources; it should either not converge
        // or produce *some* orthogonal W — but must never panic.
        let mut rng = StdRng::seed_from_u64(14);
        let x = sap_linalg::randn_matrix(2, 800, &mut rng);
        let cfg = FastIcaConfig {
            max_iter: 30,
            ..FastIcaConfig::default()
        };
        let _ = FastIca::fit(&x, &cfg, &mut rng);
    }

    #[test]
    fn mixing_times_sources_reconstructs() {
        let mut rng = StdRng::seed_from_u64(15);
        let sources = Matrix::from_fn(3, 1200, |_, _| rng.random_range(-1.0..1.0));
        let mixing = random_orthogonal(3, &mut rng);
        let x = &mixing * &sources;
        let ica = FastIca::fit(&x, &FastIcaConfig::default(), &mut rng).unwrap();
        let s = ica.sources(&x).unwrap();
        let a = ica.mixing().unwrap();
        let back = &a * &s;
        let mu = Matrix::from_fn(3, 1200, |r, _| ica_mean(&ica)[r]);
        let approx = &back + &mu;
        let err = sap_linalg::norms::rms_difference(&approx, &x);
        assert!(err < 0.05, "reconstruction rms {err}");
    }

    fn ica_mean(ica: &FastIca) -> Vec<f64> {
        // The whitener mean is not directly exposed through FastIca; recover
        // it by mapping the zero source through inverse path: A·0 + μ = μ.
        ica.whitener.mean().to_vec()
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let ma = vecops::mean(a);
        let mb = vecops::mean(b);
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let da: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>().sqrt();
        let db: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>().sqrt();
        if da == 0.0 || db == 0.0 {
            0.0
        } else {
            num / (da * db)
        }
    }
}
