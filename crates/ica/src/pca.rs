//! Principal component analysis.
//!
//! The PCA-based reconstruction attack exploits the fact that a rotation
//! preserves the covariance *spectrum*: the attacker eigendecomposes the
//! perturbed covariance, eigendecomposes (public or estimated) original
//! covariance statistics, and matches principal axes to estimate the
//! rotation. This module provides the shared machinery.

use sap_linalg::eigen::SymmetricEigen;
use sap_linalg::{LinalgError, Matrix, Result};

/// A fitted PCA model for `d × N` data (records are columns).
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on a `d × N` data matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimension`] when there are fewer than
    /// two records, and propagates eigendecomposition failures.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.cols() < 2 {
            return Err(LinalgError::InvalidDimension {
                reason: "PCA needs at least two records",
            });
        }
        let mean = x.row_means();
        let cov = x.column_covariance();
        let eig = SymmetricEigen::new(&cov)?;
        Ok(Pca {
            mean,
            components: eig.eigenvectors().clone(),
            eigenvalues: eig.eigenvalues().to_vec(),
        })
    }

    /// The mean record.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Principal axes as columns, ordered by decreasing explained variance.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Variances along the principal axes (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by the first `k` components.
    pub fn explained_variance_ratio(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }

    /// Projects `d × N` data onto the first `k` principal axes, producing a
    /// `k × N` score matrix.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x.rows()` differs from the fitted
    /// dimension or `k` exceeds it.
    pub fn transform(&self, x: &Matrix, k: usize) -> Result<Matrix> {
        if x.rows() != self.mean.len() || k > self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca transform",
                lhs: (self.mean.len(), k),
                rhs: x.shape(),
            });
        }
        let centered = Matrix::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] - self.mean[r]);
        let basis = self.components.submatrix(0..x.rows(), 0..k);
        basis.transpose().matmul(&centered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn;

    /// Data stretched along a known direction: PCA must find it.
    #[test]
    fn recovers_dominant_axis() {
        let mut rng = StdRng::seed_from_u64(5);
        let dir = [3.0_f64 / 5.0, 4.0 / 5.0];
        let cols: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let major = 5.0 * randn(&mut rng);
                let minor = 0.1 * randn(&mut rng);
                vec![
                    major * dir[0] - minor * dir[1],
                    major * dir[1] + minor * dir[0],
                ]
            })
            .collect();
        let x = Matrix::from_columns(&cols);
        let pca = Pca::fit(&x).unwrap();
        let pc1 = pca.components().column(0);
        let alignment = (pc1[0] * dir[0] + pc1[1] * dir[1]).abs();
        assert!(alignment > 0.999, "PC1 misaligned: {alignment}");
        assert!(pca.eigenvalues()[0] > 20.0);
        assert!(pca.eigenvalues()[1] < 0.1);
    }

    #[test]
    fn explained_variance_monotone() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = sap_linalg::randn_matrix(4, 100, &mut rng);
        let pca = Pca::fit(&x).unwrap();
        let mut prev = 0.0;
        for k in 0..=4 {
            let r = pca.explained_variance_ratio(k);
            assert!(r >= prev - 1e-12);
            prev = r;
        }
        assert!((pca.explained_variance_ratio(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = sap_linalg::randn_matrix(5, 40, &mut rng);
        let pca = Pca::fit(&x).unwrap();
        let scores = pca.transform(&x, 2).unwrap();
        assert_eq!(scores.shape(), (2, 40));
        assert!(pca.transform(&Matrix::zeros(3, 10), 2).is_err());
        assert!(pca.transform(&x, 9).is_err());
    }

    #[test]
    fn scores_are_decorrelated() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = sap_linalg::randn_matrix(3, 3000, &mut rng);
        let pca = Pca::fit(&x).unwrap();
        let scores = pca.transform(&x, 3).unwrap();
        let cov = scores.column_covariance();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(cov[(i, j)].abs() < 0.05, "off-diag {}", cov[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn single_record_rejected() {
        let x = Matrix::zeros(3, 1);
        assert!(Pca::fit(&x).is_err());
    }
}
