//! Shared whitening workspace: one eigendecomposition, many whiteners.
//!
//! The randomized perturbation optimizer in `sap-privacy` scores dozens of
//! candidate rotations of the **same** base sample `X` per run. An ICA
//! attack on candidate `i` whitens `Yᵢ = Rᵢ·X + Ψᵢ + Δᵢ`, and fitting a
//! [`Whitener`] from scratch costs a covariance pass plus a symmetric
//! eigen solve *per candidate* — even though every candidate shares the
//! one structure that makes the solve expensive:
//!
//! ```text
//! Cov(Yᵢ) = Rᵢ·(Cov(X) + σ²I)·Rᵢᵀ
//! ```
//!
//! Rotations conjugate the covariance, so if `Cov(X) = E·Λ·Eᵀ`, then
//! `Cov(Yᵢ)` has eigenvalues `Λ + σ²` (shared by all candidates) and
//! eigenvectors `Rᵢ·E` (a matrix product away). [`WhiteningWorkspace`]
//! decomposes `Cov(X)` **once** and then mints a candidate's whitener
//! from its rotation with [`WhiteningWorkspace::whitener_for_rotation`] —
//! no per-candidate eigen solve.
//!
//! Granting the evaluation-side attacker this exact whitening is
//! conservative: a real adversary would estimate `Cov(Yᵢ)` from the
//! released data with sampling error, so privacy guarantees measured
//! through the workspace are never optimistic.

use crate::whiten::Whitener;
use sap_linalg::eigen::SymmetricEigen;
use sap_linalg::{LinalgError, Matrix, Result};

/// A cached eigendecomposition of a base covariance, reusable across
/// every rotation of the underlying data. See the module docs.
#[derive(Debug, Clone)]
pub struct WhiteningWorkspace {
    /// `d × k` retained eigenvectors of the base covariance.
    eigvecs: Matrix,
    /// The matching eigenvalues (all above the construction cutoff).
    eigvals: Vec<f64>,
    /// Eigenvalue cutoff used at construction (applied again when noise
    /// variance is added, so near-null directions stay dropped).
    eps: f64,
}

impl WhiteningWorkspace {
    /// Decomposes a `d × d` base covariance, keeping eigendirections with
    /// eigenvalue above `eps`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidDimension`] when every eigenvalue falls
    ///   below `eps` (constant data cannot be whitened).
    /// * Propagates eigendecomposition failures.
    pub fn from_covariance(cov: &Matrix, eps: f64) -> Result<Self> {
        let eig = SymmetricEigen::new(cov)?;
        let kept: Vec<usize> = (0..eig.eigenvalues().len())
            .filter(|&i| eig.eigenvalues()[i] > eps)
            .collect();
        if kept.is_empty() {
            return Err(LinalgError::InvalidDimension {
                reason: "all variance below eps; cannot whiten constant data",
            });
        }
        let d = cov.rows();
        let eigvecs = Matrix::from_fn(d, kept.len(), |r, c| eig.eigenvectors()[(r, kept[c])]);
        let eigvals = kept.iter().map(|&i| eig.eigenvalues()[i]).collect();
        Ok(WhiteningWorkspace {
            eigvecs,
            eigvals,
            eps,
        })
    }

    /// Number of retained components `k`.
    pub fn rank(&self) -> usize {
        self.eigvals.len()
    }

    /// Builds the whitener of `Y = R·X + ψ + Δ` from the rotation `R`
    /// (`d × d`), the mean record of the realized `Y`, and the noise
    /// variance `σ²` of `Δ`: eigenvectors `R·E`, eigenvalues `Λ + σ²`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `rotation` or `mean_y` disagree with
    /// the workspace dimensionality.
    pub fn whitener_for_rotation(
        &self,
        rotation: &Matrix,
        mean_y: Vec<f64>,
        noise_var: f64,
    ) -> Result<Whitener> {
        let d = self.eigvecs.rows();
        if rotation.rows() != d || rotation.cols() != d || mean_y.len() != d {
            return Err(LinalgError::ShapeMismatch {
                op: "workspace whitener",
                lhs: (d, d),
                rhs: rotation.shape(),
            });
        }
        // Rotated eigenbasis, d × k.
        let re = rotation.matmul(&self.eigvecs)?;
        let k = self.rank();
        let mut w = Matrix::zeros(k, d);
        let mut dewhiten = Matrix::zeros(d, k);
        for j in 0..k {
            let lam = (self.eigvals[j] + noise_var).max(self.eps);
            let s = lam.sqrt();
            for c in 0..d {
                w[(j, c)] = re[(c, j)] / s;
                dewhiten[(c, j)] = re[(c, j)] * s;
            }
        }
        Whitener::from_parts(mean_y, w, dewhiten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::orthogonal::random_orthogonal;
    use sap_linalg::randn_matrix;

    /// Anisotropic correlated data: the workspace whitener of a rotated
    /// copy must produce (near-)identity covariance, like a from-scratch
    /// fit would.
    #[test]
    fn rotated_whitener_whitens() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = randn_matrix(1, 4000, &mut rng);
        let noise = randn_matrix(2, 4000, &mut rng);
        let x = Matrix::from_fn(3, 4000, |r, c| match r {
            0 => 2.0 * base[(0, c)],
            1 => base[(0, c)] + 0.5 * noise[(0, c)],
            _ => 0.3 * noise[(1, c)],
        });
        let r = random_orthogonal(3, &mut rng);
        let y = &r * &x;

        let ws = WhiteningWorkspace::from_covariance(&x.column_covariance(), 1e-10).unwrap();
        assert_eq!(ws.rank(), 3);
        let whitener = ws.whitener_for_rotation(&r, y.row_means(), 0.0).unwrap();
        let z = whitener.transform(&y).unwrap();
        let cov = z.column_covariance();
        assert!(
            cov.approx_eq(&Matrix::identity(3), 0.05),
            "whitened covariance {cov:?}"
        );
    }

    #[test]
    fn noise_variance_inflates_spectrum() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(2, 2000, &mut rng);
        let ws = WhiteningWorkspace::from_covariance(&x.column_covariance(), 1e-10).unwrap();
        let id = Matrix::identity(2);
        let a = ws.whitener_for_rotation(&id, x.row_means(), 0.0).unwrap();
        let b = ws.whitener_for_rotation(&id, x.row_means(), 0.5).unwrap();
        // Larger assumed variance shrinks the whitening scale.
        for j in 0..2 {
            for c in 0..2 {
                assert!(b.matrix()[(j, c)].abs() <= a.matrix()[(j, c)].abs() + 1e-12);
            }
        }
    }

    #[test]
    fn constant_covariance_rejected() {
        let cov = Matrix::zeros(3, 3);
        assert!(WhiteningWorkspace::from_covariance(&cov, 1e-10).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn_matrix(3, 200, &mut rng);
        let ws = WhiteningWorkspace::from_covariance(&x.column_covariance(), 1e-10).unwrap();
        let bad = Matrix::identity(2);
        assert!(ws.whitener_for_rotation(&bad, vec![0.0; 3], 0.0).is_err());
        assert!(ws
            .whitener_for_rotation(&Matrix::identity(3), vec![0.0; 2], 0.0)
            .is_err());
    }

    #[test]
    fn rank_deficient_base_drops_components() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = randn_matrix(2, 800, &mut rng);
        let x = Matrix::from_fn(3, 800, |r, c| match r {
            0 | 1 => base[(r, c)],
            _ => base[(0, c)] - base[(1, c)],
        });
        let ws = WhiteningWorkspace::from_covariance(&x.column_covariance(), 1e-8).unwrap();
        assert_eq!(ws.rank(), 2);
    }
}
