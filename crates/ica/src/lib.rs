//! PCA, whitening, and FastICA.
//!
//! The attack model of Chen & Liu's SDM'07 companion paper (reference \[2\] of
//! the PODC'07 brief) assumes the adversary runs *independent component
//! analysis* on the perturbed dataset to undo an unknown rotation: a rotation
//! mixes the original attributes linearly, and if those attributes are
//! non-Gaussian and independent-ish, ICA can recover them up to permutation
//! and sign. The randomized perturbation optimizer in `sap-privacy` scores
//! candidate rotations by how well this attack (and the PCA variant) does.
//!
//! Contents:
//!
//! * [`pca::Pca`] — principal component analysis via the symmetric eigen
//!   decomposition of the covariance.
//! * [`whiten::Whitener`] — zero-mean, unit-covariance transform, the
//!   standard ICA preprocessing step.
//! * [`workspace::WhiteningWorkspace`] — a cached eigendecomposition that
//!   mints whiteners for many rotations of the same base data (the
//!   optimizer's candidate fan-out shares one decomposition).
//! * [`fastica::FastIca`] — the fixed-point FastICA algorithm with symmetric
//!   decorrelation and the `tanh` contrast.
//!
//! All algorithms take data in the paper's `d × N` orientation (one record
//! per column).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod fastica;
pub mod pca;
pub mod whiten;
pub mod workspace;

pub use fastica::FastIca;
pub use pca::Pca;
pub use whiten::Whitener;
pub use workspace::WhiteningWorkspace;

use sap_linalg::Matrix;

/// Excess kurtosis of a sample (`E[(x-μ)⁴]/σ⁴ − 3`); zero for Gaussians.
/// ICA needs non-Gaussian sources, and the attacks use kurtosis to rank the
/// recovered components.
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if m2 <= 1e-300 {
        return 0.0;
    }
    let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    m4 / (m2 * m2) - 3.0
}

/// Centers the columns of a `d × N` matrix (subtracts the mean record) and
/// returns the centered matrix together with the mean.
pub fn center_columns(x: &Matrix) -> (Matrix, Vec<f64>) {
    let mu = x.row_means();
    let centered = Matrix::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] - mu[r]);
    (centered, mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn kurtosis_of_gaussian_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = sap_linalg::randn_vec(100_000, &mut rng);
        assert!(excess_kurtosis(&xs).abs() < 0.1);
    }

    #[test]
    fn kurtosis_of_uniform_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.random_range(0.0..1.0)).collect();
        let k = excess_kurtosis(&xs);
        assert!((k + 1.2).abs() < 0.1, "uniform excess kurtosis {k} != -1.2");
    }

    #[test]
    fn kurtosis_degenerate_inputs() {
        assert_eq!(excess_kurtosis(&[1.0, 2.0]), 0.0);
        assert_eq!(excess_kurtosis(&[3.0; 10]), 0.0);
    }

    #[test]
    fn center_columns_zeroes_means() {
        let x = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let (c, mu) = center_columns(&x);
        assert_eq!(mu, vec![2.0, 4.0]);
        for r in 0..2 {
            let mean: f64 = (0..2).map(|j| c[(r, j)]).sum::<f64>() / 2.0;
            assert!(mean.abs() < 1e-12);
        }
    }
}
