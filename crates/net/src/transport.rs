//! The transport abstraction and its in-memory implementation.
//!
//! One [`Endpoint`] per party; endpoints exchange opaque byte payloads
//! through an [`InMemoryHub`] (crossbeam channels). The protocol layer never
//! depends on the concrete transport, so fault-injecting decorators
//! ([`crate::sim`]) slot in transparently.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a party in a protocol session.
///
/// By convention in this workspace: data providers are `0..k`, the
/// coordinator is one of them (usually `k−1`), and the mining service
/// provider gets a dedicated high id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PartyId(pub u64);

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "party-{}", self.0)
    }
}

/// Identifies one protocol session when many share a physical mesh.
///
/// Wire-format v3 stamps the session id (in plaintext, but authenticated —
/// see [`crate::frame`]) on every sealed frame, so a
/// [`crate::mux::SessionMux`] can demultiplex one physical transport into
/// per-session virtual endpoints without opening any envelope.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The session id of a standalone (non-multiplexed) run. Nodes created
    /// without an explicit session use this.
    pub const SOLO: SessionId = SessionId(0);

    /// Reserved session id stamped on liveness (heartbeat) frames — never
    /// a real session. A [`crate::mux::SessionMux`] pump consumes frames
    /// stamped with it instead of routing them (see [`crate::frame`]'s
    /// heartbeat functions), and refuses to open a session under it.
    pub const LIVENESS: SessionId = SessionId(u64::MAX);
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Transport failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination party is not registered with the hub.
    UnknownParty(PartyId),
    /// A party id was registered twice on the same hub or mux.
    DuplicateParty(PartyId),
    /// A session id was opened twice on the same mux.
    DuplicateSession(SessionId),
    /// The peer (or hub) hung up.
    Disconnected,
    /// A specific peer was detected dead — its process exited, its socket
    /// closed, or its heartbeats stopped. Unlike [`TransportError::Timeout`]
    /// (which says only "nothing arrived"), this names the failed party so
    /// the protocol layer can fail the session with a typed peer-failure
    /// instead of a generic starvation timeout. The error is *transient*:
    /// a receiver may keep receiving from other peers afterwards.
    PeerDown(PartyId),
    /// Connecting to a peer's listener failed for the whole backoff
    /// window — the peer never bound, or its process is gone.
    ConnectFailed {
        /// The address that refused every attempt.
        addr: SocketAddr,
        /// Connection attempts made before giving up.
        attempts: u32,
    },
    /// `recv_timeout` elapsed without a message.
    Timeout,
    /// The payload exceeds the transport's size limit (e.g. a stream
    /// block larger than [`crate::tcp::MAX_PAYLOAD`]).
    PayloadTooLarge {
        /// Offending payload size in bytes.
        size: usize,
    },
    /// A peer's length prefix claimed a frame over
    /// [`crate::tcp::MAX_PAYLOAD`]. The claimed buffer was **never
    /// allocated**; the offending connection was dropped. Like
    /// [`TransportError::PeerDown`] this is transient and names the
    /// party, so the protocol layer can fail that peer's session with a
    /// typed error while siblings keep running.
    OversizeFrame {
        /// The peer whose connection claimed the oversize frame.
        from: PartyId,
        /// The claimed length in bytes.
        claimed: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownParty(p) => write!(f, "unknown party {p}"),
            TransportError::DuplicateParty(p) => write!(f, "party {p} registered twice"),
            TransportError::DuplicateSession(s) => write!(f, "{s} opened twice on one mux"),
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::PeerDown(p) => write!(f, "peer {p} is down"),
            TransportError::ConnectFailed { addr, attempts } => {
                write!(f, "connect to {addr} failed after {attempts} attempts")
            }
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::PayloadTooLarge { size } => {
                write!(f, "payload of {size} bytes exceeds the transport limit")
            }
            TransportError::OversizeFrame { from, claimed } => {
                write!(
                    f,
                    "{from} claimed an oversize frame of {claimed} bytes; connection dropped"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Point-to-point message transport for one party.
///
/// `Sync` is part of the contract so a [`crate::mux::SessionMux`] pump
/// thread can receive on a shared endpoint while session roles send
/// through it concurrently.
pub trait Transport: Send + Sync {
    /// This endpoint's identity.
    fn local_id(&self) -> PartyId;

    /// Sends a payload to another party.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownParty`] / `Disconnected`.
    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError>;

    /// Best-effort, **bounded-latency** send for liveness traffic
    /// (heartbeats). Defaults to [`Transport::send`]; transports whose
    /// send can block for a long connect window (TCP retries a peer that
    /// has not bound yet for seconds) must override this with a
    /// short-window variant — a heartbeat emitter iterates its peers
    /// sequentially, and one dead peer stalling the loop would starve
    /// beats to healthy peers and falsely trip *their* watchdogs.
    ///
    /// # Errors
    ///
    /// As [`Transport::send`]; failures here mean "unreachable right
    /// now", which liveness layers should count, not instantly act on.
    fn send_liveness(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        self.send(to, payload)
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] when every sender is gone.
    fn recv(&self) -> Result<(PartyId, Bytes), TransportError>;

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] on expiry, `Disconnected` when
    /// every sender is gone.
    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError>;
}

/// One in-band inbox item: a payload, or a liveness event about a peer.
/// Markers travel through the same channel as frames so a receiver blocked
/// in `recv` wakes up the moment a peer is declared dead — no side channel
/// to poll.
#[derive(Debug, Clone)]
pub(crate) enum Delivery {
    /// An ordinary payload from a peer.
    Frame(PartyId, Bytes),
    /// The named peer was detected dead.
    PeerDown(PartyId),
    /// The named peer claimed a frame over the size limit; its connection
    /// was dropped without allocating the claim.
    Oversize(PartyId, usize),
}

pub(crate) fn pop_delivery(d: Delivery) -> Result<(PartyId, Bytes), TransportError> {
    match d {
        Delivery::Frame(from, payload) => Ok((from, payload)),
        Delivery::PeerDown(p) => Err(TransportError::PeerDown(p)),
        Delivery::Oversize(from, claimed) => Err(TransportError::OversizeFrame { from, claimed }),
    }
}

type Inbox = Delivery;

/// An in-memory message hub connecting any number of endpoints.
#[derive(Clone, Default)]
pub struct InMemoryHub {
    routes: Arc<RwLock<HashMap<PartyId, Sender<Inbox>>>>,
}

impl InMemoryHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a party and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered (duplicate identities are a
    /// harness bug, not a runtime condition). Long-lived runtimes that
    /// register parties dynamically should use
    /// [`InMemoryHub::try_endpoint`] instead.
    pub fn endpoint(&self, id: PartyId) -> Endpoint {
        match self.try_endpoint(id) {
            Ok(endpoint) => endpoint,
            Err(_) => panic!("party {id} registered twice"),
        }
    }

    /// Registers a party, returning a typed error on duplicate ids instead
    /// of panicking — the variant a multi-session server wants, where a
    /// duplicate registration must fail one session, not the process.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::DuplicateParty`] when `id` is taken.
    pub fn try_endpoint(&self, id: PartyId) -> Result<Endpoint, TransportError> {
        let (tx, rx) = unbounded();
        let mut routes = self.routes.write();
        if routes.contains_key(&id) {
            return Err(TransportError::DuplicateParty(id));
        }
        routes.insert(id, tx);
        Ok(Endpoint {
            id,
            routes: Arc::clone(&self.routes),
            inbox: parking_lot::Mutex::new(rx),
        })
    }

    /// Removes a party, closing its inbox (subsequent sends to it fail).
    pub fn disconnect(&self, id: PartyId) {
        self.routes.write().remove(&id);
    }

    /// Kills a party: removes it like [`InMemoryHub::disconnect`] **and**
    /// notifies every surviving endpoint with an in-band
    /// [`TransportError::PeerDown`] marker — the hub analogue of a process
    /// crash closing its TCP sockets. Receivers blocked in `recv` wake
    /// immediately with the typed failure instead of starving until their
    /// protocol timeout.
    pub fn kill(&self, id: PartyId) {
        let mut routes = self.routes.write();
        if !routes.contains_key(&id) {
            return;
        }
        // Notify survivors *before* dropping the dead party's route: its
        // own endpoint (and any mux pump on it) sees Disconnected only
        // after every survivor already has the typed marker queued,
        // narrowing the race between the typed failure and the secondary
        // disconnect cascade.
        for (&party, tx) in routes.iter() {
            if party != id {
                let _ = tx.send(Delivery::PeerDown(id));
            }
        }
        routes.remove(&id);
    }

    /// Currently registered parties.
    pub fn parties(&self) -> Vec<PartyId> {
        let mut v: Vec<PartyId> = self.routes.read().keys().copied().collect();
        v.sort();
        v
    }
}

/// One party's connection to an [`InMemoryHub`].
///
/// The inbox sits behind a mutex solely to make the endpoint `Sync` (the
/// mux pump receives while roles send); receive ordering is still owned by
/// one logical consumer.
pub struct Endpoint {
    id: PartyId,
    routes: Arc<RwLock<HashMap<PartyId, Sender<Inbox>>>>,
    inbox: parking_lot::Mutex<Receiver<Inbox>>,
}

impl Transport for Endpoint {
    fn local_id(&self) -> PartyId {
        self.id
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        let routes = self.routes.read();
        let tx = routes.get(&to).ok_or(TransportError::UnknownParty(to))?;
        tx.send(Delivery::Frame(self.id, payload))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv()
            .map_err(|_| TransportError::Disconnected)
            .and_then(pop_delivery)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout,
                RecvTimeoutError::Disconnected => TransportError::Disconnected,
            })
            .and_then(pop_delivery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let b = hub.endpoint(PartyId(2));
        a.send(PartyId(2), Bytes::from_static(b"hi")).unwrap();
        let (from, payload) = b.recv().unwrap();
        assert_eq!(from, PartyId(1));
        assert_eq!(&payload[..], b"hi");
    }

    #[test]
    fn unknown_party_errors() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        assert_eq!(
            a.send(PartyId(9), Bytes::new()).unwrap_err(),
            TransportError::UnknownParty(PartyId(9))
        );
    }

    #[test]
    fn timeout_when_silent() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn fifo_per_sender() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let b = hub.endpoint(PartyId(2));
        for i in 0..10u8 {
            a.send(PartyId(2), Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..10u8 {
            let (_, p) = b.recv().unwrap();
            assert_eq!(p[0], i);
        }
    }

    #[test]
    fn disconnect_closes_route() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let _b = hub.endpoint(PartyId(2));
        hub.disconnect(PartyId(2));
        assert!(a.send(PartyId(2), Bytes::new()).is_err());
        assert_eq!(hub.parties(), vec![PartyId(1)]);
    }

    #[test]
    fn kill_notifies_survivors_in_band() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let b = hub.endpoint(PartyId(2));
        let _c = hub.endpoint(PartyId(3));
        // A frame sent before the kill is delivered first, then the
        // marker, then traffic from survivors keeps flowing.
        a.send(PartyId(2), Bytes::from_static(b"pre")).unwrap();
        hub.kill(PartyId(1));
        assert_eq!(&b.recv().unwrap().1[..], b"pre");
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap_err(),
            TransportError::PeerDown(PartyId(1))
        );
        // The endpoint stays usable for surviving peers.
        _c.send(PartyId(2), Bytes::from_static(b"post")).unwrap();
        assert_eq!(&b.recv().unwrap().1[..], b"post");
        // Killing an unknown id is a no-op.
        hub.kill(PartyId(9));
    }

    #[test]
    fn cross_thread_exchange() {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let b = hub.endpoint(PartyId(2));
        let handle = std::thread::spawn(move || {
            let (from, p) = b.recv().unwrap();
            assert_eq!(from, PartyId(1));
            b.send(from, p).unwrap();
        });
        a.send(PartyId(2), Bytes::from_static(b"ping")).unwrap();
        let (_, echo) = a.recv().unwrap();
        assert_eq!(&echo[..], b"ping");
        handle.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let hub = InMemoryHub::new();
        let _a = hub.endpoint(PartyId(1));
        let _b = hub.endpoint(PartyId(1));
    }

    #[test]
    fn try_endpoint_reports_duplicate_as_typed_error() {
        let hub = InMemoryHub::new();
        let _a = hub.try_endpoint(PartyId(1)).unwrap();
        let err = match hub.try_endpoint(PartyId(1)) {
            Ok(_) => panic!("duplicate id must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err, TransportError::DuplicateParty(PartyId(1)));
    }
}
