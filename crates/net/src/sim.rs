//! Fault injection for failure testing.
//!
//! [`FaultyTransport`] decorates any [`Transport`] and deterministically
//! drops, duplicates, or delays (reorders) outgoing messages. The protocol's
//! integration tests use it to verify that SAP sessions fail *cleanly* —
//! abort with an error, never deliver a wrong result — under lossy
//! conditions.

use crate::transport::{PartyId, Transport, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Duration;

/// Fault model configuration. Probabilities are independent per message.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability an outgoing message is silently dropped.
    pub drop_prob: f64,
    /// Probability an outgoing message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability an outgoing message is held back and sent *after* the
    /// next message (pairwise reordering).
    pub delay_prob: f64,
    /// Synchronous transit latency added to every send — models a WAN
    /// link, where a blocking send occupies the sender for the link's
    /// round-trip share. Zero (the default) adds nothing. The server
    /// throughput bench uses this to measure how much latency a
    /// multi-session runtime can overlap.
    pub send_latency: Duration,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            send_latency: Duration::ZERO,
            seed: 0xFA17,
        }
    }
}

impl FaultConfig {
    /// The salt conventionally used for the miner endpoint's fault stream
    /// (providers use `position + 1`).
    pub const MINER_SALT: u64 = 0x31;

    /// Derives the per-endpoint fault stream for one session role: same
    /// fault model, seed decorrelated by `salt`. Both the solo session
    /// runner and the server wrap a session's endpoints through this one
    /// helper, so a faulted session behaves identically in either.
    #[must_use]
    pub fn salted_for(&self, salt: u64) -> FaultConfig {
        FaultConfig {
            seed: self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..*self
        }
    }

    /// Validates probability bounds.
    ///
    /// # Panics
    ///
    /// Panics when any probability falls outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("delay_prob", self.delay_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1]");
        }
    }
}

/// A transport decorator injecting deterministic faults on the send path.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

struct FaultState {
    rng: u64,
    held: VecDeque<(PartyId, Bytes)>,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps a transport with the given fault model.
    ///
    /// # Panics
    ///
    /// Panics on invalid probabilities.
    pub fn new(inner: T, config: FaultConfig) -> Self {
        config.validate();
        FaultyTransport {
            inner,
            config,
            state: Mutex::new(FaultState {
                rng: config.seed.max(1),
                held: VecDeque::new(),
                dropped: 0,
                duplicated: 0,
                delayed: 0,
            }),
        }
    }

    /// `(dropped, duplicated, delayed)` counters, for test assertions.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        let s = self.state.lock();
        (s.dropped, s.duplicated, s.delayed)
    }

    /// Flushes any held-back (delayed) messages.
    ///
    /// # Errors
    ///
    /// Propagates the inner transport's send errors.
    pub fn flush(&self) -> Result<(), TransportError> {
        let mut s = self.state.lock();
        while let Some((to, payload)) = s.held.pop_front() {
            self.inner.send(to, payload)?;
        }
        Ok(())
    }
}

fn next_unit(rng: &mut u64) -> f64 {
    // xorshift64*; uniform in [0, 1).
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn local_id(&self) -> PartyId {
        self.inner.local_id()
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        if !self.config.send_latency.is_zero() {
            std::thread::sleep(self.config.send_latency);
        }
        let mut s = self.state.lock();
        // Release anything held from a previous delayed send *after* this
        // message to realize the reordering.
        let release: Vec<(PartyId, Bytes)> = s.held.drain(..).collect();

        let u = next_unit(&mut s.rng);
        if u < self.config.drop_prob {
            s.dropped += 1;
        } else if u < self.config.drop_prob + self.config.duplicate_prob {
            s.duplicated += 1;
            self.inner.send(to, payload.clone())?;
            self.inner.send(to, payload)?;
        } else if u < self.config.drop_prob + self.config.duplicate_prob + self.config.delay_prob {
            s.delayed += 1;
            s.held.push_back((to, payload));
        } else {
            self.inner.send(to, payload)?;
        }

        for (rto, rpayload) in release {
            self.inner.send(rto, rpayload)?;
        }
        Ok(())
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryHub;

    fn pair() -> (
        InMemoryHub,
        crate::transport::Endpoint,
        crate::transport::Endpoint,
    ) {
        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let b = hub.endpoint(PartyId(2));
        (hub, a, b)
    }

    #[test]
    fn no_faults_is_transparent() {
        let (_hub, a, b) = pair();
        let ft = FaultyTransport::new(a, FaultConfig::default());
        for i in 0..20u8 {
            ft.send(PartyId(2), Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap().1[0], i);
        }
        assert_eq!(ft.fault_counts(), (0, 0, 0));
    }

    #[test]
    fn drops_roughly_at_rate() {
        let (_hub, a, b) = pair();
        let ft = FaultyTransport::new(
            a,
            FaultConfig {
                drop_prob: 0.3,
                ..FaultConfig::default()
            },
        );
        let n = 2000;
        for i in 0..n {
            ft.send(
                PartyId(2),
                Bytes::copy_from_slice(&(i as u32).to_le_bytes()),
            )
            .unwrap();
        }
        let mut received = 0;
        while b.recv_timeout(Duration::from_millis(1)).is_ok() {
            received += 1;
        }
        let (dropped, _, _) = ft.fault_counts();
        assert_eq!(received + dropped as usize, n);
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (_hub, a, b) = pair();
        let ft = FaultyTransport::new(
            a,
            FaultConfig {
                duplicate_prob: 1.0,
                ..FaultConfig::default()
            },
        );
        ft.send(PartyId(2), Bytes::from_static(b"x")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_ok());
        assert!(b.recv_timeout(Duration::from_millis(50)).is_ok());
        assert_eq!(ft.fault_counts().1, 1);
    }

    #[test]
    fn delay_reorders_pairs() {
        let (_hub, a, b) = pair();
        // Delay every message: message i is released right after message
        // i+1's send processes its hold queue.
        let ft = FaultyTransport::new(
            a,
            FaultConfig {
                delay_prob: 1.0,
                ..FaultConfig::default()
            },
        );
        ft.send(PartyId(2), Bytes::from_static(b"1")).unwrap();
        ft.send(PartyId(2), Bytes::from_static(b"2")).unwrap();
        ft.flush().unwrap();
        let first = b.recv().unwrap().1;
        let second = b.recv().unwrap().1;
        assert_eq!(&first[..], b"1", "held message released by next send");
        assert_eq!(&second[..], b"2");
    }

    #[test]
    fn flush_releases_held() {
        let (_hub, a, b) = pair();
        let ft = FaultyTransport::new(
            a,
            FaultConfig {
                delay_prob: 1.0,
                ..FaultConfig::default()
            },
        );
        ft.send(PartyId(2), Bytes::from_static(b"z")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(10)).is_err());
        ft.flush().unwrap();
        assert_eq!(&b.recv().unwrap().1[..], b"z");
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_probability_panics() {
        let (_hub, a, _b) = pair();
        let _ = FaultyTransport::new(
            a,
            FaultConfig {
                drop_prob: 1.5,
                ..FaultConfig::default()
            },
        );
    }

    #[test]
    fn deterministic_fault_stream() {
        let run = |seed: u64| -> u64 {
            let (_hub, a, _b) = pair();
            let ft = FaultyTransport::new(
                a,
                FaultConfig {
                    drop_prob: 0.5,
                    seed,
                    ..FaultConfig::default()
                },
            );
            for _ in 0..100 {
                let _ = ft.send(PartyId(2), Bytes::new());
            }
            ft.fault_counts().0
        };
        assert_eq!(run(7), run(7));
    }
}
