//! Session multiplexing: one physical mesh, many concurrent sessions.
//!
//! A [`SessionMux`] wraps a single physical [`Transport`] endpoint (hub or
//! TCP) and demultiplexes its inbound traffic into per-session virtual
//! endpoints ([`MuxEndpoint`]), routed by the plaintext — but
//! authenticated — session id that every wire-format-v3 sealed frame
//! carries ([`crate::frame::peek_session`]). The pump thread never opens
//! an envelope, so demultiplexing costs one 8-byte read per frame and no
//! session key ever leaves its session.
//!
//! # Queueing & backpressure
//!
//! Each open session owns a **bounded** inbound queue. When a session's
//! queue is full the pump briefly applies backpressure (it stalls up to
//! [`STALL_BUDGET`] waiting for the slow session to drain),
//! then **sheds the frame** and counts it — one stuck session must not
//! head-of-line-block every other session sharing the physical link. SAP
//! has no retransmission, so a shed frame aborts the losing session via
//! its own timeout; its siblings never notice.
//!
//! # The one-garbage-frame DoS, revisited
//!
//! The single-session TCP transport documents that any outsider who can
//! reach the port can abort *the* session with one garbage frame. Under
//! the mux the blast radius shrinks to exactly one session: a frame
//! stamped with an **unknown** session id is counted and dropped (the
//! connection and every live session keep running), and a garbage frame
//! stamped with a live session id fails to open *in that session only* —
//! its siblings share nothing with it but the pump thread.

use crate::frame::peek_session;
use crate::transport::{PartyId, SessionId, Transport, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on one session's inbound queue, in frames.
pub const DEFAULT_SESSION_QUEUE: usize = 1024;

/// How long the pump waits on one full session queue before shedding the
/// frame for that session.
pub const STALL_BUDGET: Duration = Duration::from_millis(50);

/// Counters a [`SessionMux`] keeps about its traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxMetrics {
    /// Frames successfully routed to a session queue.
    pub frames_routed: u64,
    /// Frames sent out through this mux (every one a sealed frame).
    pub frames_sent: u64,
    /// Bytes sent out through this mux (sealed bytes on the wire).
    pub bytes_sent: u64,
    /// Inbound frames dropped because their session id was unknown
    /// (including frames too short to carry a v3 envelope).
    pub unknown_session_dropped: u64,
    /// Inbound frames shed because the owning session's queue stayed full
    /// past the stall budget.
    pub shed_frames: u64,
    /// Sessions opened over the lifetime of the mux.
    pub sessions_opened: u64,
}

#[derive(Default)]
struct MetricCells {
    frames_routed: AtomicU64,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    unknown_session_dropped: AtomicU64,
    shed_frames: AtomicU64,
    sessions_opened: AtomicU64,
}

impl MetricCells {
    fn snapshot(&self) -> MuxMetrics {
        MuxMetrics {
            frames_routed: self.frames_routed.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            unknown_session_dropped: self.unknown_session_dropped.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
        }
    }
}

struct Route {
    // Distinguishes reincarnations of one session id, so a stale
    // endpoint's Drop can never tear down a reopened session's route.
    generation: u64,
    tx: SyncSender<(PartyId, Bytes)>,
}

struct MuxShared<T: Transport> {
    inner: T,
    routes: Mutex<HashMap<SessionId, Route>>,
    metrics: MetricCells,
    queue_depth: usize,
    next_generation: AtomicU64,
    shutdown: AtomicBool,
}

impl<T: Transport> MuxShared<T> {
    fn remove_route(&self, session: SessionId, generation: Option<u64>) {
        let mut routes = self.routes.lock();
        if let Some(route) = routes.get(&session) {
            if generation.is_none_or(|g| g == route.generation) {
                routes.remove(&session);
            }
        }
    }
}

/// Demultiplexes one physical [`Transport`] endpoint into per-session
/// virtual endpoints. Cheap to clone (all clones share the endpoint).
pub struct SessionMux<T: Transport + 'static> {
    shared: Arc<MuxShared<T>>,
}

impl<T: Transport + 'static> Clone for SessionMux<T> {
    fn clone(&self) -> Self {
        SessionMux {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Transport + 'static> SessionMux<T> {
    /// Wraps a physical endpoint with the default per-session queue depth
    /// and starts the pump thread.
    pub fn new(inner: T) -> Self {
        Self::with_queue_depth(inner, DEFAULT_SESSION_QUEUE)
    }

    /// Wraps a physical endpoint with an explicit per-session inbound
    /// queue bound and starts the pump thread.
    ///
    /// # Panics
    ///
    /// Panics when `queue_depth` is zero.
    pub fn with_queue_depth(inner: T, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "session queue depth must be positive");
        let shared = Arc::new(MuxShared {
            inner,
            routes: Mutex::new(HashMap::new()),
            metrics: MetricCells::default(),
            queue_depth,
            next_generation: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let pump = Arc::clone(&shared);
        // Pump failures must not take the process down; the thread exits
        // and every session sees Disconnected. If the spawn itself fails
        // the mux still works for sends; receives starve and sessions
        // abort via their timeouts.
        let _ = std::thread::Builder::new()
            .name(format!("mux-pump-{}", shared.inner.local_id()))
            .spawn(move || pump_loop(&pump));
        SessionMux { shared }
    }

    /// The physical endpoint's party id (shared by every session lane).
    pub fn local_id(&self) -> PartyId {
        self.shared.inner.local_id()
    }

    /// Opens a virtual endpoint for `session`. Frames stamped with this id
    /// are routed to (only) the returned endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::DuplicateSession`] when the session is
    /// already open on this mux.
    pub fn open_session(&self, session: SessionId) -> Result<MuxEndpoint<T>, TransportError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.shared.queue_depth);
        let generation = self.shared.next_generation.fetch_add(1, Ordering::Relaxed);
        let mut routes = self.shared.routes.lock();
        if routes.contains_key(&session) {
            return Err(TransportError::DuplicateSession(session));
        }
        routes.insert(session, Route { generation, tx });
        self.shared
            .metrics
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        Ok(MuxEndpoint {
            session,
            generation,
            shared: Arc::clone(&self.shared),
            inbox: Mutex::new(rx),
        })
    }

    /// Closes a session's route. Its endpoint (if still alive) sees
    /// [`TransportError::Disconnected`] on the next receive — the abort
    /// lever a server pulls to cancel one session without touching its
    /// siblings. Frames for the id are henceforth counted as unknown.
    pub fn close_session(&self, session: SessionId) {
        self.shared.remove_route(session, None);
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.shared.routes.lock().len()
    }

    /// A snapshot of the mux's traffic counters.
    pub fn metrics(&self) -> MuxMetrics {
        self.shared.metrics.snapshot()
    }

    /// Asks the pump thread to exit (it notices within its poll interval).
    /// Open sessions stop receiving; in-flight sends still work.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }
}

fn pump_loop<T: Transport>(shared: &MuxShared<T>) {
    // recv_timeout rather than recv: the poll lets the pump observe
    // shutdown without requiring the physical transport to disconnect.
    const POLL: Duration = Duration::from_millis(200);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let (from, payload) = match shared.inner.recv_timeout(POLL) {
            Ok(delivery) => delivery,
            Err(TransportError::Timeout) => continue,
            Err(_) => break,
        };
        let Some(session) = peek_session(&payload) else {
            shared
                .metrics
                .unknown_session_dropped
                .fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let route = {
            let routes = shared.routes.lock();
            routes.get(&session).map(|r| (r.generation, r.tx.clone()))
        };
        let Some((generation, tx)) = route else {
            shared
                .metrics
                .unknown_session_dropped
                .fetch_add(1, Ordering::Relaxed);
            continue;
        };
        match tx.try_send((from, payload)) {
            Ok(()) => {
                shared.metrics.frames_routed.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Endpoint dropped without close_session: reap the route.
                shared.remove_route(session, Some(generation));
                shared
                    .metrics
                    .unknown_session_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(delivery)) => {
                // Bounded backpressure, then shed: stall briefly for the
                // slow session, but never let it block its siblings
                // indefinitely.
                let deadline = Instant::now() + STALL_BUDGET;
                let mut delivery = delivery;
                loop {
                    std::thread::sleep(Duration::from_millis(1));
                    match tx.try_send(delivery) {
                        Ok(()) => {
                            shared.metrics.frames_routed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            shared.remove_route(session, Some(generation));
                            break;
                        }
                        Err(TrySendError::Full(back)) if Instant::now() < deadline => {
                            delivery = back;
                        }
                        Err(TrySendError::Full(_)) => {
                            shared.metrics.shed_frames.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
    }
    // Pump is done (shutdown or physical disconnect): drop every route's
    // sender so blocked session endpoints see Disconnected immediately
    // instead of waiting out their protocol timeouts.
    shared.routes.lock().clear();
}

/// One session's virtual endpoint over a shared physical transport.
///
/// Sends pass straight through to the physical endpoint (payloads are v3
/// sealed frames that already carry the session stamp); receives drain the
/// session's bounded queue. Dropping the endpoint closes the session's
/// route on the mux.
pub struct MuxEndpoint<T: Transport + 'static> {
    session: SessionId,
    generation: u64,
    shared: Arc<MuxShared<T>>,
    inbox: Mutex<Receiver<(PartyId, Bytes)>>,
}

impl<T: Transport + 'static> MuxEndpoint<T> {
    /// The session this endpoint belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

impl<T: Transport + 'static> Transport for MuxEndpoint<T> {
    fn local_id(&self) -> PartyId {
        self.shared.inner.local_id()
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        self.shared.inner.send(to, payload)?;
        // Counted only after the physical send succeeds, so bytes_sealed
        // never reports traffic that failed to reach the wire.
        self.shared
            .metrics
            .bytes_sent
            .fetch_add(len, Ordering::Relaxed);
        self.shared
            .metrics
            .frames_sent
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv()
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout,
                RecvTimeoutError::Disconnected => TransportError::Disconnected,
            })
    }
}

impl<T: Transport + 'static> Drop for MuxEndpoint<T> {
    fn drop(&mut self) {
        self.shared
            .remove_route(self.session, Some(self.generation));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WireCodec;
    use crate::node::{Node, NodeError};
    use crate::transport::InMemoryHub;

    /// Two muxed lanes over one hub, with an endpoint pair per session.
    fn mux_pair() -> (
        SessionMux<crate::transport::Endpoint>,
        SessionMux<crate::transport::Endpoint>,
    ) {
        let hub = InMemoryHub::new();
        (
            SessionMux::new(hub.endpoint(PartyId(1))),
            SessionMux::new(hub.endpoint(PartyId(2))),
        )
    }

    fn node_for(
        mux: &SessionMux<crate::transport::Endpoint>,
        session: SessionId,
        secret: u64,
    ) -> Node<MuxEndpoint<crate::transport::Endpoint>> {
        Node::for_session(
            mux.open_session(session).unwrap(),
            WireCodec,
            secret,
            session,
        )
    }

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn sessions_interleave_over_one_mesh() {
        let (m1, m2) = mux_pair();
        let a1 = node_for(&m1, SessionId(1), 7);
        let a2 = node_for(&m1, SessionId(2), 7);
        let b1 = node_for(&m2, SessionId(1), 7);
        let b2 = node_for(&m2, SessionId(2), 7);

        a1.send_msg(PartyId(2), &10u32).unwrap();
        a2.send_msg(PartyId(2), &20u32).unwrap();
        a1.send_msg(PartyId(2), &11u32).unwrap();

        let (_, x1): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        let (_, x2): (PartyId, u32) = b2.recv_msg_timeout(WAIT).unwrap();
        let (_, x3): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        assert_eq!((x1, x2, x3), (10, 20, 11));
        assert!(m2.metrics().frames_routed >= 3);
    }

    #[test]
    fn unknown_session_frames_counted_and_dropped() {
        let (m1, m2) = mux_pair();
        let a9 = node_for(&m1, SessionId(9), 7); // not open on m2
        let b1 = node_for(&m2, SessionId(1), 7);

        a9.send_msg(PartyId(2), &1u32).unwrap();
        // The live session stays usable after the stray frame.
        let a1 = node_for(&m1, SessionId(1), 7);
        a1.send_msg(PartyId(2), &2u32).unwrap();
        let (_, got): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 2);
        assert_eq!(m2.metrics().unknown_session_dropped, 1);
    }

    #[test]
    fn garbage_frame_aborts_only_the_session_it_claims() {
        let (m1, m2) = mux_pair();
        let a1 = node_for(&m1, SessionId(1), 7);
        let a2 = node_for(&m1, SessionId(2), 7);
        let b1 = node_for(&m2, SessionId(1), 7);
        let b2 = node_for(&m2, SessionId(2), 7);

        // Hand-craft a garbage frame claiming session 1: long enough to be
        // a v3 envelope, sealed under no valid key.
        let mut garbage = vec![0u8; 48];
        garbage[..8].copy_from_slice(&1u64.to_le_bytes());
        a1.transport()
            .send(PartyId(2), Bytes::from(garbage))
            .unwrap();
        a2.send_msg(PartyId(2), &99u32).unwrap();

        // Session 1 aborts with a crypto error…
        let err = b1.recv_msg_timeout::<u32>(WAIT).unwrap_err();
        assert!(matches!(err, NodeError::Frame(_)), "{err}");
        // …while session 2 is untouched.
        let (_, got): (PartyId, u32) = b2.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 99);
    }

    #[test]
    fn full_session_queue_sheds_instead_of_blocking_siblings() {
        let hub = InMemoryHub::new();
        let m2 = SessionMux::with_queue_depth(hub.endpoint(PartyId(2)), 2);
        let m1 = SessionMux::new(hub.endpoint(PartyId(1)));
        let slow = node_for(&m1, SessionId(1), 7);
        let fast = node_for(&m1, SessionId(2), 7);
        let b_slow = m2.open_session(SessionId(1)).unwrap();
        let b_fast = node_for(&m2, SessionId(2), 7);

        // Overfill session 1's depth-2 queue; nobody drains it.
        for i in 0..8u32 {
            slow.send_msg(PartyId(2), &i).unwrap();
        }
        // Session 2 still flows.
        fast.send_msg(PartyId(2), &1234u32).unwrap();
        let (_, got): (PartyId, u32) = b_fast.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 1234);

        // Wait out the stall budget for the remaining sheds to resolve.
        let deadline = Instant::now() + Duration::from_secs(10);
        while m2.metrics().shed_frames == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(m2.metrics().shed_frames > 0, "overflow must shed");
        drop(b_slow);
    }

    #[test]
    fn close_session_disconnects_endpoint() {
        let (m1, _m2) = mux_pair();
        let a1 = m1.open_session(SessionId(1)).unwrap();
        m1.close_session(SessionId(1));
        assert_eq!(a1.recv().unwrap_err(), TransportError::Disconnected);
        assert_eq!(m1.open_sessions(), 0);
        // The id can be reopened after close.
        assert!(m1.open_session(SessionId(1)).is_ok());
    }

    #[test]
    fn duplicate_session_is_typed_error() {
        let (m1, _m2) = mux_pair();
        let _a = m1.open_session(SessionId(4)).unwrap();
        let err = match m1.open_session(SessionId(4)) {
            Ok(_) => panic!("duplicate session must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err, TransportError::DuplicateSession(SessionId(4)));
    }
}
