//! Session multiplexing: one physical mesh, many concurrent sessions.
//!
//! A [`SessionMux`] wraps a single physical [`Transport`] endpoint (hub or
//! TCP) and demultiplexes its inbound traffic into per-session virtual
//! endpoints ([`MuxEndpoint`]), routed by the plaintext — but
//! authenticated — session id that every wire-format-v3 sealed frame
//! carries ([`crate::frame::peek_session`]). The pump thread never opens
//! an envelope, so demultiplexing costs one 8-byte read per frame and no
//! session key ever leaves its session.
//!
//! # Queueing & backpressure
//!
//! Each open session owns a **bounded** inbound queue. When a session's
//! queue is full the pump briefly applies backpressure (it stalls up to
//! [`STALL_BUDGET`] waiting for the slow session to drain),
//! then **sheds the frame** and counts it — one stuck session must not
//! head-of-line-block every other session sharing the physical link. SAP
//! has no retransmission, so a shed frame aborts the losing session via
//! its own timeout; its siblings never notice.
//!
//! # The one-garbage-frame DoS, revisited
//!
//! The single-session TCP transport documents that any outsider who can
//! reach the port can abort *the* session with one garbage frame. Under
//! the mux the blast radius shrinks to exactly one session: a frame
//! stamped with an **unknown** session id is counted and dropped (the
//! connection and every live session keep running), and a garbage frame
//! stamped with a live session id fails to open *in that session only* —
//! its siblings share nothing with it but the pump thread.
//!
//! # Peer liveness
//!
//! With [`SessionMux::start_liveness`] enabled, the mux also runs the
//! failure-detection plane: a background emitter sends plaintext
//! heartbeat frames ([`crate::frame::encode_heartbeat`], wire format in
//! `docs/WIRE.md` §7) to every watched peer, the pump refreshes each
//! sender's last-seen clock on **any** inbound frame, and a watched peer
//! silent past `interval × misses` — or one whose death the transport
//! reports directly ([`TransportError::PeerDown`]) — is declared dead
//! **once**: every open session receives an in-band `PeerDown` and fails
//! fast with a typed error at the protocol layer instead of starving
//! until its timeout. Detection events and their latency surface in
//! [`MuxMetrics`].

use crate::frame::{decode_heartbeat, encode_heartbeat, peek_session};
use crate::transport::{PartyId, SessionId, Transport, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on one session's inbound queue, in frames.
pub const DEFAULT_SESSION_QUEUE: usize = 1024;

/// How long the pump waits on one full session queue before shedding the
/// frame for that session.
pub const STALL_BUDGET: Duration = Duration::from_millis(50);

/// Default heartbeat send interval for [`SessionMux::start_liveness`].
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Default number of missed heartbeat intervals after which a silent peer
/// is declared down. The liveness budget is `interval × misses`.
pub const DEFAULT_LIVENESS_MISSES: u32 = 3;

/// Counters a [`SessionMux`] keeps about its traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxMetrics {
    /// Frames successfully routed to a session queue.
    pub frames_routed: u64,
    /// Frames sent out through this mux (every one a sealed frame).
    pub frames_sent: u64,
    /// Bytes sent out through this mux (sealed bytes on the wire).
    pub bytes_sent: u64,
    /// Inbound frames dropped because their session id was unknown
    /// (including frames too short to carry a v3 envelope).
    pub unknown_session_dropped: u64,
    /// Inbound frames with no local route that a forwarding hook
    /// ([`SessionMux::set_forwarder`]) relayed — still sealed, never
    /// decoded — to another physical peer (a fleet's inter-node
    /// forwarding path).
    pub frames_forwarded: u64,
    /// Inbound frames shed because the owning session's queue stayed full
    /// past the stall budget.
    pub shed_frames: u64,
    /// Sessions opened over the lifetime of the mux.
    pub sessions_opened: u64,
    /// Peers this mux declared dead (socket close, hub kill, or missed
    /// heartbeats).
    pub peers_down: u64,
    /// Summed detection latency over every [`MuxMetrics::peers_down`]
    /// event, in microseconds: how long the peer had been silent when it
    /// was declared dead (≈ 0 for transport-notified deaths, ≈ the
    /// liveness budget for heartbeat-detected ones).
    pub peer_down_latency_us: u64,
    /// Peers revived after a death verdict — they resumed sending, so
    /// later sessions (and retries) run against them again.
    pub peers_recovered: u64,
    /// Heartbeat frames this mux emitted.
    pub heartbeats_sent: u64,
    /// Heartbeat frames this mux's pump consumed.
    pub heartbeats_seen: u64,
}

#[derive(Default)]
struct MetricCells {
    frames_routed: AtomicU64,
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    unknown_session_dropped: AtomicU64,
    frames_forwarded: AtomicU64,
    shed_frames: AtomicU64,
    sessions_opened: AtomicU64,
    peers_down: AtomicU64,
    peer_down_latency_us: AtomicU64,
    peers_recovered: AtomicU64,
    heartbeats_sent: AtomicU64,
    heartbeats_seen: AtomicU64,
}

impl MetricCells {
    fn snapshot(&self) -> MuxMetrics {
        MuxMetrics {
            frames_routed: self.frames_routed.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            unknown_session_dropped: self.unknown_session_dropped.load(Ordering::Relaxed),
            frames_forwarded: self.frames_forwarded.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            peers_down: self.peers_down.load(Ordering::Relaxed),
            peer_down_latency_us: self.peer_down_latency_us.load(Ordering::Relaxed),
            peers_recovered: self.peers_recovered.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            heartbeats_seen: self.heartbeats_seen.load(Ordering::Relaxed),
        }
    }
}

/// One item of a session's inbound queue: frames and peer-death events
/// share the queue so a role blocked in `recv` wakes the moment a peer is
/// declared dead.
enum MuxItem {
    Frame(PartyId, Bytes),
    PeerDown(PartyId),
}

struct Route {
    // Distinguishes reincarnations of one session id, so a stale
    // endpoint's Drop can never tear down a reopened session's route.
    generation: u64,
    tx: SyncSender<MuxItem>,
}

/// Peer-liveness bookkeeping, enabled by [`SessionMux::start_liveness`].
struct Liveness {
    /// Watched peers and when each was last heard from (any frame counts,
    /// heartbeats merely cover idle links).
    last_seen: HashMap<PartyId, Instant>,
    /// Peers currently under a death verdict. A verdict is declared once
    /// per death; a peer that resumes sending is revived (removed here),
    /// and a later death counts as a new event.
    down: HashSet<PartyId>,
    /// Heartbeat send interval.
    interval: Duration,
    /// Silence budget in intervals before a watched peer is declared dead.
    misses: u32,
}

impl Liveness {
    fn budget(&self) -> Duration {
        self.interval * self.misses.max(1)
    }
}

/// The routing decision a forwarding hook returns for a frame with no
/// local route: the physical peer to relay the (still sealed) bytes to,
/// or `None` to drop it as unknown.
pub type Forwarder = dyn Fn(PartyId, SessionId, &Bytes) -> Option<PartyId> + Send + Sync;

struct MuxShared<T: Transport> {
    inner: T,
    routes: Mutex<HashMap<SessionId, Route>>,
    liveness: Mutex<Option<Liveness>>,
    forwarder: Mutex<Option<Arc<Forwarder>>>,
    metrics: MetricCells,
    queue_depth: usize,
    next_generation: AtomicU64,
    shutdown: AtomicBool,
}

impl<T: Transport> MuxShared<T> {
    fn remove_route(&self, session: SessionId, generation: Option<u64>) {
        let mut routes = self.routes.lock();
        if let Some(route) = routes.get(&session) {
            if generation.is_none_or(|g| g == route.generation) {
                routes.remove(&session);
            }
        }
    }

    /// Delivers one item to a session queue with bounded backpressure:
    /// try-send, stall up to [`STALL_BUDGET`] on a full queue, then shed.
    fn deliver(
        &self,
        session: SessionId,
        generation: u64,
        tx: &SyncSender<MuxItem>,
        item: MuxItem,
    ) {
        let routed = matches!(item, MuxItem::Frame(..));
        match tx.try_send(item) {
            Ok(()) => {
                if routed {
                    self.metrics.frames_routed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                // Endpoint dropped without close_session: reap the route.
                self.remove_route(session, Some(generation));
                self.metrics
                    .unknown_session_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(item)) => {
                // Bounded backpressure, then shed: stall briefly for the
                // slow session, but never let it block its siblings
                // indefinitely.
                let deadline = Instant::now() + STALL_BUDGET;
                let mut item = item;
                loop {
                    std::thread::sleep(Duration::from_millis(1));
                    match tx.try_send(item) {
                        Ok(()) => {
                            if routed {
                                self.metrics.frames_routed.fetch_add(1, Ordering::Relaxed);
                            }
                            break;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.remove_route(session, Some(generation));
                            break;
                        }
                        Err(TrySendError::Full(back)) if Instant::now() < deadline => {
                            item = back;
                        }
                        Err(TrySendError::Full(_)) => {
                            self.metrics.shed_frames.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Declares a peer dead exactly once: counts it, records the silence
    /// duration as detection latency, and broadcasts an in-band
    /// [`MuxItem::PeerDown`] to every open session so blocked receivers
    /// fail fast with [`TransportError::PeerDown`] instead of waiting out
    /// their protocol timeouts. Sessions that never talk to the peer
    /// simply ignore the transient error at the protocol layer.
    ///
    /// The in-band marker is the *wakeup* path only — it can be shed when
    /// a session's queue stays full past the stall budget, and sessions
    /// opened after the declaration never see it. The durable record is
    /// the liveness `down` set, which every endpoint consults on idle
    /// receive slices ([`MuxShared::unreported_down`]), so no session can
    /// permanently miss a death.
    fn declare_peer_down(&self, peer: PartyId) {
        {
            let mut liveness = self.liveness.lock();
            let silence_us = match liveness.as_mut() {
                Some(state) => {
                    if !state.down.insert(peer) {
                        return; // already declared
                    }
                    state
                        .last_seen
                        .get(&peer)
                        .map_or(0, |seen| seen.elapsed().as_micros() as u64)
                }
                // Liveness tracking off: transport-notified deaths still
                // broadcast (latency ~0), but only once per peer requires
                // the tracker — initialize a bare one.
                None => {
                    *liveness = Some(Liveness {
                        last_seen: HashMap::new(),
                        down: HashSet::from([peer]),
                        interval: DEFAULT_HEARTBEAT_INTERVAL,
                        misses: DEFAULT_LIVENESS_MISSES,
                    });
                    0
                }
            };
            self.metrics.peers_down.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .peer_down_latency_us
                .fetch_add(silence_us, Ordering::Relaxed);
        }
        let targets: Vec<(SessionId, u64, SyncSender<MuxItem>)> = {
            let routes = self.routes.lock();
            routes
                .iter()
                .map(|(&s, r)| (s, r.generation, r.tx.clone()))
                .collect()
        };
        for (session, generation, tx) in targets {
            self.deliver(session, generation, &tx, MuxItem::PeerDown(peer));
        }
    }

    /// The durable half of peer-death delivery: returns one declared-dead
    /// peer this endpoint has not reported yet (recording it in
    /// `reported`), or `None`. Endpoints call this on idle receive
    /// slices, which makes death reports survive a shed in-band marker
    /// and reach sessions opened *after* the declaration — at the cost of
    /// one liveness-lock peek per idle slice.
    fn unreported_down(&self, reported: &mut HashSet<PartyId>) -> Option<PartyId> {
        let liveness = self.liveness.lock();
        let state = liveness.as_ref()?;
        let peer = state.down.iter().find(|p| !reported.contains(p)).copied()?;
        reported.insert(peer);
        Some(peer)
    }

    /// Refreshes a watched peer's liveness clock (any inbound traffic
    /// counts — heartbeats only cover idle links) and reports watched
    /// peers whose silence exceeded the budget. A frame from a peer in
    /// the `down` set **revives** it: the death verdict is removed, so
    /// sessions opened afterwards (e.g. peer-failure retries) run against
    /// the recovered peer instead of failing on a stale verdict. Sessions
    /// that already consumed the death keep their typed failure — revival
    /// is forward-looking only.
    fn observe_liveness(&self, heard_from: Option<PartyId>) -> Vec<PartyId> {
        let mut liveness = self.liveness.lock();
        let Some(state) = liveness.as_mut() else {
            return Vec::new();
        };
        if let Some(peer) = heard_from {
            if state.down.remove(&peer) {
                self.metrics.peers_recovered.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(seen) = state.last_seen.get_mut(&peer) {
                *seen = Instant::now();
            }
        }
        let budget = state.budget();
        state
            .last_seen
            .iter()
            .filter(|(peer, seen)| !state.down.contains(peer) && seen.elapsed() > budget)
            .map(|(&peer, _)| peer)
            .collect()
    }
}

/// Demultiplexes one physical [`Transport`] endpoint into per-session
/// virtual endpoints. Cheap to clone (all clones share the endpoint).
pub struct SessionMux<T: Transport + 'static> {
    shared: Arc<MuxShared<T>>,
}

impl<T: Transport + 'static> Clone for SessionMux<T> {
    fn clone(&self) -> Self {
        SessionMux {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Transport + 'static> SessionMux<T> {
    /// Wraps a physical endpoint with the default per-session queue depth
    /// and starts the pump thread.
    pub fn new(inner: T) -> Self {
        Self::with_queue_depth(inner, DEFAULT_SESSION_QUEUE)
    }

    /// Wraps a physical endpoint with an explicit per-session inbound
    /// queue bound and starts the pump thread.
    ///
    /// # Panics
    ///
    /// Panics when `queue_depth` is zero.
    pub fn with_queue_depth(inner: T, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "session queue depth must be positive");
        let shared = Arc::new(MuxShared {
            inner,
            routes: Mutex::new(HashMap::new()),
            liveness: Mutex::new(None),
            forwarder: Mutex::new(None),
            metrics: MetricCells::default(),
            queue_depth,
            next_generation: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let pump = Arc::clone(&shared);
        // Pump failures must not take the process down; the thread exits
        // and every session sees Disconnected. If the spawn itself fails
        // the mux still works for sends; receives starve and sessions
        // abort via their timeouts.
        let _ = std::thread::Builder::new()
            .name(format!("mux-pump-{}", shared.inner.local_id()))
            .spawn(move || pump_loop(&pump));
        SessionMux { shared }
    }

    /// The physical endpoint's party id (shared by every session lane).
    pub fn local_id(&self) -> PartyId {
        self.shared.inner.local_id()
    }

    /// Opens a virtual endpoint for `session`. Frames stamped with this id
    /// are routed to (only) the returned endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::DuplicateSession`] when the session is
    /// already open on this mux.
    pub fn open_session(&self, session: SessionId) -> Result<MuxEndpoint<T>, TransportError> {
        if session == SessionId::LIVENESS {
            // The liveness plane permanently owns this id; frames stamped
            // with it are pump-consumed heartbeats, never session traffic.
            return Err(TransportError::DuplicateSession(session));
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(self.shared.queue_depth);
        let generation = self.shared.next_generation.fetch_add(1, Ordering::Relaxed);
        let mut routes = self.shared.routes.lock();
        if routes.contains_key(&session) {
            return Err(TransportError::DuplicateSession(session));
        }
        routes.insert(session, Route { generation, tx });
        self.shared
            .metrics
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        Ok(MuxEndpoint {
            session,
            generation,
            shared: Arc::clone(&self.shared),
            inbox: Mutex::new(rx),
            reported_down: Mutex::new(HashSet::new()),
        })
    }

    /// Closes a session's route. Its endpoint (if still alive) sees
    /// [`TransportError::Disconnected`] on the next receive — the abort
    /// lever a server pulls to cancel one session without touching its
    /// siblings. Frames for the id are henceforth counted as unknown.
    pub fn close_session(&self, session: SessionId) {
        self.shared.remove_route(session, None);
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.shared.routes.lock().len()
    }

    /// A snapshot of the mux's traffic counters.
    pub fn metrics(&self) -> MuxMetrics {
        self.shared.metrics.snapshot()
    }

    /// Installs the forwarding hook consulted for inbound frames whose
    /// session has no local route (replacing any previous hook).
    ///
    /// The hook sees `(from, session, sealed bytes)` and returns the
    /// physical peer to relay the frame to — still sealed, never decoded
    /// — or `None` to drop it as unknown. Returning the mux's own party
    /// id also drops the frame (a self-hop would loop). The hook runs on
    /// the pump thread: keep it cheap (a ring lookup), never block in
    /// it, and never call back into this mux from it.
    ///
    /// This is the fleet's inter-node forwarding path: a node that is
    /// not a session's owner relays the session's frames one hop toward
    /// the owner, Chord-style, and only the owner ever opens them.
    pub fn set_forwarder(
        &self,
        hook: impl Fn(PartyId, SessionId, &Bytes) -> Option<PartyId> + Send + Sync + 'static,
    ) {
        *self.shared.forwarder.lock() = Some(Arc::new(hook));
    }

    /// Removes the forwarding hook; unrouted frames are dropped (and
    /// counted unknown) again.
    pub fn clear_forwarder(&self) {
        *self.shared.forwarder.lock() = None;
    }

    /// Asks the pump thread to exit. A loopback wake frame (a heartbeat to
    /// our own party id) kicks the pump out of its blocking receive so
    /// teardown completes promptly instead of lagging a full poll tick;
    /// when the physical transport has no self-route the wake is skipped
    /// and the poll interval bounds the latency as before. Open sessions
    /// stop receiving (their endpoints see `Disconnected`); in-flight
    /// sends still work.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let me = self.shared.inner.local_id();
        let _ = self.shared.inner.send(me, encode_heartbeat(me, 0));
    }

    /// Starts peer-liveness tracking with the default startup grace of
    /// one liveness budget (`interval × misses`) — right when every
    /// watched peer is already up (an in-process server's lanes).
    /// Deployments where peers may bind late (a TCP mesh coming up in
    /// any order) should use [`SessionMux::start_liveness_with_grace`]
    /// and pass at least the transport's connect window.
    pub fn start_liveness(&self, watch: Vec<PartyId>, interval: Duration, misses: u32) {
        self.start_liveness_with_grace(watch, interval, misses, interval * misses.max(1));
    }

    /// Starts peer-liveness tracking: a background emitter sends a
    /// heartbeat to every peer in `watch` each `interval`, and the pump
    /// declares any watched peer dead after `misses` intervals of total
    /// silence (any inbound frame refreshes the clock, so heartbeats only
    /// matter on idle links). A peer whose death the transport reports
    /// directly (socket close, hub kill) is declared immediately; a peer
    /// whose heartbeat *sends* keep failing is declared after `misses`
    /// consecutive failures (one failure can be a startup race).
    ///
    /// No watched peer is declared within `grace` of this call — peers of
    /// a mesh starting up may bind later than this mux, and the grace
    /// must cover that window (for TCP, at least the connect window) or
    /// late binders get falsely declared dead.
    ///
    /// On a declared death every open session receives an in-band
    /// [`TransportError::PeerDown`]; see
    /// [`MuxMetrics::peers_down`] / [`MuxMetrics::peer_down_latency_us`]
    /// for the observability side.
    ///
    /// Call at most once per mux, before traffic flows. Detection can be
    /// delayed (never falsified) while the pump is stalling on a full
    /// session queue — data traffic keeps the healthy peers' clocks
    /// fresh either way.
    pub fn start_liveness_with_grace(
        &self,
        watch: Vec<PartyId>,
        interval: Duration,
        misses: u32,
        grace: Duration,
    ) {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        let me = self.shared.inner.local_id();
        // Seeding the clocks `grace` into the future suppresses silence
        // accounting until the mesh had time to come up (Instant::elapsed
        // saturates to zero for future instants).
        let seed = Instant::now() + grace.saturating_sub(interval * misses.max(1));
        {
            let mut liveness = self.shared.liveness.lock();
            let state = liveness.get_or_insert_with(|| Liveness {
                last_seen: HashMap::new(),
                down: HashSet::new(),
                interval,
                misses,
            });
            state.interval = interval;
            state.misses = misses;
            // Never watch ourselves: nobody heartbeats us on our own
            // endpoint, so a self-entry would "detect" our own silence.
            for &peer in watch.iter().filter(|&&p| p != me) {
                state.last_seen.entry(peer).or_insert(seed);
            }
        }
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::Builder::new()
            .name(format!("mux-heartbeat-{}", self.shared.inner.local_id()))
            .spawn(move || heartbeat_loop(&shared, watch, interval, misses, grace));
    }
}

fn heartbeat_loop<T: Transport>(
    shared: &MuxShared<T>,
    watch: Vec<PartyId>,
    interval: Duration,
    misses: u32,
    grace: Duration,
) {
    let me = shared.inner.local_id();
    let mut seq = 1u64;
    let mut gone: HashSet<PartyId> = HashSet::new();
    let mut consecutive_failures: HashMap<PartyId, u32> = HashMap::new();
    let grace_end = Instant::now() + grace;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Resume beating peers the pump revived (their death verdict was
        // withdrawn after they sent again).
        if !gone.is_empty() {
            let liveness = shared.liveness.lock();
            if let Some(state) = liveness.as_ref() {
                gone.retain(|p| state.down.contains(p));
            }
        }
        for &peer in &watch {
            if peer == me || gone.contains(&peer) {
                continue;
            }
            // send_liveness, not send: the bounded-latency variant, so a
            // dead peer's connect window cannot stall this loop long
            // enough to starve beats to the healthy peers.
            match shared.inner.send_liveness(peer, encode_heartbeat(me, seq)) {
                Ok(()) => {
                    consecutive_failures.remove(&peer);
                    shared
                        .metrics
                        .heartbeats_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    // Unreachable from the send side. Failures inside the
                    // startup grace are expected (the peer may not have
                    // bound yet) and never counted; afterwards the same
                    // `misses` budget the receive side uses decides when
                    // it becomes a death report.
                    if Instant::now() < grace_end {
                        continue;
                    }
                    let fails = consecutive_failures.entry(peer).or_insert(0);
                    *fails += 1;
                    if *fails >= misses.max(1) {
                        gone.insert(peer);
                        shared.declare_peer_down(peer);
                    }
                }
            }
        }
        seq += 1;
        std::thread::sleep(interval);
    }
}

fn pump_loop<T: Transport>(shared: &MuxShared<T>) {
    // recv_timeout rather than recv: the poll bounds how stale the
    // liveness clock check can get, and backstops shutdown when the
    // loopback wake frame cannot be delivered.
    const POLL: Duration = Duration::from_millis(200);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let recv = shared.inner.recv_timeout(POLL);
        let heard_from = match &recv {
            Ok((from, _)) => Some(*from),
            _ => None,
        };
        // Any inbound frame refreshes its sender's liveness clock; silent
        // watched peers past the budget are declared dead here, so
        // detection latency is O(heartbeat budget + poll tick), not
        // O(session timeout).
        for silent in shared.observe_liveness(heard_from) {
            shared.declare_peer_down(silent);
        }
        let (from, payload) = match recv {
            Ok(delivery) => delivery,
            Err(TransportError::Timeout) => continue,
            Err(TransportError::PeerDown(peer)) => {
                // The transport itself reported the death (socket close,
                // hub kill): broadcast and keep pumping for the others.
                shared.declare_peer_down(peer);
                continue;
            }
            Err(TransportError::OversizeFrame { from, .. }) => {
                // The peer's connection was dropped over a protocol
                // violation — its frames stop arriving, so treat it as a
                // death: sessions talking to it fail fast, siblings keep
                // running.
                shared.declare_peer_down(from);
                continue;
            }
            Err(_) => break,
        };
        if decode_heartbeat(&payload).is_some() {
            // Pure liveness traffic (or the shutdown wake): the clock was
            // refreshed above; never routed to a session.
            shared
                .metrics
                .heartbeats_seen
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let Some(session) = peek_session(&payload) else {
            shared
                .metrics
                .unknown_session_dropped
                .fetch_add(1, Ordering::Relaxed);
            continue;
        };
        let route = {
            let routes = shared.routes.lock();
            routes.get(&session).map(|r| (r.generation, r.tx.clone()))
        };
        let Some((generation, tx)) = route else {
            // No local route: offer the frame to the forwarding hook
            // before counting it unknown. The hook only picks the next
            // physical hop — the sealed bytes are relayed as-is, never
            // decoded here (the fleet's zero-decode inter-node relay,
            // same idiom as `sap-core`'s anonymizing block relay).
            let forward = shared.forwarder.lock().clone();
            let next_hop = forward.and_then(|f| f(from, session, &payload));
            match next_hop {
                Some(hop) if hop != shared.inner.local_id() => {
                    match shared.inner.send(hop, payload) {
                        Ok(()) => {
                            shared
                                .metrics
                                .frames_forwarded
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // The hop is unreachable (dead or gone): the
                            // frame is lost exactly like an unknown one;
                            // the sender's liveness plane owns recovery.
                            shared
                                .metrics
                                .unknown_session_dropped
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                _ => {
                    shared
                        .metrics
                        .unknown_session_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            continue;
        };
        shared.deliver(session, generation, &tx, MuxItem::Frame(from, payload));
    }
    // Pump is done (shutdown or physical disconnect): drop every route's
    // sender so blocked session endpoints see Disconnected immediately
    // instead of waiting out their protocol timeouts.
    shared.routes.lock().clear();
}

/// One session's virtual endpoint over a shared physical transport.
///
/// Sends pass straight through to the physical endpoint (payloads are v3
/// sealed frames that already carry the session stamp); receives drain the
/// session's bounded queue. Dropping the endpoint closes the session's
/// route on the mux.
pub struct MuxEndpoint<T: Transport + 'static> {
    session: SessionId,
    generation: u64,
    shared: Arc<MuxShared<T>>,
    inbox: Mutex<Receiver<MuxItem>>,
    /// Peers whose death this endpoint already surfaced (in-band marker
    /// or idle-slice pickup) — each death is reported at most twice per
    /// endpoint, never repeatedly.
    reported_down: Mutex<HashSet<PartyId>>,
}

impl<T: Transport + 'static> MuxEndpoint<T> {
    /// The session this endpoint belongs to.
    pub fn session(&self) -> SessionId {
        self.session
    }

    fn pop_item(&self, item: MuxItem) -> Result<(PartyId, Bytes), TransportError> {
        match item {
            MuxItem::Frame(from, payload) => Ok((from, payload)),
            MuxItem::PeerDown(peer) => {
                self.reported_down.lock().insert(peer);
                Err(TransportError::PeerDown(peer))
            }
        }
    }
}

impl<T: Transport + 'static> Transport for MuxEndpoint<T> {
    fn local_id(&self) -> PartyId {
        self.shared.inner.local_id()
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        let len = payload.len() as u64;
        self.shared.inner.send(to, payload)?;
        // Counted only after the physical send succeeds, so bytes_sealed
        // never reports traffic that failed to reach the wire.
        self.shared
            .metrics
            .bytes_sent
            .fetch_add(len, Ordering::Relaxed);
        self.shared
            .metrics
            .frames_sent
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        // Sliced rather than parked forever: each idle slice consults the
        // durable down set (see recv_timeout), so a blocking receiver
        // cannot miss a death whose in-band marker was shed.
        loop {
            match self.recv_timeout(Duration::from_millis(200)) {
                Err(TransportError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        let popped = self.inbox.lock().recv_timeout(timeout);
        match popped {
            Ok(item) => self.pop_item(item),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
            Err(RecvTimeoutError::Timeout) => {
                // Idle slice: consult the durable down set, so a death
                // whose in-band marker was shed — or one declared before
                // this session opened — still surfaces within one slice.
                // Checked only after the queue drained dry, preserving
                // frames-before-marker ordering.
                match self.shared.unreported_down(&mut self.reported_down.lock()) {
                    Some(peer) => Err(TransportError::PeerDown(peer)),
                    None => Err(TransportError::Timeout),
                }
            }
        }
    }
}

impl<T: Transport + 'static> Drop for MuxEndpoint<T> {
    fn drop(&mut self) {
        self.shared
            .remove_route(self.session, Some(self.generation));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WireCodec;
    use crate::node::{Node, NodeError};
    use crate::transport::InMemoryHub;

    /// Two muxed lanes over one hub, with an endpoint pair per session.
    fn mux_pair() -> (
        SessionMux<crate::transport::Endpoint>,
        SessionMux<crate::transport::Endpoint>,
    ) {
        let hub = InMemoryHub::new();
        (
            SessionMux::new(hub.endpoint(PartyId(1))),
            SessionMux::new(hub.endpoint(PartyId(2))),
        )
    }

    fn node_for(
        mux: &SessionMux<crate::transport::Endpoint>,
        session: SessionId,
        secret: u64,
    ) -> Node<MuxEndpoint<crate::transport::Endpoint>> {
        Node::for_session(
            mux.open_session(session).unwrap(),
            WireCodec,
            secret,
            session,
        )
    }

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn sessions_interleave_over_one_mesh() {
        let (m1, m2) = mux_pair();
        let a1 = node_for(&m1, SessionId(1), 7);
        let a2 = node_for(&m1, SessionId(2), 7);
        let b1 = node_for(&m2, SessionId(1), 7);
        let b2 = node_for(&m2, SessionId(2), 7);

        a1.send_msg(PartyId(2), &10u32).unwrap();
        a2.send_msg(PartyId(2), &20u32).unwrap();
        a1.send_msg(PartyId(2), &11u32).unwrap();

        let (_, x1): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        let (_, x2): (PartyId, u32) = b2.recv_msg_timeout(WAIT).unwrap();
        let (_, x3): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        assert_eq!((x1, x2, x3), (10, 20, 11));
        assert!(m2.metrics().frames_routed >= 3);
    }

    #[test]
    fn unknown_session_frames_counted_and_dropped() {
        let (m1, m2) = mux_pair();
        let a9 = node_for(&m1, SessionId(9), 7); // not open on m2
        let b1 = node_for(&m2, SessionId(1), 7);

        a9.send_msg(PartyId(2), &1u32).unwrap();
        // The live session stays usable after the stray frame.
        let a1 = node_for(&m1, SessionId(1), 7);
        a1.send_msg(PartyId(2), &2u32).unwrap();
        let (_, got): (PartyId, u32) = b1.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 2);
        assert_eq!(m2.metrics().unknown_session_dropped, 1);
    }

    #[test]
    fn forwarder_relays_unrouted_frames_without_decoding() {
        use crate::crypto::ChannelKey;
        use crate::frame::{open_frame, seal_frame, Frame, FrameKind};

        let hub = InMemoryHub::new();
        let a = hub.endpoint(PartyId(1));
        let relay = SessionMux::new(hub.endpoint(PartyId(2)));
        let owner = SessionMux::new(hub.endpoint(PartyId(3)));
        let session = SessionId(77);

        // The relay mux never opens session 77; its hook routes the
        // frame one hop onward. Frames of other sessions stay unknown.
        relay.set_forwarder(move |_, s, _| (s == session).then_some(PartyId(3)));
        let owner_ep = owner.open_session(session).unwrap();

        let key = ChannelKey::derive(9, 77, 77);
        let sealed = seal_frame(
            key,
            1,
            session,
            &Frame {
                kind: FrameKind::Control,
                msg_id: 1,
                seq: 0,
                last: true,
                payload: Bytes::from_static(b"fleet"),
            },
        );
        a.send(PartyId(2), sealed.clone()).unwrap();

        let (from, bytes) = owner_ep.recv_timeout(WAIT).unwrap();
        // The physical sender is the relaying hop; the sealed bytes are
        // untouched, so the owner opens them under the original key.
        assert_eq!(from, PartyId(2));
        assert_eq!(bytes, sealed);
        let (s, frame) = open_frame(key, &bytes).unwrap();
        assert_eq!(s, session);
        assert_eq!(&frame.payload[..], b"fleet");
        assert_eq!(relay.metrics().frames_forwarded, 1);
        assert_eq!(relay.metrics().unknown_session_dropped, 0);

        // A frame of a session the hook disowns is dropped as unknown.
        let stray = seal_frame(
            key,
            2,
            SessionId(78),
            &Frame {
                kind: FrameKind::Control,
                msg_id: 2,
                seq: 0,
                last: true,
                payload: Bytes::from_static(b"stray"),
            },
        );
        a.send(PartyId(2), stray).unwrap();
        let deadline = Instant::now() + WAIT;
        while relay.metrics().unknown_session_dropped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(relay.metrics().unknown_session_dropped, 1);
        assert_eq!(relay.metrics().frames_forwarded, 1);
    }

    #[test]
    fn garbage_frame_aborts_only_the_session_it_claims() {
        let (m1, m2) = mux_pair();
        let a1 = node_for(&m1, SessionId(1), 7);
        let a2 = node_for(&m1, SessionId(2), 7);
        let b1 = node_for(&m2, SessionId(1), 7);
        let b2 = node_for(&m2, SessionId(2), 7);

        // Hand-craft a garbage frame claiming session 1: long enough to be
        // a v3 envelope, sealed under no valid key.
        let mut garbage = vec![0u8; 48];
        garbage[..8].copy_from_slice(&1u64.to_le_bytes());
        a1.transport()
            .send(PartyId(2), Bytes::from(garbage))
            .unwrap();
        a2.send_msg(PartyId(2), &99u32).unwrap();

        // Session 1 aborts with a crypto error…
        let err = b1.recv_msg_timeout::<u32>(WAIT).unwrap_err();
        assert!(matches!(err, NodeError::Frame(_)), "{err}");
        // …while session 2 is untouched.
        let (_, got): (PartyId, u32) = b2.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 99);
    }

    #[test]
    fn full_session_queue_sheds_instead_of_blocking_siblings() {
        let hub = InMemoryHub::new();
        let m2 = SessionMux::with_queue_depth(hub.endpoint(PartyId(2)), 2);
        let m1 = SessionMux::new(hub.endpoint(PartyId(1)));
        let slow = node_for(&m1, SessionId(1), 7);
        let fast = node_for(&m1, SessionId(2), 7);
        let b_slow = m2.open_session(SessionId(1)).unwrap();
        let b_fast = node_for(&m2, SessionId(2), 7);

        // Overfill session 1's depth-2 queue; nobody drains it.
        for i in 0..8u32 {
            slow.send_msg(PartyId(2), &i).unwrap();
        }
        // Session 2 still flows.
        fast.send_msg(PartyId(2), &1234u32).unwrap();
        let (_, got): (PartyId, u32) = b_fast.recv_msg_timeout(WAIT).unwrap();
        assert_eq!(got, 1234);

        // Wait out the stall budget for the remaining sheds to resolve.
        let deadline = Instant::now() + Duration::from_secs(10);
        while m2.metrics().shed_frames == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(m2.metrics().shed_frames > 0, "overflow must shed");
        drop(b_slow);
    }

    #[test]
    fn close_session_disconnects_endpoint() {
        let (m1, _m2) = mux_pair();
        let a1 = m1.open_session(SessionId(1)).unwrap();
        m1.close_session(SessionId(1));
        assert_eq!(a1.recv().unwrap_err(), TransportError::Disconnected);
        assert_eq!(m1.open_sessions(), 0);
        // The id can be reopened after close.
        assert!(m1.open_session(SessionId(1)).is_ok());
    }

    #[test]
    fn shutdown_wakes_pump_promptly() {
        // The pump's poll tick is 200 ms; the loopback wake frame must
        // beat it by a wide margin so teardown never lags a tick.
        let (m1, _m2) = mux_pair();
        let a1 = m1.open_session(SessionId(1)).unwrap();
        let start = Instant::now();
        m1.shutdown();
        assert_eq!(a1.recv().unwrap_err(), TransportError::Disconnected);
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "shutdown took {:?}, pump was not woken",
            start.elapsed()
        );
    }

    #[test]
    fn silent_peer_detected_by_missed_heartbeats() {
        let (m1, m2) = mux_pair();
        let interval = Duration::from_millis(25);
        let misses = 3;
        // Both sides beat; any regular frame would also refresh the clock.
        m1.start_liveness(vec![PartyId(2)], interval, misses);
        m2.start_liveness(vec![PartyId(1)], interval, misses);
        let a1 = m1.open_session(SessionId(1)).unwrap();
        std::thread::sleep(interval * 6);
        assert_eq!(m1.metrics().peers_down, 0, "live peer never declared");
        assert!(m1.metrics().heartbeats_seen > 0, "beats flowed");

        // Party 2 goes silent (shutdown stops its emitter, but its hub
        // endpoint stays registered — only the heartbeat absence tells).
        m2.shutdown();
        let start = Instant::now();
        let err = a1.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, TransportError::PeerDown(PartyId(2)));
        assert!(
            start.elapsed() < 2 * interval * misses + Duration::from_millis(400),
            "detection took {:?}, budget is {:?}",
            start.elapsed(),
            interval * misses
        );
        let m = m1.metrics();
        assert_eq!(m.peers_down, 1);
        assert!(
            m.peer_down_latency_us >= (interval * misses).as_micros() as u64,
            "latency {} below the silence budget",
            m.peer_down_latency_us
        );
    }

    #[test]
    fn transport_reported_death_broadcasts_to_every_session() {
        let hub = InMemoryHub::new();
        let m2 = SessionMux::new(hub.endpoint(PartyId(2)));
        let _dead = hub.endpoint(PartyId(1));
        let a = m2.open_session(SessionId(1)).unwrap();
        let b = m2.open_session(SessionId(2)).unwrap();
        hub.kill(PartyId(1));
        assert_eq!(
            a.recv_timeout(WAIT).unwrap_err(),
            TransportError::PeerDown(PartyId(1))
        );
        assert_eq!(
            b.recv_timeout(WAIT).unwrap_err(),
            TransportError::PeerDown(PartyId(1))
        );
        // Declared exactly once, near-zero detection latency, and the
        // sessions stay open (the error is transient, not a disconnect).
        assert_eq!(m2.metrics().peers_down, 1);
        assert_eq!(m2.open_sessions(), 2);
    }

    #[test]
    fn late_opened_session_learns_of_prior_death() {
        // The in-band marker only reaches sessions open at declaration
        // time (and can be shed under backpressure); the durable down
        // set must cover everyone else: a session opened *after* the
        // death still gets the typed failure on its first idle slice.
        let hub = InMemoryHub::new();
        let m2 = SessionMux::new(hub.endpoint(PartyId(2)));
        let _dead = hub.endpoint(PartyId(1));
        hub.kill(PartyId(1));
        let deadline = Instant::now() + WAIT;
        while m2.metrics().peers_down == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m2.metrics().peers_down, 1);

        let late = m2.open_session(SessionId(9)).unwrap();
        assert_eq!(
            late.recv_timeout(Duration::from_millis(200)).unwrap_err(),
            TransportError::PeerDown(PartyId(1))
        );
        // Reported once per endpoint; afterwards idle receives time out
        // normally instead of replaying the death forever.
        assert_eq!(
            late.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn recovered_peer_is_not_reported_to_new_sessions() {
        use crate::frame::encode_heartbeat;

        let hub = InMemoryHub::new();
        let m2 = SessionMux::new(hub.endpoint(PartyId(2)));
        let dead = hub.endpoint(PartyId(1));
        hub.kill(PartyId(1));
        let deadline = Instant::now() + WAIT;
        while m2.metrics().peers_down == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(dead);

        // Party 1's process restarts and sends again: the verdict lifts.
        let revived = hub.endpoint(PartyId(1));
        revived
            .send(PartyId(2), encode_heartbeat(PartyId(1), 1))
            .unwrap();
        let deadline = Instant::now() + WAIT;
        while m2.metrics().peers_recovered == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m2.metrics().peers_recovered, 1);

        // A session opened now (e.g. a peer-failure retry) runs against
        // the recovered peer instead of failing on the stale verdict.
        let late = m2.open_session(SessionId(5)).unwrap();
        assert_eq!(
            late.recv_timeout(Duration::from_millis(100)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn liveness_session_id_is_reserved() {
        let (m1, _m2) = mux_pair();
        assert!(matches!(
            m1.open_session(SessionId::LIVENESS),
            Err(TransportError::DuplicateSession(SessionId::LIVENESS))
        ));
    }

    #[test]
    fn duplicate_session_is_typed_error() {
        let (m1, _m2) = mux_pair();
        let _a = m1.open_session(SessionId(4)).unwrap();
        let err = match m1.open_session(SessionId(4)) {
            Ok(_) => panic!("duplicate session must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err, TransportError::DuplicateSession(SessionId(4)));
    }
}
