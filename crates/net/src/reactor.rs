//! Readiness-driven TCP transport: one reactor thread, every lane.
//!
//! The threaded backend ([`crate::tcp`]) spends one OS thread per inbound
//! connection and one blocking `write_all` per frame — fine for a handful
//! of lanes, hopeless for a thousand. This module multiplexes **all**
//! connections of one endpoint onto a single reactor thread driven by the
//! vendored readiness shim ([`epoll`]): edge-triggered `epoll(7)` on
//! Linux, with a portable level-triggered `poll(2)` fallback selectable
//! at runtime (`SAP_POLLER=poll`).
//!
//! Wire compatibility is absolute: a reactor endpoint speaks byte-for-byte
//! the threaded backend's protocol (8-byte little-endian sender id once
//! per connection, then `[len: u32 LE][payload]` frames, outbound
//! connections send-only / inbound receive-only), so the two backends
//! interoperate within one mesh and either can be A/B'd against the other
//! ([`crate::tcp::local_mesh`] picks via `SAP_NET_BACKEND`).
//!
//! # Structure
//!
//! - [`ReadMachine`] / [`WriteMachine`] — per-connection state machines.
//!   Pure, synchronous, and separately unit-tested (including one-byte-at-
//!   a-time torture feeds): the reactor loop just moves bytes between
//!   sockets and machines.
//! - The reactor thread owns the poller, the listener, and every
//!   connection. Other threads talk to it through a command channel plus
//!   a pipe [`epoll::Waker`] — no socket is ever touched off-thread.
//! - Connects stay blocking, but in **transient** connector threads that
//!   retry with the same backoff policy as the threaded backend and then
//!   hand the socket to the reactor. A pending connect is shared state:
//!   regular sends extend its deadline, liveness probes ride it without
//!   ever opening a second socket ([`Transport::send_liveness`] is
//!   allocation- and connection-free while a connect or drain is already
//!   in flight).
//! - Outbound frames queue in the connection's [`WriteMachine`] and leave
//!   in coalesced `writev` batches (length prefix + payload + as many
//!   queued frames as fit one vectored call). Write interest is armed
//!   only while bytes are queued, so idle lanes cost zero wakeups.
//!
//! # Backpressure
//!
//! [`Transport::send`] is asynchronous up to [`HIGH_WATER`] queued bytes
//! per peer, then blocks on a condvar until the reactor drains the queue
//! — a slow peer stalls its sender exactly like the threaded backend's
//! blocking `write_all`, without stalling any other lane.
//! [`Transport::send_liveness`] never blocks: over the high-water mark it
//! drops the beat (the link is demonstrably active), and while a connect
//! is pending it enqueues and returns.
//!
//! # Failure surface
//!
//! Failures surface exactly like the threaded backend's, just typed
//! through the inbox where the threaded path could report synchronously:
//! a connect that exhausts its window marks the peer failed (the next
//! send consumes a [`TransportError::ConnectFailed`]) and posts an
//! in-band `PeerDown`; an inbound peer's socket closing posts `PeerDown`;
//! a peer claiming a frame over [`crate::tcp::MAX_PAYLOAD`] gets its
//! connection dropped and a typed [`TransportError::OversizeFrame`]
//! surfaces to the receiver — the claimed length is **never allocated**.

use crate::pool;
use crate::tcp::{
    CONNECT_BACKOFF_CAP, CONNECT_BACKOFF_FLOOR, DEFAULT_CONNECT_WINDOW, HEARTBEAT_CONNECT_WINDOW,
    MAX_PAYLOAD,
};
use crate::transport::{pop_delivery, Delivery, PartyId, Transport, TransportError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use epoll::{BackendKind, Event, Interest, Poller, Waker};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-peer outbound queue bound, in payload bytes. A sender crossing it
/// blocks until the reactor drains the peer's queue below the mark.
pub const HIGH_WATER: usize = 8 * 1024 * 1024;

/// Reactor-side socket read buffer (one per reactor, reused forever).
const READ_CHUNK: usize = 256 * 1024;

/// Kernel socket buffer size requested (`SO_SNDBUF`/`SO_RCVBUF`) for every
/// reactor connection. Large buffers let a whole queued burst enter the
/// kernel in one writev and drain in few reads — on a single-core host
/// that directly cuts the sender↔receiver ping-pong context switches that
/// dominate loopback streaming. Best-effort: the kernel may clamp it.
const SOCK_BUF_BYTES: usize = 1024 * 1024;

/// Upper bound on the *up-front* payload buffer acquisition. A frame
/// claiming more grows incrementally with bytes actually received, so a
/// hostile length claim costs its sender the bytes, not us the memory.
const PAYLOAD_ACQUIRE_CAP: usize = 128 * 1024;

/// Most iovecs handed to one `write_vectored` call.
const MAX_WRITE_SLICES: usize = 64;

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

/// Backstop poll tick: bounds how stale the shutdown-flag check can get
/// if a wake is ever lost. All normal wakeups come through the [`Waker`].
const IDLE_TICK: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------------
// Read state machine
// ---------------------------------------------------------------------------

/// What a [`ReadMachine`] produced from one run of fed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadEvent {
    /// The connection's 8-byte identity preamble completed.
    Identified(PartyId),
    /// One complete length-prefixed frame payload.
    Frame(Bytes),
}

/// Fatal protocol violation: the peer claimed a frame longer than
/// [`MAX_PAYLOAD`]. The machine is dead afterwards; the connection must
/// be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizeClaim {
    /// The length the peer claimed, in bytes. Never allocated.
    pub claimed: usize,
}

enum ReadState {
    Ident { buf: [u8; 8], have: usize },
    Len { buf: [u8; 4], have: usize },
    Payload { need: usize, buf: Vec<u8> },
    Dead,
}

/// Incremental parser for the TCP wire protocol (ident preamble, then
/// length-prefixed frames). Feed it byte slices of any granularity — a
/// frame split one byte per read parses identically to one delivered
/// whole. Payload buffers come from the global [`pool`] and grow with
/// bytes actually received, capped acquisitions only.
pub struct ReadMachine {
    state: ReadState,
}

impl Default for ReadMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadMachine {
    /// A machine at the start of a fresh connection (expects the ident
    /// preamble first).
    pub fn new() -> ReadMachine {
        ReadMachine {
            state: ReadState::Ident {
                buf: [0; 8],
                have: 0,
            },
        }
    }

    /// Whether the machine hit a protocol violation and stopped parsing.
    pub fn is_dead(&self) -> bool {
        matches!(self.state, ReadState::Dead)
    }

    /// Consumes `input`, appending completed [`ReadEvent`]s to `events`.
    ///
    /// # Errors
    ///
    /// Returns [`OversizeClaim`] (and goes dead) when a length prefix
    /// exceeds [`MAX_PAYLOAD`]. Events completed *before* the violation
    /// are still in `events` and remain valid.
    pub fn feed(
        &mut self,
        mut input: &[u8],
        events: &mut Vec<ReadEvent>,
    ) -> Result<(), OversizeClaim> {
        while !input.is_empty() {
            match &mut self.state {
                ReadState::Ident { buf, have } => {
                    let take = input.len().min(8 - *have);
                    buf[*have..*have + take].copy_from_slice(&input[..take]);
                    *have += take;
                    input = &input[take..];
                    if *have == 8 {
                        events.push(ReadEvent::Identified(PartyId(u64::from_le_bytes(*buf))));
                        self.state = ReadState::Len {
                            buf: [0; 4],
                            have: 0,
                        };
                    }
                }
                ReadState::Len { buf, have } => {
                    let take = input.len().min(4 - *have);
                    buf[*have..*have + take].copy_from_slice(&input[..take]);
                    *have += take;
                    input = &input[take..];
                    if *have == 4 {
                        let len = u32::from_le_bytes(*buf) as usize;
                        if len > MAX_PAYLOAD {
                            self.state = ReadState::Dead;
                            return Err(OversizeClaim { claimed: len });
                        }
                        if len == 0 {
                            events.push(ReadEvent::Frame(Bytes::new()));
                            self.state = ReadState::Len {
                                buf: [0; 4],
                                have: 0,
                            };
                        } else {
                            let buf = pool::global().acquire(len.min(PAYLOAD_ACQUIRE_CAP));
                            self.state = ReadState::Payload { need: len, buf };
                        }
                    }
                }
                ReadState::Payload { need, buf } => {
                    let take = input.len().min(*need - buf.len());
                    buf.extend_from_slice(&input[..take]);
                    input = &input[take..];
                    if buf.len() == *need {
                        let full = std::mem::take(buf);
                        events.push(ReadEvent::Frame(Bytes::from(full)));
                        self.state = ReadState::Len {
                            buf: [0; 4],
                            have: 0,
                        };
                    }
                }
                ReadState::Dead => return Ok(()),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Write state machine
// ---------------------------------------------------------------------------

struct Pending {
    /// Length prefix (4 bytes) or the ident preamble (8 bytes).
    head: [u8; 8],
    head_len: usize,
    payload: Bytes,
}

impl Pending {
    fn total(&self) -> usize {
        self.head_len + self.payload.len()
    }
}

/// What one [`WriteMachine::flush`] accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushReport {
    /// Frame payload bytes fully written (backpressure accounting).
    pub completed_payload: usize,
    /// Frames fully written to the socket.
    pub frames: u64,
    /// `write_vectored` calls issued.
    pub writev_calls: u64,
    /// Whether the queue fully drained (false ⇒ keep write interest).
    pub drained: bool,
}

/// Outbound frame queue with coalesced vectored flushing. Each entry is a
/// length prefix plus its payload; one flush hands as many queued slices
/// to `write_vectored` as fit a batch, restarting mid-frame after partial
/// writes. Completed payloads are recycled into the global [`pool`].
#[derive(Default)]
pub struct WriteMachine {
    queue: VecDeque<Pending>,
    /// Bytes of the front entry already written.
    offset: usize,
    queued_bytes: usize,
}

impl WriteMachine {
    /// An empty queue.
    pub fn new() -> WriteMachine {
        WriteMachine::default()
    }

    /// Whether nothing is queued (write interest can be dropped).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total queued bytes (heads + payloads) not yet written.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes - self.offset
    }

    /// Queues the connection's 8-byte identity preamble.
    pub fn enqueue_ident(&mut self, id: PartyId) {
        let mut head = [0u8; 8];
        head.copy_from_slice(&id.0.to_le_bytes());
        self.queued_bytes += 8;
        self.queue.push_back(Pending {
            head,
            head_len: 8,
            payload: Bytes::new(),
        });
    }

    /// Queues one frame (4-byte length prefix + payload).
    pub fn enqueue_frame(&mut self, payload: Bytes) {
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.queued_bytes += 4 + payload.len();
        self.queue.push_back(Pending {
            head,
            head_len: 4,
            payload,
        });
    }

    /// Writes as much of the queue as the socket accepts right now.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors (the connection must be dropped);
    /// `WouldBlock` is not an error — it ends the flush with
    /// `drained == false`.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<FlushReport> {
        let mut report = FlushReport::default();
        loop {
            if self.queue.is_empty() {
                report.drained = true;
                return Ok(report);
            }
            let wrote = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_SLICES);
                let mut skip = self.offset;
                'build: for p in &self.queue {
                    for part in [&p.head[..p.head_len], &p.payload[..]] {
                        if skip >= part.len() {
                            skip -= part.len();
                            continue;
                        }
                        if slices.len() == MAX_WRITE_SLICES {
                            break 'build;
                        }
                        slices.push(IoSlice::new(&part[skip..]));
                        skip = 0;
                    }
                }
                report.writev_calls += 1;
                match w.write_vectored(&slices) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        ))
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(report),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            self.advance(wrote, &mut report);
        }
    }

    fn advance(&mut self, mut n: usize, report: &mut FlushReport) {
        while n > 0 {
            let Some(front) = self.queue.front() else {
                return;
            };
            let remaining = front.total() - self.offset;
            if n < remaining {
                self.offset += n;
                return;
            }
            n -= remaining;
            self.offset = 0;
            if let Some(done) = self.queue.pop_front() {
                self.queued_bytes -= done.total();
                if done.head_len == 4 {
                    report.completed_payload += done.payload.len();
                    report.frames += 1;
                }
                pool::global().recycle(done.payload);
            }
        }
    }

    /// Drops everything still queued (connection died), returning the
    /// total payload bytes abandoned so backpressure accounting can be
    /// released.
    pub fn abandon(&mut self) -> usize {
        let mut bytes = 0;
        while let Some(p) = self.queue.pop_front() {
            if p.head_len == 4 {
                bytes += p.payload.len();
            }
            pool::global().recycle(p.payload);
        }
        self.offset = 0;
        self.queued_bytes = 0;
        bytes
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Counters the reactor keeps about its own activity; read them with
/// [`ReactorTransport::stats`]. The `net_scale` bench uses `wakeups` to
/// demonstrate that idle lanes cost nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Times the poller's wait returned (events or tick).
    pub wakeups: u64,
    /// `write_vectored` calls issued across all connections.
    pub writev_calls: u64,
    /// Frames fully written to sockets.
    pub frames_out: u64,
    /// Frames fully parsed from sockets.
    pub frames_in: u64,
    /// Outbound connects started (connector threads spawned).
    pub connects_started: u64,
    /// Inbound connections accepted.
    pub accepted: u64,
    /// Connections dropped over an oversize length claim.
    pub oversize_kills: u64,
}

#[derive(Default)]
struct StatCells {
    wakeups: AtomicU64,
    writev_calls: AtomicU64,
    frames_out: AtomicU64,
    frames_in: AtomicU64,
    connects_started: AtomicU64,
    accepted: AtomicU64,
    oversize_kills: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ReactorStats {
        ReactorStats {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            writev_calls: self.writev_calls.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            connects_started: self.connects_started.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            oversize_kills: self.oversize_kills.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state & commands
// ---------------------------------------------------------------------------

enum Cmd {
    Send { to: PartyId, payload: Bytes },
    Liveness { to: PartyId, payload: Bytes },
    Connected { to: PartyId, stream: TcpStream },
    ConnectFailed { to: PartyId, error: TransportError },
    Shutdown,
}

#[derive(Default)]
struct Gate {
    /// Payload bytes queued per peer (write queues + pending-connect
    /// queues). Incremented by senders, decremented by the reactor.
    queued: HashMap<PartyId, usize>,
    /// One-shot failure latches: a failed connect parks its error here;
    /// the next send to the peer consumes it (and may retry fresh).
    failed: HashMap<PartyId, TransportError>,
}

struct Shared {
    id: PartyId,
    local_addr: SocketAddr,
    backend: BackendKind,
    peers: Mutex<HashMap<PartyId, SocketAddr>>,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    stats: StatCells,
    shutdown: AtomicBool,
    /// True while the reactor thread is parked in (or committing to) its
    /// poller wait — see [`Shared::post`].
    sleeping: AtomicBool,
    connect_window: Mutex<Duration>,
    cmd_tx: Sender<Cmd>,
    waker: Waker,
}

impl Shared {
    /// Enqueues a command for the reactor, waking it only when it is
    /// parked in its poller wait. When the reactor is mid-loop it drains
    /// the queue before sleeping anyway, so the waker pipe write (a
    /// syscall per send on the hot path) is elided. The store/load pair
    /// is `SeqCst` on both sides: the reactor sets `sleeping` *before*
    /// its final queue check, so either that check sees this command or
    /// this load sees `sleeping == true` and wakes it.
    fn post(&self, cmd: Cmd) {
        let _ = self.cmd_tx.send(cmd);
        if self.sleeping.load(Ordering::SeqCst) {
            self.waker.wake();
        }
    }
    fn release_queued(&self, peer: PartyId, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut gate = self.gate.lock();
        if let Some(q) = gate.queued.get_mut(&peer) {
            *q = q.saturating_sub(bytes);
            if *q == 0 {
                gate.queued.remove(&peer);
            }
        }
        drop(gate);
        self.gate_cv.notify_all();
    }
}

/// A pending outbound connect, shared between the reactor (which queues
/// frames against it and extends its deadline) and the transient
/// connector thread (which reads the deadline each retry). This is what
/// lets liveness probes and later sends *ride* an in-flight connect
/// instead of opening competing sockets.
struct ConnectCtl {
    deadline: Mutex<Instant>,
}

struct ConnectJob {
    ctl: Arc<ConnectCtl>,
    queued: VecDeque<Bytes>,
}

enum PeerState {
    Connecting(ConnectJob),
    Up { token: usize },
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum SendKind {
    Data,
    Liveness,
}

// ---------------------------------------------------------------------------
// The reactor thread
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    peer: Option<PartyId>,
    outbound: bool,
    rm: ReadMachine,
    wm: WriteMachine,
    want_write: bool,
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    cmd_rx: Receiver<Cmd>,
    inbox_tx: Sender<Delivery>,
    conns: HashMap<usize, Conn>,
    peer_state: HashMap<PartyId, PeerState>,
    next_token: usize,
    read_buf: Vec<u8>,
    events: Vec<Event>,
    /// Tokens that had frames queued during the current command drain.
    /// Flushing once per drain instead of once per command lets a burst
    /// of chunk sends leave in a handful of large writev calls.
    dirty: Vec<usize>,
}

impl Reactor {
    fn run(mut self) {
        loop {
            loop {
                match self.cmd_rx.try_recv() {
                    Some(Cmd::Shutdown) => return self.teardown(),
                    Some(cmd) => self.handle_cmd(cmd),
                    None => break,
                }
            }
            self.flush_dirty();
            if self.shared.shutdown.load(Ordering::Acquire) {
                return self.teardown();
            }
            // Announce the intent to sleep, then re-check the queue once:
            // any `post` that ran before the store already enqueued its
            // command (picked up here), and any that runs after it sees
            // `sleeping` and writes the waker pipe. Either way no command
            // waits out a full poll timeout.
            self.shared.sleeping.store(true, Ordering::SeqCst);
            match self.cmd_rx.try_recv() {
                Some(Cmd::Shutdown) => return self.teardown(),
                Some(cmd) => {
                    self.shared.sleeping.store(false, Ordering::SeqCst);
                    self.handle_cmd(cmd);
                    continue;
                }
                None => {}
            }
            let mut events = std::mem::take(&mut self.events);
            let waited = self.poller.wait(&mut events, Some(IDLE_TICK));
            self.shared.sleeping.store(false, Ordering::SeqCst);
            if waited.is_err() {
                // Transient poll failure: back off a tick rather than
                // spinning, then keep serving.
                std::thread::sleep(Duration::from_millis(1));
            }
            self.shared.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                    }
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.events = events;
        }
    }

    fn teardown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.kill_conn(token, None);
        }
        // Wake any sender still parked on the gate: it re-checks the
        // shutdown flag and returns Disconnected.
        self.shared.gate_cv.notify_all();
        // Dropping `inbox_tx` disconnects receivers blocked in recv().
    }

    fn alloc_token(&mut self) -> usize {
        let token = self.next_token;
        self.next_token += 1;
        token
    }

    /// Flushes every connection that queued frames during the last
    /// command drain. Tokens may repeat (one per queued frame); each
    /// connection is flushed once.
    fn flush_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut tokens = std::mem::take(&mut self.dirty);
        tokens.sort_unstable();
        tokens.dedup();
        for token in tokens {
            self.flush_conn(token);
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Send { to, payload } => self.dispatch(to, payload, SendKind::Data),
            Cmd::Liveness { to, payload } => self.dispatch(to, payload, SendKind::Liveness),
            Cmd::Connected { to, stream } => self.peer_connected(to, stream),
            Cmd::ConnectFailed { to, error } => self.peer_connect_failed(to, error),
            Cmd::Shutdown => {}
        }
    }

    fn dispatch(&mut self, to: PartyId, payload: Bytes, kind: SendKind) {
        match self.peer_state.get_mut(&to) {
            Some(PeerState::Up { token }) => {
                let token = *token;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.wm.enqueue_frame(payload);
                } else {
                    // Connection died under us; release the accounting and
                    // let the next send reconnect.
                    self.peer_state.remove(&to);
                    self.shared.release_queued(to, payload.len());
                    return;
                }
                self.dirty.push(token);
            }
            Some(PeerState::Connecting(job)) => {
                job.queued.push_back(payload);
                if kind == SendKind::Data {
                    // A data send renews the connect effort; liveness
                    // probes ride the pending connect without extending it
                    // (and never open a second socket).
                    let window = *self.shared.connect_window.lock();
                    let mut deadline = job.ctl.deadline.lock();
                    let renewed = Instant::now() + window;
                    if renewed > *deadline {
                        *deadline = renewed;
                    }
                }
            }
            None => {
                let addr = {
                    let peers = self.shared.peers.lock();
                    peers.get(&to).copied()
                };
                let Some(addr) = addr else {
                    // send() verified registration; a concurrent removal is
                    // the only way here. Drop the frame, release the gate.
                    self.shared.release_queued(to, payload.len());
                    return;
                };
                let window = match kind {
                    SendKind::Data => *self.shared.connect_window.lock(),
                    SendKind::Liveness => HEARTBEAT_CONNECT_WINDOW,
                };
                let ctl = Arc::new(ConnectCtl {
                    deadline: Mutex::new(Instant::now() + window),
                });
                self.peer_state.insert(
                    to,
                    PeerState::Connecting(ConnectJob {
                        ctl: Arc::clone(&ctl),
                        queued: VecDeque::from([payload]),
                    }),
                );
                self.shared
                    .stats
                    .connects_started
                    .fetch_add(1, Ordering::Relaxed);
                spawn_connector(&self.shared, to, addr, ctl);
            }
        }
    }

    fn peer_connected(&mut self, to: PartyId, stream: TcpStream) {
        let token = self.alloc_token();
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.peer_connect_failed(to, TransportError::Disconnected);
            return;
        }
        let mut conn = Conn {
            stream,
            peer: Some(to),
            outbound: true,
            rm: ReadMachine::new(),
            wm: WriteMachine::new(),
            want_write: false,
        };
        conn.wm.enqueue_ident(self.shared.id);
        if let Some(PeerState::Connecting(mut job)) = self.peer_state.remove(&to) {
            while let Some(payload) = job.queued.pop_front() {
                conn.wm.enqueue_frame(payload);
            }
        }
        self.conns.insert(token, conn);
        self.peer_state.insert(to, PeerState::Up { token });
        self.flush_conn(token);
    }

    fn peer_connect_failed(&mut self, to: PartyId, error: TransportError) {
        let dropped = match self.peer_state.remove(&to) {
            Some(PeerState::Connecting(mut job)) => {
                let mut bytes = 0;
                while let Some(payload) = job.queued.pop_front() {
                    bytes += payload.len();
                    pool::global().recycle(payload);
                }
                bytes
            }
            _ => 0,
        };
        {
            let mut gate = self.shared.gate.lock();
            if let Some(q) = gate.queued.get_mut(&to) {
                *q = q.saturating_sub(dropped);
                if *q == 0 {
                    gate.queued.remove(&to);
                }
            }
            gate.failed.insert(to, error);
        }
        self.shared.gate_cv.notify_all();
        let _ = self.inbox_tx.send(Delivery::PeerDown(to));
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let _ = epoll::set_socket_buffers(
                        stream.as_raw_fd(),
                        SOCK_BUF_BYTES,
                        SOCK_BUF_BYTES,
                    );
                    let token = self.alloc_token();
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_ok()
                    {
                        self.conns.insert(
                            token,
                            Conn {
                                stream,
                                peer: None,
                                outbound: false,
                                rm: ReadMachine::new(),
                                wm: WriteMachine::new(),
                                want_write: false,
                            },
                        );
                        self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: usize, ev: Event) {
        if ev.readable || ev.hangup || ev.error {
            self.drain_read(token);
        }
        if ev.writable {
            self.flush_conn(token);
        }
    }

    /// Reads until `WouldBlock` (mandatory under edge triggering),
    /// feeding the connection's [`ReadMachine`] and forwarding completed
    /// frames to the inbox.
    fn drain_read(&mut self, token: usize) {
        let mut events: Vec<ReadEvent> = Vec::new();
        let death: Option<Option<Delivery>> = loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    // EOF. An identified inbound peer's disappearance is a
                    // liveness event; outbound conns just reset so the
                    // next send reconnects.
                    let notify = match (conn.outbound, conn.peer) {
                        (false, Some(peer)) => Some(Delivery::PeerDown(peer)),
                        _ => None,
                    };
                    break Some(notify);
                }
                Ok(n) => {
                    if conn.outbound {
                        // Outbound lanes are send-only by protocol; inbound
                        // bytes on one are discarded (reading them is still
                        // required to notice EOF).
                        continue;
                    }
                    events.clear();
                    let fed = conn.rm.feed(&self.read_buf[..n], &mut events);
                    let from = conn.peer;
                    let mut identified = from;
                    for event in events.drain(..) {
                        match event {
                            ReadEvent::Identified(peer) => identified = Some(peer),
                            ReadEvent::Frame(payload) => {
                                self.shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                                if let Some(peer) = identified {
                                    let _ = self.inbox_tx.send(Delivery::Frame(peer, payload));
                                }
                            }
                        }
                    }
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.peer = identified;
                    }
                    if let Err(OversizeClaim { claimed }) = fed {
                        self.shared
                            .stats
                            .oversize_kills
                            .fetch_add(1, Ordering::Relaxed);
                        let notify = identified.map(|peer| Delivery::Oversize(peer, claimed));
                        break Some(notify);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let notify = match (conn.outbound, conn.peer) {
                        (false, Some(peer)) => Some(Delivery::PeerDown(peer)),
                        _ => None,
                    };
                    break Some(notify);
                }
            }
        };
        if let Some(notify) = death {
            self.kill_conn(token, notify);
        }
    }

    /// Flushes a connection's write queue and keeps its poller interest in
    /// sync: write interest exactly while bytes remain queued.
    fn flush_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.wm.flush(&mut conn.stream) {
            Ok(report) => {
                self.shared
                    .stats
                    .writev_calls
                    .fetch_add(report.writev_calls, Ordering::Relaxed);
                self.shared
                    .stats
                    .frames_out
                    .fetch_add(report.frames, Ordering::Relaxed);
                let peer = conn.peer;
                let want_write = !report.drained;
                if want_write != conn.want_write {
                    conn.want_write = want_write;
                    let interest = if want_write {
                        Interest::BOTH
                    } else {
                        Interest::READ
                    };
                    let _ = self.poller.modify(conn.stream.as_raw_fd(), token, interest);
                }
                if let Some(peer) = peer {
                    // release_queued is a no-op for zero bytes.
                    self.shared.release_queued(peer, report.completed_payload);
                }
            }
            Err(_) => self.kill_conn(token, None),
        }
    }

    fn kill_conn(&mut self, token: usize, notify: Option<Delivery>) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let abandoned = conn.wm.abandon();
        if let Some(peer) = conn.peer {
            if conn.outbound {
                if matches!(self.peer_state.get(&peer), Some(PeerState::Up { token: t }) if *t == token)
                {
                    self.peer_state.remove(&peer);
                }
                self.shared.release_queued(peer, abandoned);
            }
        }
        if let Some(delivery) = notify {
            let _ = self.inbox_tx.send(delivery);
        }
    }
}

fn spawn_connector(outer: &Arc<Shared>, to: PartyId, addr: SocketAddr, ctl: Arc<ConnectCtl>) {
    let shared = Arc::clone(outer);
    let spawned = std::thread::Builder::new()
        .name(format!("tcp-connect-{}-{}", shared.id.0, to.0))
        .spawn(move || {
            let mut backoff = CONNECT_BACKOFF_FLOOR;
            let mut attempts: u32 = 0;
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                attempts += 1;
                match TcpStream::connect(addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        let _ = epoll::set_socket_buffers(
                            stream.as_raw_fd(),
                            SOCK_BUF_BYTES,
                            SOCK_BUF_BYTES,
                        );
                        if stream.set_nonblocking(true).is_err() {
                            shared.post(Cmd::ConnectFailed {
                                to,
                                error: TransportError::Disconnected,
                            });
                        } else {
                            shared.post(Cmd::Connected { to, stream });
                        }
                        return;
                    }
                    Err(_) => {
                        // The deadline is shared, extendable state: sends
                        // arriving while we retry push it out.
                        let deadline = *ctl.deadline.lock();
                        let now = Instant::now();
                        if now >= deadline {
                            shared.post(Cmd::ConnectFailed {
                                to,
                                error: TransportError::ConnectFailed { addr, attempts },
                            });
                            return;
                        }
                        std::thread::sleep(backoff.min(deadline - now));
                        backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
                    }
                }
            }
        });
    if spawned.is_err() {
        outer.post(Cmd::ConnectFailed {
            to,
            error: TransportError::ConnectFailed { addr, attempts: 0 },
        });
    }
}

// ---------------------------------------------------------------------------
// The public transport
// ---------------------------------------------------------------------------

/// Readiness-driven TCP transport endpoint: the same wire protocol and
/// [`Transport`] contract as [`crate::tcp::TcpTransport`], served by one
/// reactor thread instead of a thread per connection. See the module docs
/// for the design.
pub struct ReactorTransport {
    shared: Arc<Shared>,
    inbox: Mutex<Receiver<Delivery>>,
    handle: Option<JoinHandle<()>>,
}

impl ReactorTransport {
    /// Binds a listener on an ephemeral localhost port and starts the
    /// reactor thread.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller setup failures.
    pub fn bind(id: PartyId) -> io::Result<ReactorTransport> {
        Self::bind_addr(id, (std::net::Ipv4Addr::LOCALHOST, 0).into())
    }

    /// Binds on an ephemeral localhost port with an explicit readiness
    /// backend — both backends stay testable on Linux without touching
    /// the `SAP_POLLER` environment variable.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller setup failures (including requesting the
    /// epoll backend off Linux).
    pub fn bind_with_backend(id: PartyId, kind: BackendKind) -> io::Result<ReactorTransport> {
        Self::bind_inner(id, (std::net::Ipv4Addr::LOCALHOST, 0).into(), Some(kind))
    }

    /// Binds a listener on an explicit address and starts the reactor
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller setup failures (including an unsupported
    /// forced poll backend).
    pub fn bind_addr(id: PartyId, addr: SocketAddr) -> io::Result<ReactorTransport> {
        Self::bind_inner(id, addr, None)
    }

    fn bind_inner(
        id: PartyId,
        addr: SocketAddr,
        backend: Option<BackendKind>,
    ) -> io::Result<ReactorTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut poller = match backend {
            Some(kind) => Poller::with_backend(kind)?,
            None => Poller::new()?,
        };
        let backend = poller.backend();
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        let waker = Waker::new(&mut poller, TOKEN_WAKER)?;
        let (cmd_tx, cmd_rx) = unbounded();
        let (inbox_tx, inbox_rx) = unbounded();
        let shared = Arc::new(Shared {
            id,
            local_addr,
            backend,
            peers: Mutex::new(HashMap::new()),
            gate: Mutex::new(Gate::default()),
            gate_cv: Condvar::new(),
            stats: StatCells::default(),
            shutdown: AtomicBool::new(false),
            sleeping: AtomicBool::new(false),
            connect_window: Mutex::new(DEFAULT_CONNECT_WINDOW),
            cmd_tx,
            waker,
        });
        let reactor_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("reactor-{}", id.0))
            .spawn(move || {
                Reactor {
                    shared: reactor_shared,
                    poller,
                    listener,
                    cmd_rx,
                    inbox_tx,
                    conns: HashMap::new(),
                    peer_state: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    read_buf: vec![0; READ_CHUNK],
                    events: Vec::new(),
                    dirty: Vec::new(),
                }
                .run();
            })?;
        Ok(ReactorTransport {
            shared,
            inbox: Mutex::new(inbox_rx),
            handle: Some(handle),
        })
    }

    /// The address this endpoint's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Which readiness backend the reactor runs on (epoll or poll).
    pub fn poll_backend(&self) -> BackendKind {
        self.shared.backend
    }

    /// Registers where a peer's listener lives. Connections are opened
    /// lazily on first send.
    pub fn register_peer(&self, id: PartyId, addr: SocketAddr) {
        self.shared.peers.lock().insert(id, addr);
    }

    /// Overrides how long a first send retries an unreachable peer before
    /// failing with [`TransportError::ConnectFailed`].
    pub fn set_connect_window(&mut self, window: Duration) {
        *self.shared.connect_window.lock() = window;
    }

    /// A snapshot of the reactor's activity counters.
    pub fn stats(&self) -> ReactorStats {
        self.shared.stats.snapshot()
    }

    fn submit(&self, cmd: Cmd) {
        self.shared.post(cmd);
    }
}

impl Transport for ReactorTransport {
    fn local_id(&self) -> PartyId {
        self.shared.id
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                size: payload.len(),
            });
        }
        if !self.shared.peers.lock().contains_key(&to) {
            return Err(TransportError::UnknownParty(to));
        }
        let mut gate = self.shared.gate.lock();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(TransportError::Disconnected);
            }
            if let Some(error) = gate.failed.remove(&to) {
                // One-shot latch: this send reports the failure; the next
                // one starts a fresh connect window.
                return Err(error);
            }
            if gate.queued.get(&to).copied().unwrap_or(0) < HIGH_WATER {
                break;
            }
            gate = self.shared.gate_cv.wait(gate);
        }
        *gate.queued.entry(to).or_insert(0) += payload.len();
        drop(gate);
        self.submit(Cmd::Send { to, payload });
        Ok(())
    }

    fn send_liveness(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                size: payload.len(),
            });
        }
        if !self.shared.peers.lock().contains_key(&to) {
            return Err(TransportError::UnknownParty(to));
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(TransportError::Disconnected);
        }
        let mut gate = self.shared.gate.lock();
        if let Some(error) = gate.failed.remove(&to) {
            // Report the failure (the liveness layer counts these) but
            // keep probing: this beat starts a fresh short-window connect
            // in the background, so a peer that comes up late is found.
            *gate.queued.entry(to).or_insert(0) += payload.len();
            drop(gate);
            self.submit(Cmd::Liveness { to, payload });
            return Err(error);
        }
        if gate.queued.get(&to).copied().unwrap_or(0) >= HIGH_WATER {
            // The link is saturated with real traffic — the beat is
            // redundant and must not block.
            return Ok(());
        }
        *gate.queued.entry(to).or_insert(0) += payload.len();
        drop(gate);
        self.submit(Cmd::Liveness { to, payload });
        Ok(())
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        let delivery = {
            let inbox = self.inbox.lock();
            inbox.recv()
        };
        match delivery {
            Ok(d) => pop_delivery(d),
            Err(_) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        let delivery = {
            let inbox = self.inbox.lock();
            inbox.recv_timeout(timeout)
        };
        match delivery {
            Ok(d) => pop_delivery(d),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.shared.cmd_tx.send(Cmd::Shutdown);
        self.shared.waker.wake();
        self.shared.gate_cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ReactorTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorTransport")
            .field("id", &self.shared.id)
            .field("addr", &self.shared.local_addr)
            .field("backend", &self.shared.backend.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: Duration = Duration::from_secs(10);

    fn pair() -> (ReactorTransport, ReactorTransport) {
        let a = ReactorTransport::bind(PartyId(1)).expect("bind a");
        let b = ReactorTransport::bind(PartyId(2)).expect("bind b");
        a.register_peer(PartyId(2), b.local_addr());
        b.register_peer(PartyId(1), a.local_addr());
        (a, b)
    }

    // -- state-machine torture tests (satellite: partial reads/writes) --

    /// A wire stream: ident preamble + two frames.
    fn wire_bytes(id: u64, frames: &[&[u8]]) -> Vec<u8> {
        let mut out = id.to_le_bytes().to_vec();
        for f in frames {
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            out.extend_from_slice(f);
        }
        out
    }

    #[test]
    fn read_machine_parses_frames_delivered_one_byte_at_a_time() {
        let payloads: [&[u8]; 3] = [b"hello", b"", b"a longer frame payload with some bytes"];
        let stream = wire_bytes(42, &payloads);
        let mut rm = ReadMachine::new();
        let mut events = Vec::new();
        for byte in &stream {
            rm.feed(std::slice::from_ref(byte), &mut events)
                .expect("no violation");
        }
        assert_eq!(events.len(), 1 + payloads.len());
        assert_eq!(events[0], ReadEvent::Identified(PartyId(42)));
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(events[1 + i], ReadEvent::Frame(Bytes::copy_from_slice(p)));
        }
        assert!(!rm.is_dead());
    }

    #[test]
    fn read_machine_parses_identically_at_every_granularity() {
        let payloads: [&[u8]; 2] = [&[7u8; 1000], &[9u8; 13]];
        let stream = wire_bytes(5, &payloads);
        let mut whole = Vec::new();
        let mut rm = ReadMachine::new();
        rm.feed(&stream, &mut whole).expect("whole feed");
        for chunk in [2usize, 3, 7, 64] {
            let mut events = Vec::new();
            let mut rm = ReadMachine::new();
            for piece in stream.chunks(chunk) {
                rm.feed(piece, &mut events).expect("chunked feed");
            }
            assert_eq!(events, whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn read_machine_rejects_oversize_claim_without_buffering_it() {
        let mut stream = 9u64.to_le_bytes().to_vec();
        // Claim just over the limit; the machine must die on the length
        // prefix alone, before any payload byte exists.
        stream.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        let mut rm = ReadMachine::new();
        let mut events = Vec::new();
        let err = rm.feed(&stream, &mut events).expect_err("oversize");
        assert_eq!(err.claimed, MAX_PAYLOAD + 1);
        assert!(rm.is_dead());
        assert_eq!(events, vec![ReadEvent::Identified(PartyId(9))]);
        // Dead machines swallow further input without parsing.
        rm.feed(b"garbage", &mut events)
            .expect("dead feed is inert");
        assert_eq!(events.len(), 1);
    }

    /// A writer that accepts at most one byte per call and interleaves
    /// `WouldBlock` between accepts — the worst-case socket.
    struct TrickleWriter {
        out: Vec<u8>,
        block_next: bool,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "trickle"));
            }
            self.block_next = true;
            for buf in bufs {
                if let Some(&byte) = buf.first() {
                    self.out.push(byte);
                    return Ok(1);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_machine_survives_one_byte_writes_with_wouldblock() {
        let mut wm = WriteMachine::new();
        wm.enqueue_ident(PartyId(3));
        wm.enqueue_frame(Bytes::copy_from_slice(b"abc"));
        wm.enqueue_frame(Bytes::new());
        wm.enqueue_frame(Bytes::copy_from_slice(&[0xAB; 100]));
        let expected = {
            let mut v = wire_bytes(3, &[b"abc"]);
            v.extend_from_slice(&wire_bytes(0, &[b"", &[0xAB; 100]])[8..]);
            v
        };
        let mut w = TrickleWriter {
            out: Vec::new(),
            block_next: false,
        };
        let mut total = FlushReport::default();
        let mut spins = 0;
        while !wm.is_empty() {
            let report = wm.flush(&mut w).expect("flush");
            total.completed_payload += report.completed_payload;
            total.frames += report.frames;
            total.writev_calls += report.writev_calls;
            spins += 1;
            assert!(spins < 10_000, "flush failed to make progress");
        }
        assert_eq!(w.out, expected);
        assert_eq!(total.frames, 3);
        assert_eq!(total.completed_payload, 3 + 100);
        assert!(total.writev_calls >= expected.len() as u64);
        assert_eq!(wm.queued_bytes(), 0);
    }

    /// A writer that accepts everything; checks coalescing counts.
    struct SinkWriter {
        out: Vec<u8>,
        calls: u64,
    }

    impl Write for SinkWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            let mut n = 0;
            for buf in bufs {
                self.out.extend_from_slice(buf);
                n += buf.len();
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_machine_coalesces_queued_frames_into_one_writev() {
        let mut wm = WriteMachine::new();
        wm.enqueue_ident(PartyId(8));
        for i in 0..10u8 {
            wm.enqueue_frame(Bytes::copy_from_slice(&[i; 32]));
        }
        let mut w = SinkWriter {
            out: Vec::new(),
            calls: 0,
        };
        let report = wm.flush(&mut w).expect("flush");
        assert!(report.drained);
        assert_eq!(report.frames, 10);
        // 21 slices (1 ident + 10 × (prefix, payload)) fit one batch.
        assert_eq!(report.writev_calls, 1);
        assert_eq!(w.calls, 1);
        let mut expected = 8u64.to_le_bytes().to_vec();
        for i in 0..10u8 {
            expected.extend_from_slice(&32u32.to_le_bytes());
            expected.extend_from_slice(&[i; 32]);
        }
        assert_eq!(w.out, expected);
    }

    // -- end-to-end reactor tests --

    #[test]
    fn frames_roundtrip_between_reactor_endpoints() {
        let (a, b) = pair();
        a.send(PartyId(2), Bytes::copy_from_slice(b"one"))
            .expect("send one");
        a.send(PartyId(2), Bytes::copy_from_slice(b"two"))
            .expect("send two");
        b.send(PartyId(1), Bytes::copy_from_slice(b"reply"))
            .expect("send reply");
        let (from, p1) = b.recv_timeout(WAIT).expect("recv one");
        assert_eq!((from, &p1[..]), (PartyId(1), &b"one"[..]));
        let (_, p2) = b.recv_timeout(WAIT).expect("recv two");
        assert_eq!(&p2[..], b"two");
        let (from, p3) = a.recv_timeout(WAIT).expect("recv reply");
        assert_eq!((from, &p3[..]), (PartyId(2), &b"reply"[..]));
        assert!(a.stats().connects_started >= 1);
        assert!(b.stats().accepted >= 1);
    }

    #[test]
    fn reactor_interoperates_with_threaded_backend() {
        use crate::tcp::TcpTransport;
        let reactor = ReactorTransport::bind(PartyId(1)).expect("bind reactor");
        let threaded = TcpTransport::bind(PartyId(2)).expect("bind threaded");
        reactor.register_peer(PartyId(2), threaded.local_addr());
        threaded.register_peer(PartyId(1), reactor.local_addr());
        reactor
            .send(PartyId(2), Bytes::copy_from_slice(b"from-reactor"))
            .expect("reactor send");
        let (from, payload) = threaded.recv_timeout(WAIT).expect("threaded recv");
        assert_eq!((from, &payload[..]), (PartyId(1), &b"from-reactor"[..]));
        threaded
            .send(PartyId(1), Bytes::copy_from_slice(b"from-threaded"))
            .expect("threaded send");
        let (from, payload) = reactor.recv_timeout(WAIT).expect("reactor recv");
        assert_eq!((from, &payload[..]), (PartyId(2), &b"from-threaded"[..]));
    }

    #[test]
    fn large_frames_survive_partial_writes() {
        let (a, b) = pair();
        // Big enough to overflow socket buffers and force WouldBlock on
        // the write path, exercising mid-frame restart.
        let big = vec![0x5Au8; 8 * 1024 * 1024];
        let payload = Bytes::copy_from_slice(&big);
        a.send(PartyId(2), payload).expect("send big");
        a.send(PartyId(2), Bytes::copy_from_slice(b"tail"))
            .expect("send tail");
        let (_, got) = b.recv_timeout(WAIT).expect("recv big");
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..64], &big[..64]);
        assert_eq!(&got[got.len() - 64..], &big[big.len() - 64..]);
        let (_, tail) = b.recv_timeout(WAIT).expect("recv tail");
        assert_eq!(&tail[..], b"tail");
    }

    #[test]
    fn oversize_frame_surfaces_typed_error_and_kills_connection() {
        let b = ReactorTransport::bind(PartyId(2)).expect("bind");
        let mut rogue = TcpStream::connect(b.local_addr()).expect("connect");
        rogue.write_all(&7u64.to_le_bytes()).expect("ident");
        rogue
            .write_all(&u32::MAX.to_le_bytes())
            .expect("hostile len");
        match b.recv_timeout(WAIT) {
            Err(TransportError::OversizeFrame { from, claimed }) => {
                assert_eq!(from, PartyId(7));
                assert_eq!(claimed, u32::MAX as usize);
            }
            other => panic!("expected OversizeFrame, got {other:?}"),
        }
        assert_eq!(b.stats().oversize_kills, 1);
    }

    #[test]
    fn payload_too_large_rejected_at_send() {
        let (a, _b) = pair();
        let oversized = Bytes::from(vec![0u8; MAX_PAYLOAD + 1]);
        assert_eq!(
            a.send(PartyId(2), oversized),
            Err(TransportError::PayloadTooLarge {
                size: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn unknown_party_rejected_at_send() {
        let a = ReactorTransport::bind(PartyId(1)).expect("bind");
        assert_eq!(
            a.send(PartyId(99), Bytes::new()),
            Err(TransportError::UnknownParty(PartyId(99)))
        );
    }

    #[test]
    fn liveness_rides_pending_connect_instead_of_opening_new_sockets() {
        // An address that refuses connections: bind, learn the port, drop.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let mut a = ReactorTransport::bind(PartyId(1)).expect("bind");
        a.set_connect_window(Duration::from_millis(400));
        a.register_peer(PartyId(2), dead_addr);
        // First send starts the (only) connect.
        a.send(PartyId(2), Bytes::copy_from_slice(b"queued"))
            .expect("first send queues");
        // Liveness probes while the connect is pending must ride it.
        for _ in 0..10 {
            a.send_liveness(PartyId(2), Bytes::copy_from_slice(b"beat"))
                .expect("beat rides pending connect");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            a.stats().connects_started,
            1,
            "liveness must not open competing connections"
        );
        // The window expires: the failure surfaces in-band and then as a
        // typed error on the next send.
        match a.recv_timeout(WAIT) {
            Err(TransportError::PeerDown(p)) => assert_eq!(p, PartyId(2)),
            other => panic!("expected PeerDown, got {other:?}"),
        }
        let err = a
            .send(PartyId(2), Bytes::copy_from_slice(b"after"))
            .expect_err("failed connect surfaces");
        match err {
            TransportError::ConnectFailed { addr, attempts } => {
                assert_eq!(addr, dead_addr);
                assert!(attempts >= 1);
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn peer_socket_close_surfaces_peer_down() {
        let (a, b) = pair();
        a.send(PartyId(2), Bytes::copy_from_slice(b"hi"))
            .expect("send");
        let (_, _) = b.recv_timeout(WAIT).expect("recv");
        drop(a);
        match b.recv_timeout(WAIT) {
            Err(TransportError::PeerDown(p)) => assert_eq!(p, PartyId(1)),
            other => panic!("expected PeerDown, got {other:?}"),
        }
    }

    #[test]
    fn idle_reactor_barely_wakes() {
        let (a, b) = pair();
        a.send(PartyId(2), Bytes::copy_from_slice(b"warm"))
            .expect("send");
        let _ = b.recv_timeout(WAIT).expect("recv");
        let before = b.stats().wakeups;
        std::thread::sleep(Duration::from_millis(600));
        let after = b.stats().wakeups;
        // One idle tick plus slack — never a busy loop.
        assert!(
            after - before <= 4,
            "idle reactor woke {} times in 600ms",
            after - before
        );
    }

    #[test]
    fn forced_poll_backend_roundtrips() {
        // Constructed explicitly (not via env) so the test is race-free
        // under parallel execution.
        let a = ReactorTransport::bind_with_backend(PartyId(1), BackendKind::Poll).expect("bind a");
        let b = ReactorTransport::bind_with_backend(PartyId(2), BackendKind::Poll).expect("bind b");
        assert_eq!(a.poll_backend(), BackendKind::Poll);
        a.register_peer(PartyId(2), b.local_addr());
        b.register_peer(PartyId(1), a.local_addr());
        a.send(PartyId(2), Bytes::copy_from_slice(b"x"))
            .expect("send");
        let (_, p) = b.recv_timeout(WAIT).expect("recv");
        assert_eq!(&p[..], b"x");
    }
}
