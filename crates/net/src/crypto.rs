//! Toy link-encryption envelope.
//!
//! The brief assumes "encryption is applied before data is transmitted on
//! the network" and treats it as a black box. This module models that black
//! box: a keyed stream cipher (xorshift keystream) plus a keyed checksum for
//! tamper detection.
//!
//! # Security disclaimer
//!
//! **This is NOT real cryptography.** It exists so the protocol code has an
//! honest seal/open interface, sealed payloads are not readable by the hub,
//! and tampering is detectable in tests. A production deployment would use
//! an AEAD (e.g. AES-GCM or ChaCha20-Poly1305) behind the same interface.

use bytes::Bytes;

/// A symmetric channel key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelKey(pub u64);

impl ChannelKey {
    /// Derives a per-direction key for an ordered party pair from a session
    /// secret (both endpoints derive the same key).
    pub fn derive(session_secret: u64, from: u64, to: u64) -> Self {
        ChannelKey(splitmix(
            session_secret ^ from.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ to.rotate_left(17),
        ))
    }
}

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// The payload was too short to contain the tag.
    Truncated,
    /// The authentication tag did not verify (corruption or wrong key).
    BadTag,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::Truncated => write!(f, "sealed payload truncated"),
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for CryptoError {}

const TAG_LEN: usize = 8;

/// Seals a plaintext under the key with a per-message nonce.
/// Layout: `nonce (8) ‖ ciphertext ‖ tag (8)`.
pub fn seal(key: ChannelKey, nonce: u64, plaintext: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(8 + plaintext.len() + TAG_LEN);
    out.extend_from_slice(&nonce.to_le_bytes());
    let mut ks = Keystream::new(key.0 ^ nonce);
    for &b in plaintext {
        out.push(b ^ ks.next_byte());
    }
    let tag = mac(key.0, nonce, &out[8..]);
    out.extend_from_slice(&tag.to_le_bytes());
    Bytes::from(out)
}

/// Opens a sealed payload, verifying the tag.
///
/// # Errors
///
/// * [`CryptoError::Truncated`] when the payload is shorter than the framing.
/// * [`CryptoError::BadTag`] on corruption or a wrong key.
pub fn open(key: ChannelKey, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if sealed.len() < 8 + TAG_LEN {
        return Err(CryptoError::Truncated);
    }
    let nonce = u64::from_le_bytes(sealed[..8].try_into().expect("8 bytes"));
    let (body, tag_bytes) = sealed[8..].split_at(sealed.len() - 8 - TAG_LEN);
    let expected = u64::from_le_bytes(tag_bytes.try_into().expect("8 bytes"));
    if mac(key.0, nonce, body) != expected {
        return Err(CryptoError::BadTag);
    }
    let mut ks = Keystream::new(key.0 ^ nonce);
    Ok(body.iter().map(|&b| b ^ ks.next_byte()).collect())
}

/// Keyed checksum (FNV-1a over key ‖ nonce ‖ data). Toy MAC.
fn mac(key: u64, nonce: u64, data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key
        .to_le_bytes()
        .iter()
        .chain(nonce.to_le_bytes().iter())
        .chain(data.iter())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Xorshift64* keystream.
struct Keystream {
    state: u64,
    buf: [u8; 8],
    pos: usize,
}

impl Keystream {
    fn new(seed: u64) -> Self {
        Keystream {
            state: splitmix(seed).max(1),
            buf: [0; 8],
            pos: 8,
        }
    }

    fn next_byte(&mut self) -> u8 {
        if self.pos == 8 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            self.buf = x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
            self.pos = 0;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = ChannelKey::derive(42, 1, 2);
        for msg in [&b""[..], b"x", b"hello multiparty world", &[0u8; 1000]] {
            let sealed = seal(key, 7, msg);
            let opened = open(key, &sealed).unwrap();
            assert_eq!(opened, msg);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = ChannelKey::derive(1, 2, 3);
        let msg = b"sensitive dataset bytes";
        let sealed = seal(key, 9, msg);
        assert!(!sealed.windows(msg.len()).any(|w| w == msg.as_slice()));
    }

    #[test]
    fn different_nonces_different_ciphertexts() {
        let key = ChannelKey::derive(1, 2, 3);
        let a = seal(key, 1, b"same message");
        let b = seal(key, 2, b"same message");
        assert_ne!(a, b);
    }

    #[test]
    fn tamper_detected() {
        let key = ChannelKey::derive(5, 1, 2);
        let sealed = seal(key, 3, b"payload");
        let mut bad = sealed.to_vec();
        bad[10] ^= 0x01;
        assert_eq!(open(key, &bad).unwrap_err(), CryptoError::BadTag);
    }

    #[test]
    fn wrong_key_detected() {
        let k1 = ChannelKey::derive(5, 1, 2);
        let k2 = ChannelKey::derive(5, 1, 3);
        let sealed = seal(k1, 3, b"payload");
        assert_eq!(open(k2, &sealed).unwrap_err(), CryptoError::BadTag);
    }

    #[test]
    fn truncated_detected() {
        let key = ChannelKey::derive(5, 1, 2);
        assert_eq!(open(key, &[1, 2, 3]).unwrap_err(), CryptoError::Truncated);
    }

    #[test]
    fn key_derivation_is_directional() {
        assert_ne!(ChannelKey::derive(9, 1, 2), ChannelKey::derive(9, 2, 1));
        assert_eq!(ChannelKey::derive(9, 1, 2), ChannelKey::derive(9, 1, 2));
    }
}
