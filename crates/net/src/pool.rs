//! Pooled reusable frame buffers.
//!
//! Every sealed frame used to be a fresh `Vec<u8>` on the send path and
//! another on the receive path — at streaming rates that is two
//! allocator round-trips per ~60 KiB frame. The [`BufferPool`] breaks
//! that churn: the seal path *acquires* a cleared buffer, encodes the
//! envelope straight into it, freezes it into [`Bytes`] for the
//! transport, and once the last reference drops (after the socket write,
//! or after [`open_frame`](crate::frame::open_frame) on the receive
//! side) the allocation is *recycled* back onto a shelf instead of freed.
//!
//! Recycling piggybacks on the vendored `Bytes` shim: a buffer can only
//! be reclaimed when the caller holds the sole reference and the view
//! covers the whole allocation (`Bytes::try_into_vec`), so shared slices
//! — e.g. chunk views into one encoded message — are never corrupted.
//! A failed reclaim simply falls back to the normal drop; pooling is an
//! optimisation, never a correctness requirement.
//!
//! Shelves are bucketed by capacity class and bounded (count and byte
//! capacity) so a burst of giant frames cannot pin unbounded memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use bytes::Bytes;
use parking_lot::Mutex;

/// Capacity-class boundaries (exclusive upper caps). A buffer lands on
/// the shelf of the smallest class that holds its capacity; buffers past
/// the last cap are never pooled.
const CLASS_CAPS: [usize; 4] = [
    4 * 1024,         // control frames, heartbeats
    96 * 1024,        // default 60 KiB chunk + envelope overhead
    1024 * 1024,      // large custom chunk sizes
    16 * 1024 * 1024, // MAX_BLOCK_BYTES-scale payloads
];

/// Per-class shelf depth. Deepest for the hot chunk class.
const CLASS_DEPTH: [usize; 4] = [64, 64, 16, 4];

/// A bounded, capacity-classed shelf of reusable byte buffers.
///
/// Most code uses the process-wide [`global`] pool; benches and tests
/// construct private ones to read isolated [`PoolStats`].
pub struct BufferPool {
    shelves: [Mutex<Vec<Vec<u8>>>; 4],
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    rejected: AtomicU64,
}

/// Counters describing pool effectiveness (monotonic since pool birth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a shelf (no allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned to a shelf.
    pub recycled: u64,
    /// Returns dropped because the shelf was full, the buffer was
    /// oversized, or the `Bytes` was still shared.
    pub rejected: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool {
            shelves: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Smallest class index whose cap covers `capacity`, or `None` when
    /// the buffer is too large to pool.
    fn class_of(capacity: usize) -> Option<usize> {
        CLASS_CAPS.iter().position(|&cap| capacity <= cap)
    }

    /// Hands out a cleared buffer with at least `min_capacity` bytes of
    /// capacity, reusing a shelved allocation when one fits.
    pub fn acquire(&self, min_capacity: usize) -> Vec<u8> {
        if let Some(start) = Self::class_of(min_capacity) {
            for shelf in &self.shelves[start..] {
                let popped = shelf.lock().pop();
                if let Some(mut v) = popped {
                    v.clear();
                    if v.capacity() < min_capacity {
                        v.reserve(min_capacity);
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return v;
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(min_capacity)
    }

    /// Returns a buffer's allocation to the pool (contents discarded).
    pub fn recycle_vec(&self, v: Vec<u8>) {
        let Some(class) = Self::class_of(v.capacity()) else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut shelf = self.shelves[class].lock();
        if shelf.len() >= CLASS_DEPTH[class] {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shelf.push(v);
        drop(shelf);
        self.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Attempts to reclaim a frozen frame buffer. Succeeds only when
    /// `frame` is the sole owner of its whole allocation; shared or
    /// sliced handles are dropped normally. Returns whether the
    /// allocation was recovered.
    pub fn recycle(&self, frame: Bytes) -> bool {
        match frame.try_into_vec() {
            Ok(v) => {
                self.recycle_vec(v);
                true
            }
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

static GLOBAL: OnceLock<BufferPool> = OnceLock::new();

/// The process-wide pool shared by the seal path, the reactor, and the
/// node receive path.
pub fn global() -> &'static BufferPool {
    GLOBAL.get_or_init(BufferPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycle_acquire_reuses_the_allocation() {
        let pool = BufferPool::new();
        let mut a = pool.acquire(1000);
        a.extend_from_slice(&[7u8; 1000]);
        let cap = a.capacity();
        pool.recycle_vec(a);
        let b = pool.acquire(512);
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
    }

    #[test]
    fn shared_bytes_are_not_reclaimed() {
        let pool = BufferPool::new();
        let frozen = Bytes::from(pool.acquire(64));
        let clone = frozen.clone();
        assert!(!pool.recycle(frozen));
        assert!(pool.recycle(clone));
        let s = pool.stats();
        assert_eq!((s.recycled, s.rejected), (1, 1));
    }

    #[test]
    fn shelves_are_bounded() {
        let pool = BufferPool::new();
        for _ in 0..CLASS_DEPTH[0] + 5 {
            pool.recycle_vec(Vec::with_capacity(128));
        }
        assert_eq!(pool.stats().rejected, 5);
        assert_eq!(pool.stats().recycled, CLASS_DEPTH[0] as u64);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let pool = BufferPool::new();
        pool.recycle_vec(Vec::with_capacity(64 * 1024 * 1024));
        assert_eq!(pool.stats().recycled, 0);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn class_routing_prefers_tight_fit() {
        let pool = BufferPool::new();
        pool.recycle_vec(Vec::with_capacity(2 * 1024));
        pool.recycle_vec(Vec::with_capacity(80 * 1024));
        // A 60 KiB ask must skip the 2 KiB shelf and hit the 96 KiB one.
        let v = pool.acquire(60 * 1024);
        assert!(v.capacity() >= 60 * 1024);
        assert_eq!(pool.stats().hits, 1);
    }
}
