//! Pluggable message codecs.
//!
//! Serialization is a swap-in point of the messaging stack: the protocol
//! actors are generic over [`Codec`], so the compact binary [`WireCodec`]
//! (the default, implemented in [`crate::wire`]) and the self-describing
//! [`JsonCodec`] (debugging, interop experiments) are interchangeable
//! without touching protocol logic — and a future zero-copy or compressed
//! codec slots in the same way.
//!
//! # Writing a custom codec
//!
//! A codec is one `Clone + Send + Sync` type with an `encode`/`decode`
//! pair; plugging it into a [`Node`](crate::Node) changes the byte format
//! of every message without touching protocol code. A codec that wraps
//! the wire format and XOR-whitens the output (a stand-in for a real
//! compressor or encryptor):
//!
//! ```
//! use sap_net::codec::{Codec, CodecError, WireCodec};
//! use sap_net::{InMemoryHub, Node, PartyId};
//! use serde::{de::DeserializeOwned, Serialize};
//!
//! #[derive(Clone)]
//! struct XorCodec(u8);
//!
//! impl Codec for XorCodec {
//!     fn name(&self) -> &'static str {
//!         "xor-wire"
//!     }
//!     fn encode<M: Serialize>(&self, msg: &M) -> Result<Vec<u8>, CodecError> {
//!         let mut bytes = WireCodec.encode(msg)?;
//!         bytes.iter_mut().for_each(|b| *b ^= self.0);
//!         Ok(bytes)
//!     }
//!     fn decode<M: DeserializeOwned>(&self, bytes: &[u8]) -> Result<M, CodecError> {
//!         let unmasked: Vec<u8> = bytes.iter().map(|b| b ^ self.0).collect();
//!         WireCodec.decode(&unmasked)
//!     }
//! }
//!
//! // Both endpoints just name the codec; everything else is unchanged.
//! let hub = InMemoryHub::new();
//! let alice = Node::with_codec(hub.endpoint(PartyId(1)), XorCodec(0x5A), 7);
//! let bob = Node::with_codec(hub.endpoint(PartyId(2)), XorCodec(0x5A), 7);
//! alice.send_msg(PartyId(2), &vec![1.0f64, 2.0, 3.0]).unwrap();
//! let (from, values): (PartyId, Vec<f64>) = bob.recv_msg().unwrap();
//! assert_eq!(from, PartyId(1));
//! assert_eq!(values, vec![1.0, 2.0, 3.0]);
//! ```

use crate::json;
use crate::wire;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// Errors produced by a codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The binary wire codec failed.
    Wire(wire::WireError),
    /// The JSON debug codec failed.
    Json(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Wire(e) => write!(f, "wire codec: {e}"),
            CodecError::Json(e) => write!(f, "json codec: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<wire::WireError> for CodecError {
    fn from(e: wire::WireError) -> Self {
        CodecError::Wire(e)
    }
}

/// A bidirectional message serializer.
///
/// Implementations must be cheap to clone (they are cloned into every
/// session role) and stateless per message: `decode(encode(m)) == m` must
/// hold for every message the protocol ships, with no context carried
/// between messages.
pub trait Codec: Clone + Send + Sync + 'static {
    /// Short, stable format name (used in logs and diagnostics).
    fn name(&self) -> &'static str;

    /// Encodes a value to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for values the format cannot represent.
    fn encode<M: Serialize>(&self, msg: &M) -> Result<Vec<u8>, CodecError>;

    /// Decodes a value from bytes, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed, truncated, or trailing input.
    fn decode<M: DeserializeOwned>(&self, bytes: &[u8]) -> Result<M, CodecError>;

    /// Encodes a value by **appending** its bytes to `out` — typically a
    /// pooled frame buffer the caller is assembling a sealed envelope in.
    ///
    /// The default implementation round-trips through [`encode`] and
    /// copies; sink-capable codecs (like [`WireCodec`], whose format is
    /// generic over `std::io::Write`) override it to serialize straight
    /// into `out` with no intermediate allocation.
    ///
    /// [`encode`]: Codec::encode
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for values the format cannot represent.
    fn encode_into<M: Serialize>(&self, msg: &M, out: &mut Vec<u8>) -> Result<(), CodecError> {
        let bytes = self.encode(msg)?;
        out.extend_from_slice(&bytes);
        Ok(())
    }
}

/// The default codec: the compact, non-self-describing binary format of
/// [`crate::wire`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCodec;

impl Codec for WireCodec {
    fn name(&self) -> &'static str {
        "wire"
    }

    fn encode<M: Serialize>(&self, msg: &M) -> Result<Vec<u8>, CodecError> {
        wire::to_bytes(msg).map_err(CodecError::Wire)
    }

    fn decode<M: DeserializeOwned>(&self, bytes: &[u8]) -> Result<M, CodecError> {
        wire::from_bytes(bytes).map_err(CodecError::Wire)
    }

    fn encode_into<M: Serialize>(&self, msg: &M, out: &mut Vec<u8>) -> Result<(), CodecError> {
        wire::to_writer(msg, out).map_err(CodecError::Wire)
    }
}

/// The self-describing JSON-ish debug codec of [`crate::json`]: field names
/// and variant names travel with the payload, so captures are readable and
/// schema drift is detectable at decode time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonCodec;

impl Codec for JsonCodec {
    fn name(&self) -> &'static str {
        "json"
    }

    fn encode<M: Serialize>(&self, msg: &M) -> Result<Vec<u8>, CodecError> {
        json::to_bytes(msg).map_err(|e| CodecError::Json(e.to_string()))
    }

    fn decode<M: DeserializeOwned>(&self, bytes: &[u8]) -> Result<M, CodecError> {
        json::from_bytes(bytes).map_err(|e| CodecError::Json(e.to_string()))
    }
}

/// A codec that **encodes** in one configured flavor (wire or JSON) and
/// **decodes** either flavor by sniffing the payload — the glue for
/// heterogeneous meshes where a JSON debug client sits beside binary
/// wire clients in the same session.
///
/// Detection: every JSON payload this stack produces starts with `{`
/// (0x7B, struct/enum-map opener), while a wire payload starts with a
/// varint (for the protocol's messages, an enum variant tag `< 0x7B`).
/// Sniffing is only a fast path, not a trust decision — a payload whose
/// first byte is `{` is *tried* as JSON and falls back to the wire
/// decoder if JSON parsing fails, so a wire payload that happens to lead
/// with 0x7B still decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoCodec {
    emit_json: bool,
}

impl AutoCodec {
    /// An auto-detecting codec that emits the binary wire format.
    pub fn wire() -> Self {
        AutoCodec { emit_json: false }
    }

    /// An auto-detecting codec that emits JSON.
    pub fn json() -> Self {
        AutoCodec { emit_json: true }
    }
}

impl Codec for AutoCodec {
    fn name(&self) -> &'static str {
        if self.emit_json {
            "auto-json"
        } else {
            "auto-wire"
        }
    }

    fn encode<M: Serialize>(&self, msg: &M) -> Result<Vec<u8>, CodecError> {
        if self.emit_json {
            JsonCodec.encode(msg)
        } else {
            WireCodec.encode(msg)
        }
    }

    fn decode<M: DeserializeOwned>(&self, bytes: &[u8]) -> Result<M, CodecError> {
        if bytes.first() == Some(&b'{') {
            match JsonCodec.decode(bytes) {
                Ok(msg) => return Ok(msg),
                Err(_) => return WireCodec.decode(bytes),
            }
        }
        WireCodec.decode(bytes)
    }

    fn encode_into<M: Serialize>(&self, msg: &M, out: &mut Vec<u8>) -> Result<(), CodecError> {
        if self.emit_json {
            JsonCodec.encode_into(msg, out)
        } else {
            WireCodec.encode_into(msg, out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Probe {
        Empty,
        Pair(u8, i32),
        Load { id: u64, xs: Vec<f64>, tag: String },
    }

    fn probes() -> Vec<Probe> {
        vec![
            Probe::Empty,
            Probe::Pair(7, -9),
            Probe::Load {
                id: u64::MAX,
                xs: vec![0.5, -1.25, 3.0],
                tag: "hello \"quoted\" \\ world".into(),
            },
        ]
    }

    #[test]
    fn wire_codec_roundtrips() {
        for p in probes() {
            let bytes = WireCodec.encode(&p).unwrap();
            let back: Probe = WireCodec.decode(&bytes).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn encode_into_appends_identical_bytes() {
        for p in probes() {
            let direct = WireCodec.encode(&p).unwrap();
            let mut sink = vec![0xAA, 0xBB];
            WireCodec.encode_into(&p, &mut sink).unwrap();
            assert_eq!(&sink[..2], &[0xAA, 0xBB], "must append, not overwrite");
            assert_eq!(&sink[2..], &direct[..]);

            // The default (copy-through) path must agree byte-for-byte too.
            let mut json_sink = Vec::new();
            JsonCodec.encode_into(&p, &mut json_sink).unwrap();
            assert_eq!(json_sink, JsonCodec.encode(&p).unwrap());
        }
    }

    #[test]
    fn json_codec_roundtrips() {
        for p in probes() {
            let bytes = JsonCodec.encode(&p).unwrap();
            let back: Probe = JsonCodec.decode(&bytes).unwrap();
            assert_eq!(back, p, "payload: {}", String::from_utf8_lossy(&bytes));
        }
    }

    #[test]
    fn json_is_self_describing() {
        let bytes = JsonCodec
            .encode(&Probe::Load {
                id: 1,
                xs: vec![],
                tag: "t".into(),
            })
            .unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("\"Load\""), "{text}");
        assert!(text.contains("\"xs\""), "{text}");
    }

    #[test]
    fn auto_codec_decodes_both_flavors() {
        for p in probes() {
            let wire_bytes = AutoCodec::wire().encode(&p).unwrap();
            assert_eq!(wire_bytes, WireCodec.encode(&p).unwrap());
            let json_bytes = AutoCodec::json().encode(&p).unwrap();
            assert_eq!(json_bytes, JsonCodec.encode(&p).unwrap());
            // Either emitter's output decodes through either AutoCodec.
            for codec in [AutoCodec::wire(), AutoCodec::json()] {
                let from_wire: Probe = codec.decode(&wire_bytes).unwrap();
                let from_json: Probe = codec.decode(&json_bytes).unwrap();
                assert_eq!(from_wire, p);
                assert_eq!(from_json, p);
            }
        }
    }

    #[test]
    fn auto_codec_falls_back_to_wire_on_json_lookalike() {
        // A wire payload whose leading byte happens to be `{` (0x7B): a
        // u8 value 123 encodes as the single byte 0x7B, which is not
        // valid JSON, so the sniffing decoder must fall back to wire.
        let bytes = WireCodec.encode(&123u8).unwrap();
        assert_eq!(bytes.first(), Some(&b'{'));
        let back: u8 = AutoCodec::wire().decode(&bytes).unwrap();
        assert_eq!(back, 123);
    }

    #[test]
    fn codecs_reject_trailing_bytes() {
        let mut wire_bytes = WireCodec.encode(&Probe::Empty).unwrap();
        wire_bytes.push(0);
        assert!(WireCodec.decode::<Probe>(&wire_bytes).is_err());

        let mut json_bytes = JsonCodec.encode(&Probe::Empty).unwrap();
        json_bytes.extend_from_slice(b" {}");
        assert!(JsonCodec.decode::<Probe>(&json_bytes).is_err());
    }
}
