//! Typed, sealed messaging on top of a [`Transport`].
//!
//! A [`Node`] owns a transport endpoint plus the session secret; every
//! outgoing value is wire-encoded and sealed under the per-direction channel
//! key, and every incoming payload is opened and decoded. This is the layer
//! the protocol actors in `sap-core` talk to.

use crate::crypto::{self, ChannelKey};
use crate::transport::{PartyId, Transport, TransportError};
use crate::wire;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Errors from typed messaging.
#[derive(Debug)]
pub enum NodeError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// The payload failed to open (corruption or wrong key).
    Crypto(crypto::CryptoError),
    /// The plaintext failed to decode as the expected type.
    Codec(wire::WireError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Transport(e) => write!(f, "transport: {e}"),
            NodeError::Crypto(e) => write!(f, "crypto: {e}"),
            NodeError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}

/// A party's typed messaging endpoint.
pub struct Node<T: Transport> {
    transport: T,
    session_secret: u64,
    nonce: AtomicU64,
}

impl<T: Transport> Node<T> {
    /// Wraps a transport with the shared session secret (all parties of a
    /// session derive pairwise channel keys from it).
    pub fn new(transport: T, session_secret: u64) -> Self {
        Node {
            transport,
            session_secret,
            nonce: AtomicU64::new(1),
        }
    }

    /// This node's party id.
    pub fn id(&self) -> PartyId {
        self.transport.local_id()
    }

    /// Borrow the underlying transport (e.g. to flush a fault injector).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Encodes, seals, and sends a value.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Codec`] on serialization failure or
    /// [`NodeError::Transport`] on delivery failure.
    pub fn send_msg<M: Serialize>(&self, to: PartyId, msg: &M) -> Result<(), NodeError> {
        let plain = wire::to_bytes(msg).map_err(NodeError::Codec)?;
        let key = ChannelKey::derive(self.session_secret, self.id().0, to.0);
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let sealed = crypto::seal(key, nonce, &plain);
        self.transport.send(to, sealed)?;
        Ok(())
    }

    /// Receives, opens, and decodes the next message.
    ///
    /// # Errors
    ///
    /// Returns transport, crypto, or codec errors; a crypto error implies a
    /// corrupted or mis-keyed payload and should abort the session.
    pub fn recv_msg<M: DeserializeOwned>(&self) -> Result<(PartyId, M), NodeError> {
        let (from, sealed) = self.transport.recv()?;
        self.open(from, &sealed)
    }

    /// Like [`Node::recv_msg`] with a timeout.
    ///
    /// # Errors
    ///
    /// As [`Node::recv_msg`], plus [`TransportError::Timeout`].
    pub fn recv_msg_timeout<M: DeserializeOwned>(
        &self,
        timeout: Duration,
    ) -> Result<(PartyId, M), NodeError> {
        let (from, sealed) = self.transport.recv_timeout(timeout)?;
        self.open(from, &sealed)
    }

    fn open<M: DeserializeOwned>(&self, from: PartyId, sealed: &[u8]) -> Result<(PartyId, M), NodeError> {
        let key = ChannelKey::derive(self.session_secret, from.0, self.id().0);
        let plain = crypto::open(key, sealed).map_err(NodeError::Crypto)?;
        let msg = wire::from_bytes(&plain).map_err(NodeError::Codec)?;
        Ok((from, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryHub;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Hello {
        round: u32,
        body: Vec<f64>,
    }

    #[test]
    fn typed_roundtrip() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 99);
        let b = Node::new(hub.endpoint(PartyId(2)), 99);
        let msg = Hello {
            round: 3,
            body: vec![1.0, 2.5],
        };
        a.send_msg(PartyId(2), &msg).unwrap();
        let (from, got): (PartyId, Hello) = b.recv_msg().unwrap();
        assert_eq!(from, PartyId(1));
        assert_eq!(got, msg);
    }

    #[test]
    fn wrong_session_secret_fails_crypto() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 1);
        let b = Node::new(hub.endpoint(PartyId(2)), 2);
        a.send_msg(PartyId(2), &7u32).unwrap();
        let err = b.recv_msg::<u32>().unwrap_err();
        assert!(matches!(err, NodeError::Crypto(_)), "{err}");
    }

    #[test]
    fn type_confusion_fails_codec() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let b = Node::new(hub.endpoint(PartyId(2)), 5);
        a.send_msg(PartyId(2), &vec![1u8, 2, 3]).unwrap();
        // Expecting a (u64-length) String where a Vec<u8> was sent: lengths
        // collide but UTF-8 or trailing checks fail... decode as a type with
        // a longer footprint to force an error.
        let err = b.recv_msg::<(u64, u64, u64)>().unwrap_err();
        assert!(matches!(err, NodeError::Codec(_)), "{err}");
    }

    #[test]
    fn nonces_advance() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let b = Node::new(hub.endpoint(PartyId(2)), 5);
        a.send_msg(PartyId(2), &1u8).unwrap();
        a.send_msg(PartyId(2), &1u8).unwrap();
        let (_, s1) = b.transport.recv().unwrap();
        let (_, s2) = b.transport.recv().unwrap();
        assert_ne!(s1, s2, "same plaintext must seal differently");
    }

    #[test]
    fn timeout_propagates() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let err = a
            .recv_msg_timeout::<u8>(Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(
            err,
            NodeError::Transport(TransportError::Timeout)
        ));
    }
}
