//! Typed, sealed, frame-based messaging on top of a [`Transport`].
//!
//! A [`Node`] owns a transport endpoint, a pluggable [`Codec`], and the
//! session secret. Every outgoing message is codec-encoded once into a
//! pooled scratch buffer (see [`crate::pool`]), split into bounded
//! [`crate::frame`] chunks, and each chunk sealed **directly into a
//! pooled envelope buffer** under the per-direction channel key. Large
//! payloads can instead travel as *streams* — a typed header plus raw
//! blocks — via [`Node::send_stream`]; receivers get the blocks back
//! exactly as sent, so a relay can forward them without decoding (the SAP
//! anonymizing hop does exactly that). Sink-capable producers can skip
//! the intermediate block allocation entirely with
//! [`Node::stream_block_with`].
//!
//! This is the layer the protocol actors in `sap-core` talk to; they are
//! generic over both the transport and the codec.

use crate::codec::{Codec, CodecError, WireCodec};
use crate::crypto::ChannelKey;
use crate::frame::{
    self, Assembled, FlowItem, Frame, FrameError, FrameKind, FrameMeta, Reassembler,
    DEFAULT_CHUNK_SIZE,
};
use crate::pool;
use crate::transport::{PartyId, SessionId, Transport, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Errors from typed messaging.
#[derive(Debug)]
pub enum NodeError {
    /// The underlying transport failed.
    Transport(TransportError),
    /// A frame failed to open or violated framing invariants.
    Frame(FrameError),
    /// The payload failed to encode or decode under the codec.
    Codec(CodecError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Transport(e) => write!(f, "transport: {e}"),
            NodeError::Frame(e) => write!(f, "frame: {e}"),
            NodeError::Codec(e) => write!(f, "codec: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<TransportError> for NodeError {
    fn from(e: TransportError) -> Self {
        NodeError::Transport(e)
    }
}

impl From<FrameError> for NodeError {
    fn from(e: FrameError) -> Self {
        NodeError::Frame(e)
    }
}

impl From<CodecError> for NodeError {
    fn from(e: CodecError) -> Self {
        NodeError::Codec(e)
    }
}

/// One inbound delivery: either a plain message or a stream.
#[derive(Debug)]
pub enum NodeEvent<M, H> {
    /// An ordinary message.
    Msg(M),
    /// A stream: decoded header plus raw blocks in arrival order.
    Stream {
        /// The decoded stream header.
        header: H,
        /// Raw blocks, exactly as the sender produced them.
        blocks: Vec<Bytes>,
    },
}

struct RecvState {
    reassembler: Reassembler,
    ready: VecDeque<(PartyId, Assembled)>,
    flow_ready: VecDeque<(PartyId, FlowItem)>,
}

/// One streaming-mode inbound delivery (see [`Node::recv_flow_timeout`]).
///
/// Where [`NodeEvent`] hands over a stream only once every block has
/// arrived, `NodeFlow` surfaces the header and each block the moment they
/// land — the granularity the streaming data plane overlaps compute and
/// I/O at.
#[derive(Debug)]
pub enum NodeFlow<M, H> {
    /// An ordinary (fully assembled) message.
    Msg(M),
    /// A stream opened. `last` is `true` for an empty stream — no blocks
    /// will follow.
    StreamStart {
        /// The decoded stream header.
        header: H,
        /// `true` when the stream carries no blocks.
        last: bool,
    },
    /// One raw stream block, in order, exactly as the sender produced it.
    StreamBlock {
        /// The raw block payload.
        block: Bytes,
        /// `true` when this is the stream's final block.
        last: bool,
    },
}

/// An in-progress outbound stream opened with [`Node::begin_stream`].
///
/// The handle tracks the frame sequence; feed it blocks with
/// [`Node::stream_block`] and mark the final one with `last = true`. At
/// most one stream per `(node, peer)` pair may be open at a time —
/// receivers reassemble per sender, so interleaving two open streams to
/// the same peer is a framing violation the peer will abort on.
#[derive(Debug)]
pub struct StreamHandle {
    to: PartyId,
    msg_id: u64,
    next_seq: u32,
    finished: bool,
}

impl StreamHandle {
    /// The peer this stream is addressed to.
    pub fn to(&self) -> PartyId {
        self.to
    }

    /// `true` once the final block (or an empty header) has been sent.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

/// A party's typed messaging endpoint, generic over transport and codec.
///
/// # Threading contract
///
/// A node belongs to **one logical owner** — each session role runs on
/// its own thread with its own node. The `&self` API exists so a role
/// can interleave sends and receives, not so multiple threads can share
/// one node: concurrent `recv_*` calls could feed one message's frames
/// into reassembly out of order, and concurrent sends to the same peer
/// could interleave two messages' frames — both abort the session by
/// design (framing violations are protocol violations).
pub struct Node<T: Transport, C: Codec = WireCodec> {
    transport: T,
    codec: C,
    session_secret: u64,
    session: SessionId,
    counter: AtomicU64,
    chunk_size: usize,
    recv_state: Mutex<RecvState>,
}

impl<T: Transport> Node<T, WireCodec> {
    /// Wraps a transport with the shared session secret and the default
    /// binary wire codec, in the standalone session ([`SessionId::SOLO`]).
    pub fn new(transport: T, session_secret: u64) -> Self {
        Node::with_codec(transport, WireCodec, session_secret)
    }
}

impl<T: Transport, C: Codec> Node<T, C> {
    /// Wraps a transport with an explicit codec and the session secret
    /// (all parties of a session derive pairwise channel keys from it),
    /// in the standalone session ([`SessionId::SOLO`]).
    pub fn with_codec(transport: T, codec: C, session_secret: u64) -> Self {
        Node::for_session(transport, codec, session_secret, SessionId::SOLO)
    }

    /// Wraps a transport for one session of a multiplexed mesh: every
    /// outgoing frame is stamped (and sealed) for `session`, and inbound
    /// frames stamped for any other session are rejected with
    /// [`FrameError::SessionMismatch`].
    pub fn for_session(transport: T, codec: C, session_secret: u64, session: SessionId) -> Self {
        Node {
            transport,
            codec,
            session_secret,
            session,
            counter: AtomicU64::new(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
            recv_state: Mutex::new(RecvState {
                reassembler: Reassembler::new(),
                ready: VecDeque::new(),
                flow_ready: VecDeque::new(),
            }),
        }
    }

    /// The session this node's frames are stamped for.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Overrides the maximum frame payload size (testing and tuning).
    ///
    /// # Panics
    ///
    /// Panics when `chunk_size` is zero.
    pub fn set_chunk_size(&mut self, chunk_size: usize) {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
    }

    /// This node's party id.
    pub fn id(&self) -> PartyId {
        self.transport.local_id()
    }

    /// Borrow the underlying transport (e.g. to flush a fault injector).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The codec in use.
    pub fn codec(&self) -> &C {
        &self.codec
    }

    fn send_key(&self, to: PartyId) -> ChannelKey {
        ChannelKey::derive(self.session_secret, self.id().0, to.0)
    }

    fn next_id(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Seals one frame, generating its payload straight into the pooled
    /// sealed buffer, and hands it to the transport.
    fn seal_and_send<F>(
        &self,
        to: PartyId,
        meta: FrameMeta,
        size_hint: usize,
        write_payload: F,
    ) -> Result<(), NodeError>
    where
        F: FnOnce(&mut Vec<u8>) -> Result<(), NodeError>,
    {
        let sealed = frame::seal_frame_with(
            self.send_key(to),
            self.next_id(),
            self.session,
            meta,
            size_hint,
            write_payload,
        )?;
        self.transport.send(to, sealed)?;
        Ok(())
    }

    /// Encodes, chunks, seals, and sends a message.
    ///
    /// The message is codec-encoded once into a pooled scratch buffer and
    /// each chunk is sealed directly into a pooled envelope buffer — no
    /// per-frame allocation on the steady-state path.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Codec`] on serialization failure or
    /// [`NodeError::Transport`] on delivery failure.
    pub fn send_msg<M: Serialize>(&self, to: PartyId, msg: &M) -> Result<(), NodeError> {
        let pool = pool::global();
        let mut scratch = pool.acquire(self.chunk_size.min(DEFAULT_CHUNK_SIZE));
        if let Err(e) = self.codec.encode_into(msg, &mut scratch) {
            pool.recycle_vec(scratch);
            return Err(e.into());
        }
        let msg_id = self.next_id();
        let total = scratch.len();
        let mut seq: u32 = 0;
        let mut start = 0;
        loop {
            let end = (start + self.chunk_size).min(total);
            let last = end == total;
            let meta = FrameMeta {
                kind: FrameKind::Control,
                msg_id,
                seq,
                last,
            };
            let chunk = &scratch[start..end];
            let sent = self.seal_and_send(to, meta, chunk.len(), |out| {
                out.extend_from_slice(chunk);
                Ok(())
            });
            if last || sent.is_err() {
                pool.recycle_vec(scratch);
                return sent;
            }
            start = end;
            seq += 1;
        }
    }

    /// Sends a stream: a typed header frame followed by raw blocks, each
    /// block one sealed frame. Blocks are sent as the iterator yields
    /// them — the whole payload never exists as one allocation here, and
    /// a lazy iterator overlaps producing each block with transmitting
    /// the previous one.
    ///
    /// # Errors
    ///
    /// As [`Node::send_msg`].
    pub fn send_stream<H, I>(&self, to: PartyId, header: &H, blocks: I) -> Result<(), NodeError>
    where
        H: Serialize,
        I: IntoIterator<Item = Bytes>,
    {
        let mut blocks = blocks.into_iter().peekable();
        let mut stream = self.begin_stream(to, header, blocks.peek().is_none())?;
        while let Some(block) = blocks.next() {
            let last = blocks.peek().is_none();
            self.stream_block(&mut stream, block, last)?;
        }
        Ok(())
    }

    /// Opens an outbound stream by sending its header frame; blocks
    /// follow via [`Node::stream_block`]. `empty` marks a stream with no
    /// blocks (the header frame is then also the last frame).
    ///
    /// This is the incremental counterpart of [`Node::send_stream`], used
    /// by the relay pump to forward blocks of a stream *while it is still
    /// arriving*. Only one stream per peer may be open at a time (see
    /// [`StreamHandle`]).
    ///
    /// # Errors
    ///
    /// As [`Node::send_msg`].
    pub fn begin_stream<H: Serialize>(
        &self,
        to: PartyId,
        header: &H,
        empty: bool,
    ) -> Result<StreamHandle, NodeError> {
        let msg_id = self.next_id();
        let meta = FrameMeta {
            kind: FrameKind::StreamHeader,
            msg_id,
            seq: 0,
            last: empty,
        };
        let codec = &self.codec;
        self.seal_and_send(to, meta, 256, |out| {
            codec.encode_into(header, out).map_err(NodeError::Codec)
        })?;
        Ok(StreamHandle {
            to,
            msg_id,
            next_seq: 1,
            finished: empty,
        })
    }

    /// Sends one block on an open stream; `last` closes it.
    ///
    /// # Errors
    ///
    /// As [`Node::send_msg`].
    ///
    /// # Panics
    ///
    /// Panics when the stream is already finished.
    pub fn stream_block(
        &self,
        stream: &mut StreamHandle,
        block: Bytes,
        last: bool,
    ) -> Result<(), NodeError> {
        self.stream_block_with(stream, block.len(), last, |out| {
            out.extend_from_slice(&block);
            Ok(())
        })
    }

    /// Sends one block on an open stream, generating its payload
    /// **directly into the pooled sealed buffer**: `write_payload` (a
    /// codec sink, a row-block encoder, …) appends the block's bytes to
    /// the buffer the transport will hand to the socket, so the block
    /// never exists as a separate allocation. `size_hint` pre-sizes the
    /// buffer (a loose estimate is fine); `last` closes the stream.
    ///
    /// # Errors
    ///
    /// As [`Node::send_msg`]; a `write_payload` failure surfaces as
    /// [`NodeError::Codec`] and nothing is sent.
    ///
    /// # Panics
    ///
    /// Panics when the stream is already finished.
    pub fn stream_block_with<F>(
        &self,
        stream: &mut StreamHandle,
        size_hint: usize,
        last: bool,
        write_payload: F,
    ) -> Result<(), NodeError>
    where
        F: FnOnce(&mut Vec<u8>) -> Result<(), CodecError>,
    {
        assert!(!stream.finished, "stream already finished");
        let meta = FrameMeta {
            kind: FrameKind::StreamBlock,
            msg_id: stream.msg_id,
            seq: stream.next_seq,
            last,
        };
        self.seal_and_send(stream.to, meta, size_hint, |out| {
            write_payload(out).map_err(NodeError::Codec)
        })?;
        stream.next_seq += 1;
        stream.finished = last;
        Ok(())
    }

    fn recv_open_frame(&self, deadline: Option<Instant>) -> Result<(PartyId, Frame), NodeError> {
        let (from, sealed) = match deadline {
            None => self.transport.recv()?,
            Some(deadline) => {
                let remaining = deadline
                    .checked_duration_since(Instant::now())
                    .unwrap_or(Duration::ZERO);
                self.transport.recv_timeout(remaining)?
            }
        };
        let key = ChannelKey::derive(self.session_secret, from.0, self.id().0);
        let (frame_session, frame) = frame::open_frame_recycling(key, sealed)?;
        if frame_session != self.session {
            return Err(FrameError::SessionMismatch {
                expected: self.session,
                got: frame_session,
            }
            .into());
        }
        Ok((from, frame))
    }

    fn next_assembled(&self, deadline: Option<Instant>) -> Result<(PartyId, Assembled), NodeError> {
        loop {
            if let Some(ready) = self.recv_state.lock().ready.pop_front() {
                return Ok(ready);
            }
            let (from, frame) = self.recv_open_frame(deadline)?;
            let mut state = self.recv_state.lock();
            if let Some(assembled) = state.reassembler.feed(from, frame)? {
                state.ready.push_back((from, assembled));
            }
        }
    }

    fn next_flow(&self, deadline: Option<Instant>) -> Result<(PartyId, FlowItem), NodeError> {
        loop {
            if let Some(ready) = self.recv_state.lock().flow_ready.pop_front() {
                return Ok(ready);
            }
            let (from, frame) = self.recv_open_frame(deadline)?;
            let mut state = self.recv_state.lock();
            if let Some(item) = state.reassembler.feed_streaming(from, frame)? {
                state.flow_ready.push_back((from, item));
            }
        }
    }

    fn decode_event<M: DeserializeOwned, H: DeserializeOwned>(
        &self,
        assembled: Assembled,
    ) -> Result<NodeEvent<M, H>, NodeError> {
        match assembled {
            Assembled::Message(bytes) => Ok(NodeEvent::Msg(self.codec.decode(&bytes)?)),
            Assembled::Stream { header, blocks } => Ok(NodeEvent::Stream {
                header: self.codec.decode(&header)?,
                blocks,
            }),
        }
    }

    /// Blocks until the next message or complete stream arrives.
    ///
    /// # Errors
    ///
    /// Transport, frame, or codec errors; a frame error implies a protocol
    /// violation and should abort the session.
    pub fn recv_event<M: DeserializeOwned, H: DeserializeOwned>(
        &self,
    ) -> Result<(PartyId, NodeEvent<M, H>), NodeError> {
        let (from, assembled) = self.next_assembled(None)?;
        Ok((from, self.decode_event(assembled)?))
    }

    /// Like [`Node::recv_event`] with a deadline covering the whole
    /// message (all frames must arrive within `timeout`).
    ///
    /// # Errors
    ///
    /// As [`Node::recv_event`], plus [`TransportError::Timeout`].
    pub fn recv_event_timeout<M: DeserializeOwned, H: DeserializeOwned>(
        &self,
        timeout: Duration,
    ) -> Result<(PartyId, NodeEvent<M, H>), NodeError> {
        let (from, assembled) = self.next_assembled(Some(Instant::now() + timeout))?;
        Ok((from, self.decode_event(assembled)?))
    }

    /// Streaming-mode receive with a deadline: delivers stream headers
    /// and blocks **per frame** as they arrive instead of waiting for the
    /// whole stream — the receive-side primitive of the streaming data
    /// plane.
    ///
    /// A node must drive either the buffered receives
    /// ([`Node::recv_event`] family) or this flow receive consistently
    /// while any sender's stream is in flight; switching modes mid-stream
    /// loses blocks.
    ///
    /// # Errors
    ///
    /// As [`Node::recv_event_timeout`].
    pub fn recv_flow_timeout<M: DeserializeOwned, H: DeserializeOwned>(
        &self,
        timeout: Duration,
    ) -> Result<(PartyId, NodeFlow<M, H>), NodeError> {
        let (from, item) = self.next_flow(Some(Instant::now() + timeout))?;
        let flow = match item {
            FlowItem::Message(bytes) => NodeFlow::Msg(self.codec.decode(&bytes)?),
            FlowItem::StreamHeader { header, last } => NodeFlow::StreamStart {
                header: self.codec.decode(&header)?,
                last,
            },
            FlowItem::StreamBlock { block, last } => NodeFlow::StreamBlock { block, last },
        };
        Ok((from, flow))
    }

    /// Receives the next plain message; a stream here is a protocol error.
    ///
    /// # Errors
    ///
    /// As [`Node::recv_event`]; [`FrameError::UnexpectedStream`] if a
    /// stream arrives.
    pub fn recv_msg<M: DeserializeOwned>(&self) -> Result<(PartyId, M), NodeError> {
        match self.next_assembled(None)? {
            (from, Assembled::Message(bytes)) => Ok((from, self.codec.decode(&bytes)?)),
            _ => Err(FrameError::UnexpectedStream.into()),
        }
    }

    /// Like [`Node::recv_msg`] with a timeout.
    ///
    /// # Errors
    ///
    /// As [`Node::recv_msg`], plus [`TransportError::Timeout`].
    pub fn recv_msg_timeout<M: DeserializeOwned>(
        &self,
        timeout: Duration,
    ) -> Result<(PartyId, M), NodeError> {
        match self.next_assembled(Some(Instant::now() + timeout))? {
            (from, Assembled::Message(bytes)) => Ok((from, self.codec.decode(&bytes)?)),
            _ => Err(FrameError::UnexpectedStream.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::JsonCodec;
    use crate::transport::InMemoryHub;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Hello {
        round: u32,
        body: Vec<f64>,
    }

    #[test]
    fn typed_roundtrip() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 99);
        let b = Node::new(hub.endpoint(PartyId(2)), 99);
        let msg = Hello {
            round: 3,
            body: vec![1.0, 2.5],
        };
        a.send_msg(PartyId(2), &msg).unwrap();
        let (from, got): (PartyId, Hello) = b.recv_msg().unwrap();
        assert_eq!(from, PartyId(1));
        assert_eq!(got, msg);
    }

    #[test]
    fn typed_roundtrip_under_json_codec() {
        let hub = InMemoryHub::new();
        let a = Node::with_codec(hub.endpoint(PartyId(1)), JsonCodec, 99);
        let b = Node::with_codec(hub.endpoint(PartyId(2)), JsonCodec, 99);
        let msg = Hello {
            round: 9,
            body: vec![-1.0, 0.25],
        };
        a.send_msg(PartyId(2), &msg).unwrap();
        let (_, got): (PartyId, Hello) = b.recv_msg().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn large_message_chunks_and_reassembles() {
        let hub = InMemoryHub::new();
        let mut a = Node::new(hub.endpoint(PartyId(1)), 7);
        a.set_chunk_size(64); // force many chunks
        let b = Node::new(hub.endpoint(PartyId(2)), 7);
        let msg = Hello {
            round: 1,
            body: (0..500).map(f64::from).collect(),
        };
        a.send_msg(PartyId(2), &msg).unwrap();
        let (_, got): (PartyId, Hello) = b.recv_msg().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn stream_roundtrip_preserves_blocks() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 7);
        let b = Node::new(hub.endpoint(PartyId(2)), 7);
        let blocks: Vec<Bytes> = (0..4u8)
            .map(|i| Bytes::from(vec![i; 16 + usize::from(i)]))
            .collect();
        a.send_stream(
            PartyId(2),
            &Hello {
                round: 2,
                body: vec![],
            },
            blocks.clone(),
        )
        .unwrap();
        let (from, event) = b.recv_event::<Hello, Hello>().unwrap();
        assert_eq!(from, PartyId(1));
        let NodeEvent::Stream {
            header,
            blocks: got,
        } = event
        else {
            panic!("expected stream");
        };
        assert_eq!(header.round, 2);
        assert_eq!(got, blocks);
    }

    #[test]
    fn flow_receive_interleaves_with_sending() {
        // The core of the streaming data plane: a relay can receive block
        // i, forward it, and only then receive block i+1 — no buffering of
        // the whole stream anywhere.
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 7);
        let relay = Node::new(hub.endpoint(PartyId(2)), 7);
        let c = Node::new(hub.endpoint(PartyId(3)), 7);
        let blocks: Vec<Bytes> = (0..3u8).map(|i| Bytes::from(vec![i; 8])).collect();
        a.send_stream(
            PartyId(2),
            &Hello {
                round: 1,
                body: vec![],
            },
            blocks.clone(),
        )
        .unwrap();

        let mut out_stream = None;
        let mut forwarded = 0;
        loop {
            let (_, flow) = relay
                .recv_flow_timeout::<Hello, Hello>(Duration::from_secs(2))
                .unwrap();
            match flow {
                NodeFlow::StreamStart { header, last } => {
                    assert!(!last);
                    out_stream = Some(relay.begin_stream(PartyId(3), &header, false).unwrap());
                }
                NodeFlow::StreamBlock { block, last } => {
                    relay
                        .stream_block(out_stream.as_mut().unwrap(), block, last)
                        .unwrap();
                    forwarded += 1;
                    if last {
                        break;
                    }
                }
                NodeFlow::Msg(_) => panic!("unexpected message"),
            }
        }
        assert_eq!(forwarded, 3);
        assert!(out_stream.unwrap().is_finished());

        let (_, event) = c.recv_event::<Hello, Hello>().unwrap();
        let NodeEvent::Stream { blocks: got, .. } = event else {
            panic!("expected stream at the far end");
        };
        assert_eq!(got, blocks);
    }

    #[test]
    fn flow_receive_decodes_messages_too() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 7);
        let b = Node::new(hub.endpoint(PartyId(2)), 7);
        let msg = Hello {
            round: 4,
            body: vec![2.0],
        };
        a.send_msg(PartyId(2), &msg).unwrap();
        let (from, flow) = b
            .recv_flow_timeout::<Hello, Hello>(Duration::from_secs(2))
            .unwrap();
        assert_eq!(from, PartyId(1));
        let NodeFlow::Msg(got) = flow else {
            panic!("expected message");
        };
        assert_eq!(got, msg);
    }

    #[test]
    fn empty_stream_delivers_header_only() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 7);
        let b = Node::new(hub.endpoint(PartyId(2)), 7);
        a.send_stream(PartyId(2), &0u32, Vec::new()).unwrap();
        let (_, event) = b.recv_event::<u32, u32>().unwrap();
        let NodeEvent::Stream { header, blocks } = event else {
            panic!("expected stream");
        };
        assert_eq!(header, 0);
        assert!(blocks.is_empty());
    }

    #[test]
    fn stream_where_message_expected_errors() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 7);
        let b = Node::new(hub.endpoint(PartyId(2)), 7);
        a.send_stream(PartyId(2), &1u32, vec![Bytes::from_static(b"x")])
            .unwrap();
        let err = b.recv_msg::<u32>().unwrap_err();
        assert!(matches!(
            err,
            NodeError::Frame(FrameError::UnexpectedStream)
        ));
    }

    #[test]
    fn cross_session_frame_rejected() {
        // Same secret, different session ids: the frame opens (the stamp
        // is part of the envelope) but the node rejects the foreign
        // session before any payload reaches the caller.
        let hub = InMemoryHub::new();
        let a = Node::for_session(hub.endpoint(PartyId(1)), WireCodec, 9, SessionId(1));
        let b = Node::for_session(hub.endpoint(PartyId(2)), WireCodec, 9, SessionId(2));
        a.send_msg(PartyId(2), &7u32).unwrap();
        let err = b.recv_msg::<u32>().unwrap_err();
        assert!(
            matches!(
                err,
                NodeError::Frame(FrameError::SessionMismatch {
                    expected: SessionId(2),
                    got: SessionId(1),
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn wrong_session_secret_fails_crypto() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 1);
        let b = Node::new(hub.endpoint(PartyId(2)), 2);
        a.send_msg(PartyId(2), &7u32).unwrap();
        let err = b.recv_msg::<u32>().unwrap_err();
        assert!(
            matches!(err, NodeError::Frame(FrameError::Crypto(_))),
            "{err}"
        );
    }

    #[test]
    fn type_confusion_fails_codec() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let b = Node::new(hub.endpoint(PartyId(2)), 5);
        a.send_msg(PartyId(2), &vec![1u8, 2, 3]).unwrap();
        // Decode as a type with a longer footprint to force an error.
        let err = b.recv_msg::<(u64, u64, u64)>().unwrap_err();
        assert!(matches!(err, NodeError::Codec(_)), "{err}");
    }

    #[test]
    fn nonces_advance() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let b = Node::new(hub.endpoint(PartyId(2)), 5);
        a.send_msg(PartyId(2), &1u8).unwrap();
        a.send_msg(PartyId(2), &1u8).unwrap();
        let (_, s1) = b.transport.recv().unwrap();
        let (_, s2) = b.transport.recv().unwrap();
        assert_ne!(s1, s2, "same plaintext must seal differently");
    }

    #[test]
    fn timeout_propagates() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let err = a
            .recv_msg_timeout::<u8>(Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(err, NodeError::Transport(TransportError::Timeout)));
    }

    #[test]
    fn duplicated_mid_stream_frame_is_a_frame_error() {
        let hub = InMemoryHub::new();
        let a = Node::new(hub.endpoint(PartyId(1)), 5);
        let b = Node::new(hub.endpoint(PartyId(2)), 5);
        // Send a two-frame stream, replaying the header frame on the wire:
        // the receiver must reject the broken sequence rather than guess.
        a.send_stream(PartyId(2), &1u32, vec![Bytes::from_static(b"block")])
            .unwrap();
        let (_, header_frame) = b.transport.recv().unwrap();
        let (_, block_frame) = b.transport.recv().unwrap();
        a.transport()
            .send(PartyId(2), header_frame.clone())
            .unwrap();
        a.transport().send(PartyId(2), header_frame).unwrap();
        a.transport().send(PartyId(2), block_frame).unwrap();
        let err = b.recv_event::<u32, u32>().unwrap_err();
        assert!(matches!(err, NodeError::Frame(_)), "{err}");
    }
}
